#!/usr/bin/env python3
"""Bench-regression gate: fresh BENCH_*.json vs committed baselines.

Usage:
    python3 scripts/bench_gate.py BASELINE_DIR [FRESH_DIR] [--threshold PCT]

Each self-asserting bench already enforces its own hard acceptance
floor (e.g. E17's 1.7x speedup) and writes a metrics report at the
repository root. Those reports are committed, so the checked-in copy
is the baseline: CI copies it aside before re-running the benches,
then calls this script to compare the freshly produced reports against
it.

A *headline* metric regresses when it moves in the bad direction by
more than THRESHOLD (default 20%) of the baseline value AND by more
than the metric's absolute slack. The slack keeps small-denominator
metrics honest: a tracing overhead drifting from 0.1% to 0.3% is a
200% relative change but means nothing on a shared CI box, while a
speedup falling from 2.0x to 1.5x is a real regression even though
both sides still clear the bench's own floor.

Missing baseline files or metrics are tolerated with a warning — a
brand-new bench has no baseline until its first report is committed.
Exit status: 0 clean, 1 on any regression, 2 on usage errors.
"""

import json
import sys
from pathlib import Path

THRESHOLD = 0.20

# report name -> [(path, direction, absolute_slack)]
#
# Path grammar: dot-separated keys into `metrics`; a `workloads[]`
# segment fans out over the workload list, pairing baseline and fresh
# entries by their `name` field; `workloads[foo]` selects one entry by
# name. Direction `higher` means bigger is better.
HEADLINES = {
    "e10_cache": [("workloads[].read_reduction", "higher", 0.5)],
    "e11_trace": [("workloads[].overhead_pct", "lower", 2.0)],
    "e12_replay": [("workloads[].capture_bytes", "lower", 256)],
    "e13_supervise": [
        ("workloads[].overhead_pct", "lower", 2.0),
        ("recovery.mttr_us", "lower", 1000),
    ],
    "e14_prefetch": [("workloads[].turn_reduction", "higher", 0.5)],
    "e15_spans": [("workloads[].overhead_pct", "lower", 2.0)],
    "e16_meta": [("workloads[ring_query].best_us", "lower", 10000)],
    "e17_pipeline": [
        ("speedup", "higher", 0.1),
        ("allocs_per_value", "lower", 2),
        ("wire_turns", "lower", 2),
    ],
}


def resolve(metrics, path):
    """Yields (label, value) pairs for `path` under `metrics`."""
    head, _, rest = path.partition(".")
    if head == "workloads[]":
        for w in metrics.get("workloads", []):
            for label, v in resolve(w, rest):
                yield f"workloads[{w.get('name', '?')}].{label}", v
    elif head.startswith("workloads[") and head.endswith("]"):
        want = head[len("workloads[") : -1]
        for w in metrics.get("workloads", []):
            if w.get("name") == want:
                for label, v in resolve(w, rest):
                    yield f"{head}.{label}", v
    elif rest:
        if head in metrics and isinstance(metrics[head], dict):
            for label, v in resolve(metrics[head], rest):
                yield f"{head}.{label}", v
    elif head in metrics:
        yield head, metrics[head]


def compare(name, base, fresh, threshold):
    """Returns a list of regression strings for one report pair."""
    problems = []
    for path, direction, slack in HEADLINES.get(name, []):
        base_vals = dict(resolve(base["metrics"], path))
        fresh_vals = dict(resolve(fresh["metrics"], path))
        for label, b in base_vals.items():
            if label not in fresh_vals:
                print(f"  warn: {name}: {label} vanished from the fresh report")
                continue
            f = fresh_vals[label]
            if not isinstance(b, (int, float)) or not isinstance(f, (int, float)):
                continue
            bad = (b - f) if direction == "higher" else (f - b)
            if bad > abs(b) * threshold and bad > slack:
                arrow = f"{b:g} -> {f:g}"
                problems.append(
                    f"{name}: {label} regressed {arrow} "
                    f"(>{threshold:.0%} and >{slack:g} absolute, {direction} is better)"
                )
            else:
                print(f"  ok: {name}: {label}: {b:g} -> {f:g}")
    return problems


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    threshold = THRESHOLD
    for a in argv:
        if a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1]) / 100.0
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_dir = Path(args[0])
    fresh_dir = Path(args[1]) if len(args) > 1 else Path(".")
    if not baseline_dir.is_dir():
        print(f"baseline directory {baseline_dir} does not exist", file=sys.stderr)
        return 2

    problems, seen = [], 0
    for fresh_path in sorted(fresh_dir.glob("BENCH_*.json")):
        base_path = baseline_dir / fresh_path.name
        if not base_path.exists():
            print(f"warn: no committed baseline for {fresh_path.name}; skipping")
            continue
        fresh = json.loads(fresh_path.read_text())
        base = json.loads(base_path.read_text())
        name = fresh.get("name", fresh_path.stem)
        if base.get("name") != name:
            print(f"warn: {fresh_path.name}: baseline is {base.get('name')}, fresh is {name}")
            continue
        seen += 1
        print(f"{fresh_path.name} ({name}):")
        problems += compare(name, base, fresh, threshold)

    if not seen:
        print("warn: no report had a baseline; nothing gated")
        return 0
    if problems:
        print(f"\n{len(problems)} regression(s):", file=sys.stderr)
        for p in problems:
            print(f"  FAIL: {p}", file=sys.stderr)
        return 1
    print(f"\nall headline metrics within {threshold:.0%} of baseline across {seen} report(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
