//! A full debugging session: conditional breakpoints, watchpoints, and
//! frame exploration on a frequency-counting program.
//!
//! The debuggee tallies byte frequencies of a message into `freq[]`
//! through a (deliberately off-by-one) helper. We let a DUEL watchpoint
//! and a whole-array conditional breakpoint find the corruption — the
//! integrations the paper's Discussion proposes.
//!
//! ```sh
//! cargo run --example frequency_hunt
//! ```

use duel::core::Session;
use duel::minic::{Debugger, StopReason};

const PROGRAM: &str = r#"
char *msg = "hello generators";
int freq[26];
int total;

int tally(char c) {
    int slot;
    if (c < 'a') return 0;
    if (c > 'z') return 0;
    slot = c - 'a' + 1;      /* BUG: off by one — should be c - 'a' */
    slot = slot % 26;        /* ...which smears 'z'..'a' wraps */
    freq[slot] = freq[slot] + 1;
    total = total + 1;
    return 1;
}

int main() {
    int i;
    for (i = 0; msg[i] != '\0'; i++)
        tally(msg[i]);
    return total;             /* line 21 */
}
"#;

fn show(s: &mut Session<'_>, what: &str, q: &str) {
    println!("# {what}");
    println!("duel> {q}");
    match s.eval_lines(q) {
        Ok(lines) if lines.is_empty() => println!("(no values)"),
        Ok(lines) => {
            for l in lines {
                println!("{l}");
            }
        }
        Err(e) => println!("{e}"),
    }
    println!();
}

fn main() {
    // Pass 1: stop the moment the histogram *first* changes, and look
    // at which slot moved.
    let mut dbg = Debugger::new(PROGRAM).expect("compiles");
    dbg.add_watchpoint("freq[..26]");
    match dbg.run().expect("runs") {
        StopReason::Watchpoint { line } => {
            println!("watchpoint: freq[] changed by line {line}\n");
        }
        other => panic!("unexpected stop: {other:?}"),
    }
    {
        let mut s = Session::new(&mut dbg);
        // The first message byte is 'h' (index 7) — but slot 8 moved.
        show(&mut s, "which slot changed first?", "freq[..26] >? 0");
        show(
            &mut s,
            "the helper's local, one frame in",
            "local(\"slot\", frames())",
        );
        show(
            &mut s,
            "…and the letter being tallied",
            "local(\"c\", 0..0)",
        );
    }
    dbg.clear_watchpoints();

    // Pass 2 (fresh run): a conditional breakpoint on a histogram
    // invariant. 'e' occurs in the message, so its bucket (freq[4])
    // must be non-empty once tallying has happened; with the bug every
    // count lands one slot high, and 'd' (the letter that *would* land
    // in freq[4]) never occurs — so the invariant trips.
    let mut dbg = Debugger::new(PROGRAM).expect("compiles");
    dbg.add_conditional_breakpoint(21, "freq['e' - 'a'] == 0 && total > 0");
    match dbg.run().expect("runs") {
        StopReason::Breakpoint { line } => println!(
            "conditional breakpoint at line {line}: the 'e' bucket is \
             empty although letters were tallied\n"
        ),
        other => panic!("unexpected stop: {other:?}"),
    }
    let mut s = Session::new(&mut dbg);
    show(
        &mut s,
        "full histogram (nonzero slots, shifted one to the right)",
        "freq[..26] >? 0",
    );
    show(
        &mut s,
        "counts are conserved, so the sum still matches",
        "equal(+/freq[..26], total + 0) , +/freq[..26]",
    );
    show(
        &mut s,
        "the smoking gun: 'e' appears in msg but its bucket is empty",
        "#/(msg[0..99]@0 ==? 'e') , freq['e' - 'a'], freq['e' - 'a' + 1]",
    );
    println!(
        "diagnosis: every count landed one slot too high — the classic \
         off-by-one in `slot = c - 'a' + 1`."
    );
}
