//! Experiment E8 as a demonstration: the paper's Introduction query —
//! "does list L contain two identical elements in its value fields?" —
//! answered three ways:
//!
//! 1. the paper's C code, *as printed* (which hides a bug: the inner
//!    loop starts at `q = p`, so every node matches itself);
//! 2. the corrected C code;
//! 3. the DUEL one-liner, which has no place for that bug to hide.
//!
//! Because DUEL accepts C declarations and statements, both C versions
//! run verbatim inside the debugger, exactly as the paper describes
//! typing them.
//!
//! ```sh
//! cargo run --example duel_vs_c
//! ```

use duel::core::Session;
use duel::target::scenario;

fn run(s: &mut Session<'_>, title: &str, src: &str) {
    println!("== {title} ==");
    println!("duel> {src}\n");
    match s.eval_lines(src) {
        Ok(lines) if lines.is_empty() => println!("(no output)"),
        Ok(lines) => {
            println!("({} line(s))", lines.len());
            for l in &lines {
                println!("{l}");
            }
        }
        Err(e) => println!("{e}"),
    }
    println!();
}

fn main() {
    let mut target = scenario::linked_lists();
    let mut session = Session::new(&mut target);

    run(
        &mut session,
        "the paper's C code (buggy: q starts at p)",
        "struct list *p, *q; \
         for (p = L; p; p = p->next) \
             for (q = p; q; q = q->next) \
                 if (p->value == q->value) \
                     printf(\"%x %x contain %d\\n\", p, q, p->value);",
    );

    run(
        &mut session,
        "corrected C code (q starts at p->next)",
        "struct list *p, *q; \
         for (p = L; p; p = p->next) \
             for (q = p->next; q; q = q->next) \
                 if (p->value == q->value) \
                     printf(\"%x %x contain %d\\n\", p, q, p->value);",
    );

    run(
        &mut session,
        "the DUEL one-liner",
        "L-->next->(value ==? next-->next->value)",
    );

    run(
        &mut session,
        "…and the two-alias form that reports both positions",
        "L-->next#i->value ==? L-->next#j->value => \
         if (i < j) L-->next[[i,j]]->value",
    );

    println!(
        "The buggy C prints one spurious line per node (12 of them) \
         plus the real duplicate;\nthe corrected C and both DUEL forms \
         report only the true pair."
    );
}
