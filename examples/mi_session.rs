//! DUEL over the gdb/MI wire protocol, with record/replay.
//!
//! Every byte of this session crosses a real MI serialization → parse
//! boundary: the `MiTarget` adapter implements the paper's narrow
//! debugger interface by issuing MI commands, and `MockGdb` answers
//! them from a simulated debuggee. The session is recorded and then
//! replayed with *no debuggee at all* — the transcript alone drives the
//! second run.
//!
//! ```sh
//! cargo run --example mi_session
//! ```

use duel::core::Session;
use duel::gdbmi::{MiTarget, MockGdb, Recorder, Replayer};
use duel::target::scenario;

fn main() {
    // 1. A live session over MI, recorded.
    let recorder = Recorder::new(MockGdb::new(scenario::hash_table_basic()));
    let mut target = MiTarget::connect(recorder).expect("connect");
    let queries = [
        "(hash[..1024] !=? 0)->scope >? 5",
        "hash[0]-->next->scope",
        "#/(hash[..1024]-->next)",
    ];
    let mut first_run = Vec::new();
    {
        let mut session = Session::new(&mut target);
        for q in queries {
            println!("duel> {q}");
            let lines = session.eval_lines(q).expect("query");
            for l in &lines {
                println!("{l}");
            }
            println!();
            first_run.push(lines);
        }
    }
    let dump = target.client_mut().transport().dump();
    let exchanges = dump.lines().filter(|l| l.starts_with('>')).count();
    println!(
        "— recorded {exchanges} MI commands ({} bytes of transcript)\n",
        dump.len()
    );
    for line in dump.lines().take(6) {
        println!("    {line}");
    }
    println!("    …\n");

    // 2. Replay: the transcript alone answers the same queries.
    let mut target = MiTarget::connect(Replayer::from_dump(&dump)).expect("replay connect");
    let mut session = Session::new(&mut target);
    for (q, want) in queries.iter().zip(first_run.iter()) {
        let got = session.eval_lines(q).expect("replayed query");
        assert_eq!(&got, want, "replay diverged on `{q}`");
    }
    println!("replayed the session from the transcript: outputs identical");
}
