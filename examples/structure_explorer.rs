//! Exploring linked data structures: lists, trees, and argv — every
//! expansion operator from the paper on one debuggee.
//!
//! ```sh
//! cargo run --example structure_explorer
//! ```

use duel::core::Session;
use duel::target::scenario;

fn show(s: &mut Session<'_>, what: &str, q: &str) {
    println!("# {what}");
    println!("duel> {q}");
    match s.eval_lines(q) {
        Ok(lines) if lines.is_empty() => println!("(no values)"),
        Ok(lines) => {
            for l in lines {
                println!("{l}");
            }
        }
        Err(e) => println!("{e}"),
    }
    println!();
}

fn main() {
    // L (12 nodes, duplicate 27s at positions 4 and 9), head (8 nodes),
    // root (the paper's tree (9, (3 (4) (5)), (12))), argv, s.
    let mut target = scenario::combined();
    let mut session = Session::new(&mut target);
    let s = &mut session;

    println!("== linked lists ==\n");
    show(s, "every element of L", "L-->next->value");
    show(s, "how long is L?", "#/(L-->next)");
    show(
        s,
        "the Introduction's duplicate query",
        "L-->next->(value ==? next-->next->value)",
    );
    show(
        s,
        "…with both positions, via index aliases",
        "L-->next#i->value ==? L-->next#j->value => \
         if (i < j) L-->next[[i,j]]->value",
    );
    show(
        s,
        "third and fifth nodes of head",
        "head-->next->value[[3,5]]",
    );
    show(s, "sum of L's values", "+/(L-->next->value)");
    show(s, "largest value in L (and where)", ">/(L-->next->value)");

    println!("== binary tree ==\n");
    show(s, "preorder keys", "root-->(left,right)->key");
    show(s, "breadth-first keys", "root-->>(left,right)->key");
    show(s, "node count", "#/(root-->(left,right))");
    show(
        s,
        "guided descent to the key 5",
        "root-->(if (key > 5) left else if (key < 5) right)->key",
    );
    show(
        s,
        "leaves only",
        "root-->(left,right)->(if (!left && !right) key)",
    );

    println!("== strings and argv ==\n");
    show(s, "argv until the NULL", "argv[0..]@0");
    show(s, "characters of s", "s[0..999]@(_=='\\0')");
    show(s, "how long is s?", "#/(s[0..999]@(_=='\\0'))");
}
