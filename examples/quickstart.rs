//! Quickstart: attach a DUEL session to a debuggee and run the paper's
//! signature queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use duel::core::Session;
use duel::target::scenario;

fn main() {
    // A simulated debuggee with the paper's array `x` (x[3] = 7,
    // x[18] = 9, x[47] = 6 hidden among out-of-range values).
    let mut target = scenario::scan_array();
    let mut session = Session::new(&mut target);

    let queries = [
        // Plain C expressions evaluate as a debugger's `print`.
        "1 + (double)3/2",
        // Generators: ranges, alternation, cross products.
        "(1..3)+(5,9)",
        // The headline example: which elements of x are in (5, 10)?
        "x[1..4,8,12..50] >? 5 <? 10",
        // The same search, formulated with ==? against a range.
        "x[1..4,8,12..50] ==? (6..9)",
        // Plain C comparison semantics still available.
        "x[1..3] == 7",
        // Reductions.
        "#/(x[..60] >? 100)",
        "+/x[..5]",
        // An alias, then use it in a later expression.
        "y := x[3]; y + 1",
        // Declarations and C statements work too (the paper's E6).
        "int i; for (i = 0; i < 60; i++) x[i] >? 5 <? 10",
    ];

    for q in queries {
        println!("duel> {q}");
        match session.eval_lines(q) {
            Ok(lines) => {
                for l in lines {
                    println!("{l}");
                }
            }
            Err(e) => println!("{e}"),
        }
        println!();
    }
}
