//! The paper's central scenario: debugging a compiler's symbol table.
//!
//! A mini-C program builds a hash table of `struct symbol` nodes — and
//! plants a sortedness bug. We run it under the mini source-level
//! debugger to a breakpoint, then hunt the bug with DUEL one-liners,
//! exactly as the paper's user would under gdb.
//!
//! ```sh
//! cargo run --example symtab_hunt
//! ```

use duel::core::Session;
use duel::minic::{Debugger, StopReason};

const PROGRAM: &str = r#"
struct symbol { char *name; int scope; struct symbol *next; };
struct symbol *hash[256];
int nsyms;

int insert(int bucket, char *name, int scope) {
    struct symbol *s;
    s = (struct symbol *)malloc(sizeof(struct symbol));
    s->name = name;
    s->scope = scope;
    s->next = hash[bucket];
    hash[bucket] = s;
    nsyms = nsyms + 1;
    return nsyms;
}

int main() {
    /* Bucket 9: correctly sorted by decreasing scope. */
    insert(9, "outer", 1);
    insert(9, "mid", 3);
    insert(9, "inner", 5);
    /* Bucket 42: someone inserted out of order — the bug. */
    insert(42, "a", 2);
    insert(42, "b", 6);   /* 6 ends up *under* 4: 4 < 6 violates */
    insert(42, "c", 4);
    /* Bucket 77: a deep scope that a query should surface. */
    insert(77, "deep", 9);
    return nsyms;               /* line 28: breakpoint here */
}
"#;

fn main() {
    let mut dbg = Debugger::new(PROGRAM).expect("program compiles");
    dbg.add_breakpoint(28);
    let stop = dbg.run().expect("program runs");
    assert_eq!(stop, StopReason::Breakpoint { line: 28 });
    println!("stopped at line {} — exploring with DUEL\n", dbg.line());

    let mut s = Session::new(&mut dbg);
    let queries = [
        // How many symbols are there, table-wide?
        ("count every symbol", "#/(hash[..256]-->next)"),
        // Which buckets are occupied, and by what chain of scopes?
        ("walk one bucket", "hash[9]-->next->(scope, name)"),
        // Any symbol with a suspiciously deep scope?
        ("deep scopes", "(hash[..256]-->next->scope) >? 5"),
        // The paper's sortedness check: every list must be sorted by
        // decreasing scope; this pinpoints the violation.
        (
            "sortedness check",
            "hash[..256]-->next-> if (next) scope <? next->scope",
        ),
        // Name of the offending symbol.
        (
            "who is out of order?",
            "hash[..256]-->next->(if (next && scope < next->scope) name)",
        ),
    ];
    for (what, q) in queries {
        println!("# {what}");
        println!("duel> {q}");
        match s.eval_lines(q) {
            Ok(lines) => {
                for l in lines {
                    println!("{l}");
                }
            }
            Err(e) => println!("{e}"),
        }
        println!();
    }

    // Fix it live: clear the bad entry's scope, then re-check.
    println!("# fixing: demote every scope above 5, then re-check");
    println!("duel> (hash[..256]-->next->scope >? 5) = 5 ;");
    s.eval("(hash[..256]-->next->scope >? 5) = 5 ;").unwrap();
    println!("duel> (hash[..256]-->next->scope) >? 5");
    let after = s.eval_lines("(hash[..256]-->next->scope) >? 5").unwrap();
    if after.is_empty() {
        println!("(no values — all scopes capped)\n");
    }

    drop(s);
    let code = match dbg.cont().unwrap() {
        StopReason::Exited { code } => code,
        other => panic!("unexpected stop: {other:?}"),
    };
    println!("program exited with {code} symbols inserted");
}
