//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment is offline, so the real crates.io `proptest`
//! cannot be fetched; this shim implements the subset of its API that
//! the workspace's property tests use, with the same names and shapes:
//!
//! * the `proptest!` macro (with `#![proptest_config(..)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`,
//! * strategies: integer ranges, regex-shaped string patterns,
//!   `prop::collection::vec`, tuples, `prop_oneof!`, `prop_map`,
//!   `BoxedStrategy`,
//! * deterministic seeding, a `PROPTEST_CASES` cap, and replay of
//!   `*.proptest-regressions` seed files.
//!
//! Failing cases print their seed; appending `cc <seed-hex>` to the
//! sibling `<test-file>.proptest-regressions` file makes the seed
//! replay first on every future run.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic splitmix64 generator driving all sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)` (i128 domain to fit every int type).
    pub fn below(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo) as u128;
        if span == 0 {
            return lo;
        }
        lo + (self.next_u64() as u128 % span) as i128
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Mirror of proptest's run configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Total `prop_assume!` rejections tolerated across the whole run
    /// before the test aborts as unproductive.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 1024,
        }
    }
}

/// A value generator. `sample` must be deterministic in the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between same-typed strategies (see `prop_oneof!`).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(0, self.0.len() as i128) as usize;
        self.0[i].sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.below(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.below(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, u8, i16, u16, i32, u32, i64, u64, isize, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// `&str` patterns act as regex-shaped string strategies.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::sample(self, rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `elem` with a length drawn from
    /// `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors of values of `elem` with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below(
                self.len.start as i128,
                self.len.end.max(self.len.start + 1) as i128,
            ) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

mod pattern {
    //! A tiny generator for regex-shaped patterns: alternation `|`,
    //! groups `(..)`, classes `[a-b]`, escapes, `\PC` (any printable),
    //! and `{m,n}` / `{m}` / `*` / `+` / `?` quantifiers. It produces
    //! strings *matching* the pattern; distribution quality is not a
    //! goal.

    use super::TestRng;

    #[derive(Clone, Debug)]
    enum Node {
        Lit(char),
        AnyPrintable,
        Class(Vec<(char, char)>),
        Group(Vec<Seq>),
    }

    type Seq = Vec<(Node, (u32, u32))>;

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
    }

    impl<'a> Parser<'a> {
        fn alternation(&mut self) -> Vec<Seq> {
            let mut branches = vec![self.sequence()];
            while self.chars.peek() == Some(&'|') {
                self.chars.next();
                branches.push(self.sequence());
            }
            branches
        }

        fn sequence(&mut self) -> Seq {
            let mut seq = Vec::new();
            while let Some(&c) = self.chars.peek() {
                if c == '|' || c == ')' {
                    break;
                }
                let node = self.atom();
                let quant = self.quantifier();
                seq.push((node, quant));
            }
            seq
        }

        fn atom(&mut self) -> Node {
            match self.chars.next().unwrap() {
                '(' => {
                    let inner = self.alternation();
                    self.chars.next(); // ')'
                    Node::Group(inner)
                }
                '[' => {
                    let mut ranges = Vec::new();
                    while let Some(&c) = self.chars.peek() {
                        if c == ']' {
                            self.chars.next();
                            break;
                        }
                        let lo = self.chars.next().unwrap();
                        if self.chars.peek() == Some(&'-') {
                            self.chars.next();
                            let hi = self.chars.next().unwrap_or(lo);
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Node::Class(ranges)
                }
                '\\' => match self.chars.next().unwrap_or('\\') {
                    'P' => {
                        // `\PC` — anything that is not a control char.
                        self.chars.next(); // consume the property name
                        Node::AnyPrintable
                    }
                    'n' => Node::Lit('\n'),
                    't' => Node::Lit('\t'),
                    other => Node::Lit(other),
                },
                c => Node::Lit(c),
            }
        }

        fn quantifier(&mut self) -> (u32, u32) {
            match self.chars.peek() {
                Some('{') => {
                    self.chars.next();
                    let mut lo = 0u32;
                    let mut hi: Option<u32> = None;
                    let mut cur = 0u32;
                    let mut saw_comma = false;
                    for c in self.chars.by_ref() {
                        match c {
                            '0'..='9' => cur = cur * 10 + (c as u32 - '0' as u32),
                            ',' => {
                                lo = cur;
                                cur = 0;
                                saw_comma = true;
                            }
                            '}' => break,
                            _ => {}
                        }
                    }
                    if saw_comma {
                        hi = Some(cur);
                    } else {
                        lo = cur;
                    }
                    (lo, hi.unwrap_or(lo))
                }
                Some('*') => {
                    self.chars.next();
                    (0, 8)
                }
                Some('+') => {
                    self.chars.next();
                    (1, 8)
                }
                Some('?') => {
                    self.chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            }
        }
    }

    fn gen_branches(branches: &[Seq], rng: &mut TestRng, out: &mut String) {
        let pick = rng.below(0, branches.len().max(1) as i128) as usize;
        for (node, (lo, hi)) in &branches[pick] {
            let n = rng.below(*lo as i128, *hi as i128 + 1) as u32;
            for _ in 0..n {
                gen_node(node, rng, out);
            }
        }
    }

    fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::AnyPrintable => {
                // Mostly printable ASCII, occasionally multibyte.
                let r = rng.below(0, 20) as u32;
                if r == 0 {
                    let extras = ['é', 'λ', '中', '🙂', 'ß'];
                    out.push(extras[rng.below(0, extras.len() as i128) as usize]);
                } else {
                    out.push(char::from_u32(rng.below(0x20, 0x7f) as u32).unwrap());
                }
            }
            Node::Class(ranges) => {
                let (lo, hi) = ranges[rng.below(0, ranges.len().max(1) as i128) as usize];
                let c = rng.below(lo as i128, hi as i128 + 1) as u32;
                out.push(char::from_u32(c).unwrap_or(lo));
            }
            Node::Group(branches) => gen_branches(branches, rng, out),
        }
    }

    pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
        let mut p = Parser {
            chars: pattern.chars().peekable(),
        };
        let branches = p.alternation();
        let mut out = String::new();
        gen_branches(&branches, rng, &mut out);
        out
    }
}

/// The harness behind the `proptest!` macro.
pub mod test_runner {
    use super::{ProptestConfig, TestCaseError, TestRng};

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// Seeds recorded in the sibling `*.proptest-regressions` file
    /// (lines of the form `cc <hex> # shrinks to ...`).
    fn regression_seeds(source_file: &str) -> Vec<u64> {
        let path = source_file.replace(".rs", ".proptest-regressions");
        let Ok(body) = std::fs::read_to_string(&path) else {
            return Vec::new();
        };
        let mut seeds = Vec::new();
        for line in body.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("cc ") {
                let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
                if hex.is_empty() {
                    continue;
                }
                let mut seed = 0u64;
                for c in hex.chars() {
                    seed = seed
                        .wrapping_mul(16)
                        .wrapping_add(c.to_digit(16).unwrap() as u64)
                        .rotate_left(7);
                }
                seeds.push(seed);
            }
        }
        seeds
    }

    /// Runs one property: regression seeds first, then `cases` fresh
    /// seeds derived deterministically from the test name.
    pub fn run(
        name: &str,
        source_file: &str,
        cfg: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        for seed in regression_seeds(source_file) {
            let mut rng = TestRng::new(seed);
            if let Err(TestCaseError::Fail(msg)) = case(&mut rng) {
                panic!("[{name}] regression seed {seed:#018x} failed: {msg}");
            }
        }
        let cases = match env_cases() {
            Some(env) => cfg.cases.min(env),
            None => cfg.cases,
        };
        let mut seeder = TestRng::new(name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        }));
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < cases {
            let seed = seeder.next_u64();
            let mut rng = TestRng::new(seed);
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > cfg.max_global_rejects {
                        panic!(
                            "[{name}] too many `prop_assume!` rejections \
                             ({rejected} > max_global_rejects {}); the \
                             precondition filters out nearly every case",
                            cfg.max_global_rejects
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "[{name}] case failed (replay by adding `cc {seed:016x}` to \
                     {source_file}.proptest-regressions): {msg}"
                ),
            }
        }
    }
}

/// `proptest!` — wraps `#[test]` functions whose arguments are drawn
/// from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for `proptest!` — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run(
                stringify!($name),
                file!(),
                &__cfg,
                |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts inside a `proptest!` body; failure reports the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                __a,
                __b
            )));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of proptest's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = Strategy::sample(&(-50i32..50), &mut rng);
            assert!((-50..50).contains(&v));
            let v = Strategy::sample(&(-6i8..=6), &mut rng);
            assert!((-6..=6).contains(&v));
            let v = Strategy::sample(&(0u32..=u32::MAX / 2), &mut rng);
            assert!(v <= u32::MAX / 2);
        }
    }

    #[test]
    fn patterns_match_shape() {
        let mut rng = TestRng::new(7);
        for _ in 0..100 {
            let s = Strategy::sample(&"[ -~]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let s = Strategy::sample(&"\\PC{0,60}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
            let s = Strategy::sample(&"(a|bb){1,3}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 6);
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn vec_and_tuple_and_oneof() {
        let mut rng = TestRng::new(3);
        for _ in 0..50 {
            let v = Strategy::sample(&crate::collection::vec(0u8..3, 1..12), &mut rng);
            assert!(!v.is_empty() && v.len() < 12);
            assert!(v.iter().all(|x| *x < 3));
            let (a, b) = Strategy::sample(&(0i32..10, 10i32..20), &mut rng);
            assert!((0..10).contains(&a) && (10..20).contains(&b));
            let s = prop_oneof![(0i32..1).prop_map(|_| 1i32), (0i32..1).prop_map(|_| 2i32)];
            let v = Strategy::sample(&s, &mut rng);
            assert!(v == 1 || v == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_works(a in 0i32..100, b in prop::collection::vec(0u8..4, 0..6)) {
            prop_assume!(a != 1);
            prop_assert!(a < 100);
            prop_assert_eq!(b.len(), b.len());
        }
    }
}
