//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment is offline, so the real crates.io `criterion`
//! cannot be fetched; this shim keeps the workspace's benches
//! compiling and runnable with the same source code. It implements the
//! subset the benches use — `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` — measuring wall-clock time with
//! `std::time::Instant` and printing a mean-per-iteration line.
//!
//! Under `cargo test` (the binary receives `--test`) each benchmark
//! body runs exactly once, so the correctness asserts inside bench
//! setup still execute without the timing loops.

use std::fmt::Display;
use std::time::{Duration, Instant};

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to each benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            let _ = routine();
            self.iters_done = 1;
            return;
        }
        // Warm up once, then time a batch sized so the measurement
        // takes a perceptible but short interval.
        let start = Instant::now();
        let _ = routine();
        let once = start.elapsed().max(Duration::from_nanos(100));
        let target = Duration::from_millis(50);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            let _ = routine();
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            test_mode: self.criterion.test_mode,
        };
        f(&mut b);
        if !self.criterion.test_mode && b.iters_done > 0 {
            let per_iter = b.elapsed.as_nanos() / b.iters_done as u128;
            println!(
                "{}/{}: {} iterations, mean {} ns/iter",
                self.name, id, b.iters_done, per_iter
            );
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into().id;
        self.run(id, f);
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.id, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: test_mode(),
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// API-compatibility hook; the shim has no post-run reports.
    pub fn final_summary(&mut self) {}
}

/// An opaque wrapper preventing the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        let mut hits = 0u64;
        group.bench_function("count", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(hits >= 1);
    }

    #[test]
    fn shim_runs_benches() {
        let mut c = Criterion { test_mode: true };
        sample_bench(&mut c);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_generates_an_entry_point() {
        let _entry: fn() = benches;
    }
}
