#![warn(missing_docs)]

//! Umbrella crate for the DUEL reproduction workspace.
//!
//! Re-exports every member crate so the workspace-level integration tests
//! and examples can reach them with one dependency, and so a downstream
//! user can depend on `duel` alone.
//!
//! * [`ctype`] — C type system and ABI layout engine.
//! * [`target`] — the simulated debuggee and the paper's narrow debugger
//!   interface.
//! * [`minic`] — a mini-C compiler, bytecode VM, and source-level
//!   debugger that stands in for gdb.
//! * [`core`] — the DUEL language itself: lexer, parser, resumable
//!   generator evaluator, symbolic display.
//! * [`gdbmi`] — a gdb/MI protocol client and a `Target` adapter over it.
//! * [`cli`] — the interactive REPL: the full decorator tower
//!   (trace/supervise/retry/cache/record), dot-commands, and the chaos
//!   gate used by the robustness tests.
//!
//! # Examples
//!
//! ```
//! use duel::core::Session;
//! use duel::target::scenario;
//!
//! let mut target = scenario::binary_tree();
//! let mut session = Session::new(&mut target);
//! // The paper's preorder walk of (9, (3 (4) (5)), (12)).
//! let keys = session.eval_lines("root-->(left,right)->key").unwrap();
//! assert_eq!(keys[0], "root->key = 9");
//! assert_eq!(keys.len(), 5);
//! ```

pub use duel_cli as cli;
pub use duel_core as core;
pub use duel_ctype as ctype;
pub use duel_gdbmi as gdbmi;
pub use duel_minic as minic;
pub use duel_target as target;
