//! DUEL's error type.
//!
//! Evaluation errors carry *symbolic values* per the paper: "Symbolic
//! values assist in the display of results as well as errors: The
//! offending operand's symbolic value is printed", e.g.
//!
//! ```text
//! Illegal memory reference in x of x->y: ptr[48] = lvalue 0x16820.
//! ```

use std::fmt;

use duel_target::TargetError;

/// The result type used throughout DUEL.
pub type DuelResult<T> = Result<T, DuelError>;

/// An error from lexing, parsing, or evaluating a DUEL expression.
#[derive(Clone, Debug, PartialEq)]
pub enum DuelError {
    /// A lexical error at a byte offset.
    Lex {
        /// Byte offset in the command line.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A syntax error at a byte offset.
    Parse {
        /// Byte offset in the command line.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// An invalid memory access, reported in the paper's format. The
    /// `role` names the offending operand's position in the operator
    /// pattern (e.g. `x` of `x->y`).
    IllegalMemory {
        /// The operand role, e.g. "x of x->y".
        role: String,
        /// The offending operand's symbolic value.
        sym: String,
        /// The address that could not be accessed.
        addr: u64,
    },
    /// An evaluation-time type error ("type checking must be done during
    /// evaluation").
    Type {
        /// The offending operand's symbolic value.
        sym: String,
        /// What went wrong.
        message: String,
    },
    /// A name did not resolve to an alias, with-scope field, target
    /// variable, or enumerator.
    Undefined {
        /// The name.
        name: String,
    },
    /// Assignment (or `&`) applied to something that is not an lvalue.
    NotLvalue {
        /// The operand's symbolic value.
        sym: String,
    },
    /// Division or remainder by zero.
    DivByZero {
        /// The expression's symbolic value.
        sym: String,
    },
    /// The evaluation produced more values than the session limit.
    LimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The evaluation exhausted one of the resource budgets guarding
    /// against hostile expressions (`while(1) 1`, cyclic `-->` walks,
    /// pathological nesting). `budget` names which guard fired so the
    /// user knows which knob to raise.
    BudgetExceeded {
        /// Which budget was exhausted: `"step"`, `"depth"`,
        /// `"expansion"`, or `"time"`.
        budget: String,
        /// The configured limit (for `"time"`, in milliseconds).
        limit: u64,
        /// The offending sub-expression's symbolic value, when one is
        /// known (empty otherwise).
        sym: String,
    },
    /// An error reported by the debugger backend.
    Target(TargetError),
    /// An internal evaluator failure (a panic caught at the REPL
    /// boundary). The session survives — state may be suspect, but the
    /// loop keeps accepting commands instead of tearing down the whole
    /// debugging session.
    Internal(String),
}

impl DuelError {
    /// Is this a *fault* — an error confined to the value being
    /// computed (bad pointer, unmapped address), as opposed to a
    /// failure of the evaluation as a whole? Faults can be rendered as
    /// `<error: ...>` values while the rest of a stream continues.
    pub fn is_fault(&self) -> bool {
        match self {
            DuelError::IllegalMemory { .. } => true,
            DuelError::Target(e) => e.is_fault(),
            _ => false,
        }
    }
}

impl fmt::Display for DuelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DuelError::Lex { offset, message } => {
                write!(f, "lexical error at column {offset}: {message}")
            }
            DuelError::Parse { offset, message } => {
                write!(f, "syntax error at column {offset}: {message}")
            }
            DuelError::IllegalMemory { role, sym, addr } => write!(
                f,
                "Illegal memory reference in {role}: {sym} = lvalue 0x{addr:x}."
            ),
            DuelError::Type { sym, message } => {
                write!(f, "type error in `{sym}`: {message}")
            }
            DuelError::Undefined { name } => {
                write!(f, "`{name}` is not defined")
            }
            DuelError::NotLvalue { sym } => {
                write!(f, "`{sym}` is not an lvalue")
            }
            DuelError::DivByZero { sym } => {
                write!(f, "division by zero in `{sym}`")
            }
            DuelError::LimitExceeded { limit } => write!(
                f,
                "expression produced more than {limit} values; \
                 raise EvalOptions::max_values to continue"
            ),
            DuelError::BudgetExceeded { budget, limit, sym } => {
                let unit = if budget == "time" { " ms" } else { "" };
                if sym.is_empty() {
                    write!(
                        f,
                        "evaluation exceeded the {budget} budget of {limit}{unit}; \
                         raise the limit to continue"
                    )
                } else {
                    write!(
                        f,
                        "evaluation exceeded the {budget} budget of {limit}{unit} \
                         at `{sym}`; raise the limit to continue"
                    )
                }
            }
            DuelError::Target(e) => write!(f, "{e}"),
            DuelError::Internal(msg) => {
                write!(f, "internal error: {msg} (session state may be suspect)")
            }
        }
    }
}

impl std::error::Error for DuelError {}

impl From<TargetError> for DuelError {
    fn from(e: TargetError) -> DuelError {
        DuelError::Target(e)
    }
}

impl From<duel_ctype::TypeError> for DuelError {
    fn from(e: duel_ctype::TypeError) -> DuelError {
        DuelError::Type {
            sym: String::new(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_error_format() {
        let e = DuelError::IllegalMemory {
            role: "x of x->y".into(),
            sym: "ptr[48]".into(),
            addr: 0x16820,
        };
        assert_eq!(
            e.to_string(),
            "Illegal memory reference in x of x->y: ptr[48] = lvalue 0x16820."
        );
    }

    #[test]
    fn conversions() {
        let e: DuelError = TargetError::UnknownSymbol("q".into()).into();
        assert!(matches!(e, DuelError::Target(_)));
    }
}
