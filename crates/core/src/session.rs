//! The `duel` command: parse, drive, display.
//!
//! "Duel's top-level evaluation command 'drives' its expression argument
//! and prints all of its values", each as `symbolic = value`. Pure C
//! expressions (no DUEL construct anywhere) print the value alone, as in
//! the paper's `duel 1 + (double)3/2` ⇒ `2.500`, and so do values with
//! no symbolic information (reductions, lazy mode).

use std::collections::HashMap;

use duel_target::Target;

use crate::{
    ast::Expr,
    error::{DuelError, DuelResult},
    eval::{self, EvalOptions},
    parser, printer,
    profile::{ProfileCollector, ProfileReport},
    scope::Ctx,
    sym::Sym,
    value::Value,
};

/// One line of `duel` command output.
#[derive(Clone, Debug, PartialEq)]
pub enum OutputLine {
    /// A produced value: `sym = value` (or just `value` when `sym` is
    /// `None`).
    Value {
        /// The rendered symbolic value, when one should be shown.
        sym: Option<String>,
        /// The rendered actual value.
        value: String,
    },
    /// Program output produced by target calls (e.g. `printf`).
    Stdout(String),
}

impl OutputLine {
    /// Renders the line as the REPL would print it.
    pub fn render(&self) -> String {
        match self {
            OutputLine::Value {
                sym: Some(s),
                value,
            } => format!("{s} = {value}"),
            OutputLine::Value { sym: None, value } => value.clone(),
            OutputLine::Stdout(s) => s.clone(),
        }
    }
}

/// Counters from the most recent evaluation (instrumentation for the
/// experiment harness and the REPL's `.stats`). Reset by every
/// evaluation, so each snapshot describes exactly one command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Top-level values the command produced.
    pub values: u64,
    /// Leaf-generator activations (a machine-independent work measure).
    pub ticks: u64,
    /// Deepest generator nesting reached.
    pub max_depth: u64,
    /// `-->`/`-->>` structure-expansion steps performed.
    pub expansions: u64,
    /// Generator yields across all nodes, leaf and interior (always at
    /// least `values`: every top-level value is also a root yield).
    pub yields: u64,
    /// Values whose computation included at least one read served from
    /// cache while the backend circuit was open (tagged `<stale>` in
    /// the output). Zero unless the tower contains a
    /// `SupervisedTarget` in degraded mode.
    pub stale_values: u64,
    /// Vectored cache warm-ups the prefetch planner issued (zero unless
    /// [`EvalOptions::prefetch`] is on).
    pub prefetch_calls: u64,
    /// Ranges those warm-ups read cleanly.
    pub prefetch_ranges: u64,
    /// Prefetch windows the planner laid out (each capped at
    /// [`EvalOptions::prefetch_window`] pages).
    pub windows_planned: u64,
    /// Windows that were on the wire while the evaluator kept
    /// consuming (zero unless the tower has an I/O actor and
    /// pipelining is on).
    pub windows_inflight: u64,
    /// Nanoseconds of wire time this evaluation overlapped with
    /// evaluator CPU via the asynchronous pipeline (diffed from the
    /// tower's [`duel_target::PipelineHandle`]).
    pub pipeline_overlap_ns: u64,
    /// Causal trace id assigned to this evaluation (0 when no span
    /// context is stacked on the target or span tracing is off). Every
    /// span and attributed wire event of the command carries this id.
    pub trace_id: u64,
}

/// A DUEL session over a debugger backend: holds the aliases created by
/// `:=` and declarations, and the evaluation options.
pub struct Session<'t> {
    target: &'t mut dyn Target,
    aliases: HashMap<String, Value>,
    /// Evaluation options (public so callers can reconfigure).
    pub options: EvalOptions,
    last_stats: EvalStats,
    last_trace: Vec<String>,
}

impl<'t> Session<'t> {
    /// Creates a session with default options.
    pub fn new(target: &'t mut dyn Target) -> Session<'t> {
        Session {
            target,
            aliases: HashMap::new(),
            options: EvalOptions::default(),
            last_stats: EvalStats::default(),
            last_trace: Vec::new(),
        }
    }

    /// Creates a session with explicit options.
    pub fn with_options(target: &'t mut dyn Target, options: EvalOptions) -> Session<'t> {
        Session {
            target,
            aliases: HashMap::new(),
            options,
            last_stats: EvalStats::default(),
            last_trace: Vec::new(),
        }
    }

    /// Parses a command without evaluating it.
    pub fn parse(&mut self, src: &str) -> DuelResult<Expr> {
        let t: &mut dyn Target = &mut *self.target;
        parser::parse(src, &mut |name: &str| t.lookup_typedef(name).is_some())
    }

    /// Evaluates a `duel` command, returning its output lines.
    ///
    /// On an evaluation error, the lines produced before the error are
    /// lost; use [`Session::eval_partial`] to keep them.
    pub fn eval(&mut self, src: &str) -> DuelResult<Vec<OutputLine>> {
        let (lines, err) = self.eval_partial(src)?;
        match err {
            Some(e) => Err(e),
            None => Ok(lines),
        }
    }

    /// Evaluates a command; parse errors are returned as `Err`, but an
    /// evaluation error is returned alongside the lines produced before
    /// it (the paper's sessions print values until the error, then the
    /// error message).
    pub fn eval_partial(&mut self, src: &str) -> DuelResult<(Vec<OutputLine>, Option<DuelError>)> {
        let (lines, err, _) = self.eval_inner(src, false)?;
        Ok((lines, err))
    }

    /// Evaluates a command under the profiler: like
    /// [`Session::eval_partial`], plus a [`ProfileReport`] attributing
    /// ticks and wire reads to each AST node.
    ///
    /// When the target tower contains a
    /// [`duel_target::TraceTarget`], tracing is enabled for the
    /// duration (and restored afterwards) so wire reads can be diffed
    /// across node spans; without one, read columns stay zero.
    pub fn profile(
        &mut self,
        src: &str,
    ) -> DuelResult<(Vec<OutputLine>, Option<DuelError>, ProfileReport)> {
        let (lines, err, report) = self.eval_inner(src, true)?;
        Ok((lines, err, report.expect("profiling was requested")))
    }

    fn eval_inner(
        &mut self,
        src: &str,
        profiling: bool,
    ) -> DuelResult<(Vec<OutputLine>, Option<DuelError>, Option<ProfileReport>)> {
        // Causal tracing: each evaluation is one trace, rooted in one
        // `eval` span that covers parsing, compilation, and the drive
        // loop — so even typedef-lookup wire traffic during parsing has
        // a live ancestor. The root must be popped on *every* return
        // path, parse errors included.
        let span_ctx = self.target.span_context();
        let (root_span, trace_id) = match &span_ctx {
            Some(s) if s.is_enabled() => {
                let trace = s.begin_trace();
                let src_owned = src.to_string();
                let root = s.push(duel_target::SpanKind::Root, "eval", || {
                    crate::profile::clip(&src_owned, 64)
                });
                (root, trace)
            }
            _ => (0, 0),
        };
        let close_root = |spans: &Option<duel_target::SpanContext>| {
            if let Some(s) = spans {
                s.pop(root_span);
            }
        };
        let expr = match self.parse(src) {
            Ok(e) => e,
            Err(e) => {
                close_root(&span_ctx);
                return Err(e);
            }
        };
        // The symbolic value is shown only when it differs from the
        // typed expression: `duel 1 + (double)3/2` prints `2.500`, while
        // `duel x[1..3] == 7` prints `x[1]==7 = 0` — generator
        // substitution is what makes the symbolic value informative.
        let src_squeezed: String = src.chars().filter(|c| !c.is_whitespace()).collect();
        // Match the paper's transcripts: a top-level call shows the
        // program output it triggers, not its (uninteresting) return
        // values. The frame-exploration builtins are exempt — their
        // values *are* the output.
        let suppress_values = matches!(
            &expr,
            Expr::Call(name, _)
                if !matches!(name.as_str(), "frames" | "local" | "equal")
        );
        let mut gen = eval::compile(&expr);
        let thr = self.options.compress_threshold;
        // When profiling, enable the nearest TraceTarget (if any) for
        // the duration so node spans can diff its read counter.
        let trace_handle = if profiling {
            self.target.trace_handle()
        } else {
            None
        };
        let trace_was_enabled = trace_handle.as_ref().map(|h| {
            let was = h.is_enabled();
            h.set_enabled(true);
            was
        });
        let reads_before = trace_handle.as_ref().map_or(0, |h| h.reads());
        // A SupervisedTarget in degraded mode serves reads from cache
        // and bumps its staleness counter; diffing the counter around
        // each produced value tags exactly the values built on stale
        // data.
        let stale_handle = self.target.staleness_handle();
        let mut stale_seen = stale_handle.as_ref().map_or(0, |h| h.stale_reads());
        let mut stale_values = 0u64;
        // Same watermark pattern for the pipeline: diff the tower's
        // cumulative overlap counter around the evaluation.
        let pipeline_handle = self.target.pipeline_handle();
        let overlap_before = pipeline_handle.as_ref().map_or(0, |h| h.overlap_ns());
        let mut ctx = Ctx::new(&mut *self.target, &mut self.aliases, self.options.clone());
        if profiling {
            ctx.profile = Some(Box::new(ProfileCollector::new(trace_handle.clone())));
        }
        let mut lines = Vec::new();
        let result = eval::drive(&mut ctx, &mut gen, |ctx, v| {
            let out = ctx.target.take_output();
            if !out.is_empty() {
                lines.push(OutputLine::Stdout(out));
            }
            if suppress_values {
                return Ok(());
            }
            // With `error_values` on, a fault while rendering one value
            // (unmapped address, poisoned page) becomes an
            // `<error: ...>` line for that element and the stream
            // continues — the fault is confined to the sub-expression
            // that hit it.
            //
            // Rendering happens after the root generator's span has
            // closed, so its wire reads are charged to a `(display)`
            // pseudo-node — keeping read attribution complete. The
            // causal span mirrors it: display-time wire events hang off
            // a Display span under the evaluation root.
            ctx.profile_enter(crate::profile::DISPLAY_NODE);
            let dspan = ctx.span_enter(duel_target::SpanKind::Display, "display", || {
                v.sym.render(thr)
            });
            let rendered_value = printer::format_value(ctx.target, &v, thr);
            ctx.span_exit(dspan);
            ctx.profile_exit(crate::profile::DISPLAY_NODE, "display", "(display)", false);
            let value = match rendered_value {
                Ok(s) => s,
                Err(e) if ctx.opts.error_values && e.is_fault() => {
                    format!("<error: {e}>")
                }
                Err(e) => return Err(e),
            };
            let value = match &stale_handle {
                Some(h) if h.stale_reads() > stale_seen => {
                    stale_seen = h.stale_reads();
                    stale_values += 1;
                    format!("{value} <stale>")
                }
                _ => value,
            };
            let sym = if matches!(v.sym, Sym::None) {
                None
            } else {
                let rendered = v.sym.render(thr);
                let squeezed: String = rendered.chars().filter(|c| !c.is_whitespace()).collect();
                // Also collapse `0 = 0`-style lines where the symbolic
                // value is just the value itself (fully substituted).
                if squeezed == src_squeezed || rendered == value {
                    None
                } else {
                    Some(rendered)
                }
            };
            lines.push(OutputLine::Value { sym, value });
            Ok(())
        });
        let windows_planned = ctx.windows_planned;
        let windows_inflight = ctx.windows_inflight;
        let (prefetch_calls, prefetch_ranges) = (ctx.prefetch_calls, ctx.prefetch_ranges);
        let (produced, ticks, max_depth_seen, expansions, yields) = (
            ctx.produced,
            ctx.ticks,
            ctx.max_depth_seen,
            ctx.expansions,
            ctx.yields,
        );
        let collector = ctx.profile.take();
        self.last_trace = std::mem::take(&mut ctx.trace);
        drop(ctx);
        // A terminated scan (`@`, an error, `max_values`) can leave its
        // double-buffered window un-polled; complete every leftover so
        // the actor queue is empty before the next command.
        while self.target.prefetch_poll().is_some() {}
        self.last_stats = EvalStats {
            values: produced,
            ticks,
            max_depth: max_depth_seen as u64,
            expansions,
            yields,
            stale_values,
            prefetch_calls,
            prefetch_ranges,
            windows_planned,
            windows_inflight,
            pipeline_overlap_ns: pipeline_handle
                .as_ref()
                .map_or(0, |h| h.overlap_ns().saturating_sub(overlap_before)),
            trace_id,
        };
        // Flush any output produced after the last value (or before an
        // error).
        let out = self.target.take_output();
        if !out.is_empty() {
            lines.push(OutputLine::Stdout(out));
        }
        let report = collector.map(|c| {
            let total_reads = trace_handle.as_ref().map_or(0, |h| h.reads()) - reads_before;
            c.finish(self.last_stats, total_reads)
        });
        if let (Some(h), Some(was)) = (&trace_handle, trace_was_enabled) {
            h.set_enabled(was);
        }
        close_root(&span_ctx);
        Ok((lines, result.err(), report))
    }

    /// Evaluates a command and renders every line as the REPL prints it;
    /// stdout chunks are split on newlines.
    pub fn eval_lines(&mut self, src: &str) -> DuelResult<Vec<String>> {
        let lines = self.eval(src)?;
        Ok(render_lines(&lines))
    }

    /// Creates a session resuming previously saved aliases (REPLs use
    /// this to interleave debugger commands with evaluation).
    pub fn with_state(
        target: &'t mut dyn Target,
        aliases: HashMap<String, Value>,
        options: EvalOptions,
    ) -> Session<'t> {
        Session {
            target,
            aliases,
            options,
            last_stats: EvalStats::default(),
            last_trace: Vec::new(),
        }
    }

    /// Consumes the session, returning its aliases for a later
    /// [`Session::with_state`].
    pub fn into_aliases(self) -> HashMap<String, Value> {
        self.aliases
    }

    /// Counters from the most recent evaluation.
    pub fn last_stats(&self) -> EvalStats {
        self.last_stats
    }

    /// Takes the trace of the most recent evaluation (one line per
    /// generator resumption; empty unless `options.trace` is set).
    pub fn take_trace(&mut self) -> Vec<String> {
        std::mem::take(&mut self.last_trace)
    }

    /// Removes every alias (a fresh debugging session).
    pub fn clear_aliases(&mut self) {
        self.aliases.clear();
    }

    /// The names of currently defined aliases, sorted.
    pub fn alias_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.aliases.keys().cloned().collect();
        v.sort();
        v
    }

    /// Direct access to the backend (for examples and the REPL).
    pub fn target_mut(&mut self) -> &mut dyn Target {
        &mut *self.target
    }
}

/// Renders output lines to printable strings, splitting stdout chunks on
/// newlines and dropping a trailing empty fragment.
pub fn render_lines(lines: &[OutputLine]) -> Vec<String> {
    let mut out = Vec::new();
    for l in lines {
        match l {
            OutputLine::Stdout(s) => {
                for part in s.split('\n') {
                    if !part.is_empty() {
                        out.push(part.to_string());
                    }
                }
            }
            other => out.push(other.render()),
        }
    }
    out
}

/// Evaluates one expression against `target` in a throwaway session and
/// returns the rendered lines plus the first error, if any.
///
/// This is the one-shot path behind `.query` and `duel-replay --query`:
/// a secondary session (fresh aliases, caller-chosen options) over a
/// synthetic target, with parse errors folded into the error slot so
/// callers have a single reporting path.
pub fn oneshot_lines(
    target: &mut dyn Target,
    expr: &str,
    options: &EvalOptions,
) -> (Vec<String>, Option<DuelError>) {
    let mut session = Session::with_options(target, options.clone());
    match session.eval_partial(expr) {
        Ok((lines, err)) => (render_lines(&lines), err),
        Err(e) => (Vec::new(), Some(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duel_target::scenario;

    #[test]
    fn pure_c_prints_value_only() {
        let mut t = scenario::scan_array();
        let mut s = Session::new(&mut t);
        assert_eq!(s.eval_lines("1 + (double)3/2").unwrap(), vec!["2.500"]);
        assert_eq!(s.eval_lines("2+3*4").unwrap(), vec!["14"]);
    }

    #[test]
    fn generators_print_symbolically() {
        let mut t = scenario::scan_array();
        let mut s = Session::new(&mut t);
        assert_eq!(
            s.eval_lines("x[1..3] == 7").unwrap(),
            vec!["x[1]==7 = 0", "x[2]==7 = 0", "x[3]==7 = 1"]
        );
    }

    #[test]
    fn paper_scan_transcript() {
        let mut t = scenario::scan_array();
        let mut s = Session::new(&mut t);
        assert_eq!(
            s.eval_lines("x[1..4,8,12..50] >? 5 <? 10").unwrap(),
            vec!["x[3] = 7", "x[18] = 9", "x[47] = 6"]
        );
    }

    #[test]
    fn alias_persists_across_commands() {
        let mut t = scenario::scan_array();
        let mut s = Session::new(&mut t);
        s.eval("v := 40 + 2").unwrap();
        // A bare `v` renders the same symbolic as typed, so only the
        // value prints.
        assert_eq!(s.eval_lines("v").unwrap(), vec!["42"]);
        assert_eq!(s.alias_names(), vec!["v"]);
        s.clear_aliases();
        assert!(s.eval("v").is_err());
    }

    #[test]
    fn trailing_semicolon_suppresses_output() {
        let mut t = scenario::scan_array();
        let mut s = Session::new(&mut t);
        assert!(s.eval_lines("x[0] = 5 ;").unwrap().is_empty());
        assert_eq!(s.eval_lines("x[0]").unwrap(), vec!["5"]);
        // With a generator index, the symbolic differs and is shown.
        assert_eq!(s.eval_lines("x[0..0]").unwrap(), vec!["x[0] = 5"]);
    }

    #[test]
    fn prefetch_planner_warms_contiguous_scans_in_one_turn() {
        use duel_target::{CacheConfig, CachedTarget, TraceTarget};
        // Wire-level trace *inside* the cache: every recorded call is a
        // real backend turn.
        let run = |prefetch: bool| {
            let wire = TraceTarget::with_label(scenario::scan_array(), "wire");
            let handle = wire.handle();
            handle.set_enabled(true);
            let mut t = CachedTarget::with_config(
                wire,
                CacheConfig {
                    page_size: 16,
                    ..CacheConfig::default()
                },
            );
            let mut s = Session::new(&mut t);
            s.options.prefetch = prefetch;
            let lines = s.eval_lines("x[..60]").unwrap();
            let stats = s.last_stats();
            (lines, stats, handle.wire_turns())
        };
        let (base_lines, base_stats, base_turns) = run(false);
        let (pf_lines, pf_stats, pf_turns) = run(true);
        // Identical output, fewer wire turns: 240 bytes / 16-byte pages
        // is 15 demand fetches versus one vectored warm-up.
        assert_eq!(base_lines, pf_lines);
        assert_eq!(base_stats.prefetch_calls, 0);
        assert_eq!(pf_stats.prefetch_calls, 1);
        // 240 bytes fit in one `prefetch_window` (64 × 16b pages), so
        // the planner lays out a single window whose wire read carries
        // the 15 missing pages.
        assert_eq!(pf_stats.windows_planned, 1);
        assert_eq!(pf_stats.prefetch_ranges, 15);
        assert_eq!(base_turns, 15);
        assert_eq!(pf_turns, 1);
    }

    #[test]
    fn prefetch_windows_bound_memory_on_huge_scans() {
        use duel_target::{CacheConfig, CachedTarget};
        // A 100k-element scan must be warmed in bounded windows, never
        // one giant vectored call. SimTarget's arena is far smaller, so
        // most windows fail and stay cold — the point is the *plan*.
        let mut t = CachedTarget::with_config(
            scenario::bench_array(4096, 7),
            CacheConfig {
                page_size: 64,
                ..CacheConfig::default()
            },
        );
        let mut s = Session::new(&mut t);
        s.options.prefetch = true;
        s.options.max_values = 200_000;
        s.options.error_values = true;
        let _ = s.eval_lines("x[..100000]");
        let stats = s.last_stats();
        // 100000 × 4 bytes / (64 pages × 64 bytes) = 97.65 → 98 windows.
        assert_eq!(stats.windows_planned, 98, "{stats:?}");
        assert!(stats.prefetch_calls >= 98);
    }

    #[test]
    fn eval_partial_reports_errors_after_values() {
        let mut t = scenario::scan_array();
        let mut s = Session::new(&mut t);
        // `x` has 60 elements; indexing beyond the data region will
        // eventually fault, after producing some values.
        let (lines, err) = s.eval_partial("nonexistent").unwrap();
        assert!(lines.is_empty());
        assert!(matches!(err, Some(DuelError::Undefined { .. })));
    }
}
