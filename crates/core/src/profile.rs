//! Per-node evaluation profiling: `ProfileReport` and its collector.
//!
//! The evaluator wraps every compiled AST node in a span (see
//! `eval::TraceGen`): on entry it snapshots the tick counter and the
//! wire-read counter of the nearest [`duel_target::TraceTarget`]; on
//! exit it charges the deltas to that node, minus whatever its children
//! consumed inside the span. Self costs therefore partition the totals:
//! summing `self_ticks` over all nodes reproduces the evaluation's tick
//! count exactly, and likewise for attributed reads — which is what
//! lets `.profile x[..10000] >? 0` say *the index generator cost N
//! ticks, the filter M, the dereference K wire reads*.
//!
//! Value rendering happens outside any generator span (the drive loop
//! formats each produced value after the root yields it); those reads
//! are charged to a pseudo-node named `(display)` so attribution still
//! covers 100% of the traffic.
//!
//! Profiling and causal span tracing share one seam: `eval::TraceGen`
//! is the sole place node entry/exit is observed, and it drives both
//! this collector and the tower's [`duel_target::SpanContext`]. A
//! [`ProfileReport`] is therefore exactly a fold over the span stream —
//! grouping Node spans by compiled-node id and charging exclusive
//! deltas — while the span ring keeps the raw tree for Perfetto and
//! flamegraph export. The two views are derived from the same events
//! and cannot disagree about what ran.

use std::collections::HashMap;

use duel_target::TraceHandle;

use crate::ast::{BaseType, Expr, TypeExpr, UnOp};
use crate::session::EvalStats;

/// Node id of the `(display)` pseudo-node (value rendering).
pub const DISPLAY_NODE: usize = usize::MAX;

/// Cost attributed to one AST node over one evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeCost {
    /// Unique id of the compiled node (stable within one evaluation).
    pub id: usize,
    /// Id of the enclosing node, `None` for the root (and for the
    /// `(display)` pseudo-node).
    pub parent: Option<usize>,
    /// The paper's operator name (`to`, `ifcmp`, `index`, …).
    pub label: &'static str,
    /// The node's symbolic text, e.g. `x[..256]`.
    pub text: String,
    /// Times the node's generator was resumed.
    pub resumptions: u64,
    /// Resumptions that yielded a value (the rest hit `NOVALUE`).
    pub yields: u64,
    /// Ticks consumed by this node itself (children excluded).
    pub self_ticks: u64,
    /// Ticks consumed by this node and everything below it.
    pub total_ticks: u64,
    /// Wire reads issued by this node itself.
    pub self_reads: u64,
    /// Wire reads issued by this node and everything below it.
    pub total_reads: u64,
}

/// The profile of one evaluation: per-node costs plus totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileReport {
    /// Per-node costs, in span-exit (post-)order.
    pub nodes: Vec<NodeCost>,
    /// Ticks the whole evaluation consumed.
    pub total_ticks: u64,
    /// Wire reads observed across the whole evaluation (0 when no
    /// `TraceTarget` is stacked on the target).
    pub total_reads: u64,
    /// The evaluation's counters (same as [`crate::Session::last_stats`]).
    pub stats: EvalStats,
}

impl ProfileReport {
    /// Sum of per-node self ticks — equals [`ProfileReport::total_ticks`]
    /// when every span closed (the invariant the test suite asserts).
    pub fn attributed_ticks(&self) -> u64 {
        self.nodes.iter().map(|n| n.self_ticks).sum()
    }

    /// Sum of per-node self reads.
    pub fn attributed_reads(&self) -> u64 {
        self.nodes.iter().map(|n| n.self_reads).sum()
    }

    /// Nodes sorted hottest-first (self ticks, then self reads).
    pub fn hottest(&self) -> Vec<&NodeCost> {
        let mut v: Vec<&NodeCost> = self.nodes.iter().collect();
        v.sort_by(|a, b| {
            (b.self_ticks, b.self_reads, a.id).cmp(&(a.self_ticks, a.self_reads, b.id))
        });
        v
    }

    /// Renders the `.profile` cost table, hottest nodes first.
    pub fn render_table(&self, max_rows: usize) -> String {
        let mut out = String::new();
        out.push_str(
            "  self-ticks      ticks  self-reads      reads    resumed    yielded  node\n",
        );
        let hot = self.hottest();
        for n in hot.iter().take(max_rows) {
            out.push_str(&format!(
                "{:>12} {:>10} {:>11} {:>10} {:>10} {:>10}  {} ({})\n",
                n.self_ticks,
                n.total_ticks,
                n.self_reads,
                n.total_reads,
                n.resumptions,
                n.yields,
                n.text,
                n.label
            ));
        }
        if hot.len() > max_rows {
            out.push_str(&format!("  … {} more nodes\n", hot.len() - max_rows));
        }
        let pct = |part: u64, whole: u64| {
            if whole == 0 {
                100.0
            } else {
                100.0 * part as f64 / whole as f64
            }
        };
        out.push_str(&format!(
            "total: {} ticks, {} reads; attributed: {:.1}% of ticks, {:.1}% of reads\n",
            self.total_ticks,
            self.total_reads,
            pct(self.attributed_ticks(), self.total_ticks),
            pct(self.attributed_reads(), self.total_reads),
        ));
        out
    }

    /// Renders the `.explain` view: the executed AST as an indented
    /// tree, each node annotated with its costs.
    pub fn render_tree(&self) -> String {
        let mut children: HashMap<Option<usize>, Vec<&NodeCost>> = HashMap::new();
        for n in &self.nodes {
            children.entry(n.parent).or_default().push(n);
        }
        // Compilation assigns ids post-order, so among siblings the
        // leftmost (first-compiled) node has the smallest id.
        for v in children.values_mut() {
            v.sort_by_key(|n| n.id);
        }
        let mut out = String::new();
        fn walk(
            out: &mut String,
            children: &HashMap<Option<usize>, Vec<&NodeCost>>,
            parent: Option<usize>,
            depth: usize,
        ) {
            if let Some(kids) = children.get(&parent) {
                for n in kids {
                    out.push_str(&format!(
                        "{}{} ({}): {} resumed, {} yielded, ticks {}/{}, reads {}/{}\n",
                        "  ".repeat(depth),
                        n.text,
                        n.label,
                        n.resumptions,
                        n.yields,
                        n.self_ticks,
                        n.total_ticks,
                        n.self_reads,
                        n.total_reads,
                    ));
                    walk(out, children, Some(n.id), depth + 1);
                }
            }
        }
        walk(&mut out, &children, None, 0);
        out
    }
}

struct Frame {
    id: usize,
    ticks_at: u64,
    reads_at: u64,
    child_ticks: u64,
    child_reads: u64,
}

/// Accumulates per-node costs during one evaluation (held by
/// [`crate::scope::Ctx`] while profiling is on).
pub struct ProfileCollector {
    reads: Option<TraceHandle>,
    stack: Vec<Frame>,
    nodes: Vec<NodeCost>,
    index: HashMap<usize, usize>,
}

impl ProfileCollector {
    /// Creates a collector; `reads` is the trace handle whose
    /// `get_bytes` counter is diffed across spans (reads stay 0 without
    /// one).
    pub fn new(reads: Option<TraceHandle>) -> ProfileCollector {
        ProfileCollector {
            reads,
            stack: Vec::new(),
            nodes: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The current wire-read counter.
    pub fn reads_now(&self) -> u64 {
        self.reads.as_ref().map_or(0, |h| h.reads())
    }

    /// Opens a span for node `id`.
    pub fn enter(&mut self, id: usize, ticks_now: u64) {
        let reads_at = self.reads_now();
        self.stack.push(Frame {
            id,
            ticks_at: ticks_now,
            reads_at,
            child_ticks: 0,
            child_reads: 0,
        });
    }

    /// Closes the innermost span, charging its exclusive cost to node
    /// `id` and its inclusive cost to the parent's child-accumulator.
    pub fn exit(
        &mut self,
        id: usize,
        label: &'static str,
        text: &str,
        yielded: bool,
        ticks_now: u64,
    ) {
        let reads_now = self.reads_now();
        let f = self.stack.pop().expect("profile spans are balanced");
        debug_assert_eq!(f.id, id, "profile spans close in LIFO order");
        let total_ticks = ticks_now - f.ticks_at;
        let total_reads = reads_now - f.reads_at;
        let parent = self.stack.last().map(|pf| pf.id);
        let idx = *self.index.entry(id).or_insert_with(|| {
            self.nodes.push(NodeCost {
                id,
                parent,
                label,
                text: text.to_string(),
                resumptions: 0,
                yields: 0,
                self_ticks: 0,
                total_ticks: 0,
                self_reads: 0,
                total_reads: 0,
            });
            self.nodes.len() - 1
        });
        let n = &mut self.nodes[idx];
        n.resumptions += 1;
        n.yields += yielded as u64;
        n.self_ticks += total_ticks - f.child_ticks;
        n.total_ticks += total_ticks;
        n.self_reads += total_reads - f.child_reads;
        n.total_reads += total_reads;
        if let Some(pf) = self.stack.last_mut() {
            pf.child_ticks += total_ticks;
            pf.child_reads += total_reads;
        }
    }

    /// Finishes the collection into a report.
    pub fn finish(self, stats: EvalStats, total_reads: u64) -> ProfileReport {
        ProfileReport {
            nodes: self.nodes,
            total_ticks: stats.ticks,
            total_reads,
            stats,
        }
    }
}

// ---------------------------------------------------------------------
// Symbolic text for AST nodes (the `.profile`/`.explain` row keys).
// ---------------------------------------------------------------------

/// Clips a rendered node text for display, appending `…` when cut.
pub fn clip(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

/// Renders an expression back to compact DUEL source text — the
/// "symbolic text" keying profile rows. Lossy about whitespace and
/// parenthesization, never about structure.
pub fn expr_text(e: &Expr) -> String {
    // Parenthesize composite children of prefix/infix operators;
    // postfix chains (indexing, selection, field walks) bind tightly
    // enough to read unparenthesized.
    fn p(e: &Expr) -> String {
        use Expr::*;
        match e {
            Int(_) | Float(_) | Char(_) | Str(_) | Name(_) | Underscore | Call(..) | Braced(..)
            | Index(..) | Select(..) | With(..) | Dfs(..) | Bfs(..) | IndexAlias(..) => {
                expr_text(e)
            }
            _ => format!("({})", expr_text(e)),
        }
    }
    use Expr::*;
    match e {
        Int(v) => v.to_string(),
        Float(v) => format!("{v}"),
        Char(c) => format!("'{}'", (*c as char).escape_default()),
        Str(s) => format!("\"{s}\""),
        Name(n) => n.clone(),
        Underscore => "_".to_string(),
        To(a, b) => format!("{}..{}", p(a), p(b)),
        ToPrefix(a) => format!("..{}", p(a)),
        ToInf(a) => format!("{}..", p(a)),
        Alt(a, b) => format!("{},{}", expr_text(a), expr_text(b)),
        Unary(op, a) => {
            let sp = match op {
                UnOp::Neg => "-",
                UnOp::Pos => "+",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
                UnOp::Deref => "*",
                UnOp::Addr => "&",
            };
            format!("{sp}{}", p(a))
        }
        PreIncDec { inc, expr } => format!("{}{}", if *inc { "++" } else { "--" }, p(expr)),
        PostIncDec { inc, expr } => format!("{}{}", p(expr), if *inc { "++" } else { "--" }),
        SizeofExpr(a) => format!("sizeof {}", p(a)),
        SizeofType(t) => format!("sizeof({})", type_text(t)),
        Cast(t, a) => format!("({}){}", type_text(t), p(a)),
        Bin(op, a, b) => format!("{}{}{}", p(a), op.spelling(), p(b)),
        AndAnd(a, b) => format!("{}&&{}", p(a), p(b)),
        OrOr(a, b) => format!("{}||{}", p(a), p(b)),
        Cond(c, a, b) => format!("{}?{}:{}", p(c), p(a), p(b)),
        Assign(op, l, r) => {
            let sp = op.map(|o| o.spelling()).unwrap_or("");
            format!("{}{sp}={}", p(l), p(r))
        }
        Filter(op, a, b) => format!("{}{}{}", p(a), op.spelling(), p(b)),
        Index(a, b) => format!("{}[{}]", p(a), expr_text(b)),
        Select(a, b) => format!("{}[[{}]]", p(a), expr_text(b)),
        With(link, a, b) => {
            let sp = match link {
                crate::ast::WithLink::Dot => ".",
                crate::ast::WithLink::Arrow => "->",
            };
            format!("{}{sp}{}", p(a), p(b))
        }
        Dfs(a, b) => format!("{}-->{}", p(a), p(b)),
        Bfs(a, b) => format!("{}-->>{}", p(a), p(b)),
        Imply(a, b) => format!("{} => {}", p(a), p(b)),
        Seq(a, b) => format!("{}; {}", expr_text(a), expr_text(b)),
        Discard(a) => format!("{} ;", expr_text(a)),
        If(c, t, f) => match f {
            Some(f) => format!("if ({}) {} else {}", expr_text(c), p(t), p(f)),
            None => format!("if ({}) {}", expr_text(c), p(t)),
        },
        While(c, b) => format!("while ({}) {}", expr_text(c), p(b)),
        For {
            init,
            cond,
            step,
            body,
        } => {
            let part = |o: &Option<Box<Expr>>| o.as_ref().map(|e| expr_text(e)).unwrap_or_default();
            format!(
                "for ({};{};{}) {}",
                part(init),
                part(cond),
                part(step),
                p(body)
            )
        }
        Alias(name, a) => format!("{name} := {}", expr_text(a)),
        Decl { base, decls } => {
            let names: Vec<&str> = decls.iter().map(|d| d.name.as_str()).collect();
            format!("{} {};", type_text(base), names.join(", "))
        }
        Call(name, args) => {
            let args: Vec<String> = args.iter().map(expr_text).collect();
            format!("{name}({})", args.join(","))
        }
        Reduce(op, a) => format!("{}{}", op.spelling(), p(a)),
        IndexAlias(a, name) => format!("{}#{name}", p(a)),
        Until(a, stop) => format!("{}@{}", p(a), p(stop)),
        Braced(a) => format!("{{{}}}", expr_text(a)),
    }
}

fn type_text(t: &TypeExpr) -> String {
    let base = match &t.base {
        BaseType::Void => "void".to_string(),
        BaseType::Prim(p) => format!("{p:?}").to_lowercase(),
        BaseType::Struct(tag) => format!("struct {tag}"),
        BaseType::Union(tag) => format!("union {tag}"),
        BaseType::Enum(tag) => format!("enum {tag}"),
        BaseType::Typedef(name) => name.clone(),
    };
    let mut out = base;
    for d in &t.derivs {
        match d {
            crate::ast::Deriv::Ptr => out.push('*'),
            crate::ast::Deriv::Array(Some(n)) => out.push_str(&format!("[{n}]")),
            crate::ast::Deriv::Array(None) => out.push_str("[]"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    fn text_of(src: &str) -> String {
        let e = parser::parse(src, &mut |_| false).unwrap();
        expr_text(&e)
    }

    #[test]
    fn expr_text_roundtrips_common_forms() {
        assert_eq!(text_of("x[1..3] == 7"), "x[1..3]==7");
        assert_eq!(text_of("x[..10] >? 5"), "x[..10]>?5");
        assert_eq!(text_of("head-->next->value"), "head-->next->value");
        assert_eq!(text_of("#/(hash[..8]-->next)"), "#/hash[..8]-->next");
        assert_eq!(text_of("v := 40+2"), "v := 40+2");
        assert_eq!(text_of("f(1, 2..3)"), "f(1,2..3)");
    }

    #[test]
    fn clip_marks_truncation() {
        assert_eq!(clip("short", 10), "short");
        let c = clip("0123456789abcdef", 8);
        assert_eq!(c.chars().count(), 8);
        assert!(c.ends_with('…'));
    }

    #[test]
    fn collector_partitions_costs_between_parent_and_child() {
        let mut c = ProfileCollector::new(None);
        // Parent span: 10 ticks total, child takes 6 of them.
        c.enter(1, 0);
        c.enter(2, 2);
        c.exit(2, "child", "c", true, 8);
        c.exit(1, "parent", "p", true, 10);
        let r = c.finish(
            EvalStats {
                ticks: 10,
                ..EvalStats::default()
            },
            0,
        );
        assert_eq!(r.attributed_ticks(), 10);
        let child = r.nodes.iter().find(|n| n.id == 2).unwrap();
        let parent = r.nodes.iter().find(|n| n.id == 1).unwrap();
        assert_eq!(child.self_ticks, 6);
        assert_eq!(child.parent, Some(1));
        assert_eq!(parent.self_ticks, 4);
        assert_eq!(parent.total_ticks, 10);
        assert_eq!(parent.parent, None);
        assert!(
            r.render_tree().starts_with("p (parent)"),
            "{}",
            r.render_tree()
        );
        assert!(r.render_table(10).contains("attributed: 100.0%"));
    }
}
