//! Symbolic values and the display algorithm.
//!
//! Every DUEL value carries a *symbolic value*: "a symbolic expression
//! (i.e., a legal Duel expression) that indicates how the value was
//! computed". Output lines read `x[3] = 7`; errors name the offending
//! operand. Two algorithmic details from the paper are implemented here:
//!
//! * **substitution** — "The algorithm substitutes the actual value only
//!   for generators; other expressions are displayed as entered": range
//!   and alternation yield leaves holding the produced value, names stay
//!   names, `{e}` forces value substitution;
//! * **compression** — "The symbolic display algorithm automatically
//!   prints occurrences of `->a->a` as `-->a[[2]]`, etc." Repeated
//!   field steps collapse into a [`Sym::Chain`]; rendering expands the
//!   chain when it is shorter than the compression threshold. The
//!   paper's own transcripts disagree on the threshold (`hash[0]` walks
//!   print three expanded `->next` steps, the sortedness check prints
//!   `-->next[[8]]`), so the threshold is configurable and defaults to 4.
//!
//! The paper also notes the cost: "In most cases, the computation of the
//! symbolic value is more expensive than computing the result."
//! [`SymMode::Lazy`] disables construction entirely; experiment E4
//! measures the difference.

use std::rc::Rc;

/// Whether symbolic values are built during evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymMode {
    /// Build symbolic values (the paper's behaviour).
    Eager,
    /// Skip symbolic construction (the optimization the paper suggests
    /// for watchpoint-style uses); output falls back to value-only.
    Lazy,
}

/// Rendering precedences, mirroring the parser's table.
mod prec {
    /// `,` (alternation).
    pub const COMMA: u8 = 1;
    /// Assignment and `:=`.
    pub const ASSIGN: u8 = 4;
    /// `..`.
    pub const RANGE: u8 = 16;
    /// Prefix operators.
    pub const UNARY: u8 = 17;
    /// Postfix operators.
    pub const POSTFIX: u8 = 18;
    /// Leaves.
    pub const ATOM: u8 = 19;
}

/// A symbolic value.
#[derive(Clone, Debug, PartialEq)]
pub enum Sym {
    /// No symbolic information (lazy mode).
    None,
    /// An atom: a name, a literal, or a substituted value.
    Leaf(Rc<str>),
    /// A prefix unary operator.
    Un {
        /// Operator spelling.
        op: &'static str,
        /// Operand.
        e: Rc<Sym>,
    },
    /// A binary operator.
    Bin {
        /// Operator spelling.
        op: &'static str,
        /// Rendering precedence.
        prec: u8,
        /// Left operand.
        l: Rc<Sym>,
        /// Right operand.
        r: Rc<Sym>,
    },
    /// `base[idx]`.
    Index {
        /// The indexed expression.
        base: Rc<Sym>,
        /// The (substituted) index.
        idx: Rc<Sym>,
    },
    /// `base.name` or `base->name`.
    Field {
        /// `true` for `->`.
        arrow: bool,
        /// The structure (or pointer) expression.
        base: Rc<Sym>,
        /// The field name.
        name: Rc<str>,
    },
    /// A run of `count` identical `->name` steps, displayed as
    /// `base-->name[[count]]` when long enough.
    Chain {
        /// The start of the chain.
        base: Rc<Sym>,
        /// The repeated field name.
        name: Rc<str>,
        /// Number of steps (≥ 2).
        count: u32,
    },
    /// `f(a, b, …)`.
    Call {
        /// Function name.
        name: Rc<str>,
        /// Argument syms.
        args: Rc<[Sym]>,
    },
    /// `(type)e`.
    Cast {
        /// Rendered type name.
        ty: Rc<str>,
        /// Operand.
        e: Rc<Sym>,
    },
}

impl Sym {
    /// The empty symbolic value.
    pub fn none() -> Sym {
        Sym::None
    }

    /// An atom from text.
    pub fn leaf(s: impl AsRef<str>) -> Sym {
        Sym::Leaf(Rc::from(s.as_ref()))
    }

    /// An atom holding a produced integer (generator substitution).
    pub fn int(v: i64) -> Sym {
        Sym::leaf(v.to_string())
    }

    /// A unary node (no-op when the operand is [`Sym::None`]).
    pub fn un(op: &'static str, e: &Sym) -> Sym {
        if matches!(e, Sym::None) {
            return Sym::None;
        }
        Sym::Un {
            op,
            e: Rc::new(e.clone()),
        }
    }

    /// A binary node (no-op when either operand is [`Sym::None`]).
    pub fn bin(op: &'static str, prec: u8, l: &Sym, r: &Sym) -> Sym {
        if matches!(l, Sym::None) || matches!(r, Sym::None) {
            return Sym::None;
        }
        Sym::Bin {
            op,
            prec,
            l: Rc::new(l.clone()),
            r: Rc::new(r.clone()),
        }
    }

    /// `base[idx]`.
    pub fn index(base: &Sym, idx: &Sym) -> Sym {
        if matches!(base, Sym::None) || matches!(idx, Sym::None) {
            return Sym::None;
        }
        Sym::Index {
            base: Rc::new(base.clone()),
            idx: Rc::new(idx.clone()),
        }
    }

    /// A field step, collapsing repeated `->name` runs into a chain.
    pub fn field(arrow: bool, base: &Sym, name: &str) -> Sym {
        if matches!(base, Sym::None) {
            return Sym::None;
        }
        if arrow {
            match base {
                Sym::Field {
                    arrow: true,
                    base: inner,
                    name: n2,
                } if n2.as_ref() == name => {
                    return Sym::Chain {
                        base: inner.clone(),
                        name: n2.clone(),
                        count: 2,
                    };
                }
                Sym::Chain {
                    base: inner,
                    name: n2,
                    count,
                } if n2.as_ref() == name => {
                    return Sym::Chain {
                        base: inner.clone(),
                        name: n2.clone(),
                        count: count + 1,
                    };
                }
                _ => {}
            }
        }
        Sym::Field {
            arrow,
            base: Rc::new(base.clone()),
            name: Rc::from(name),
        }
    }

    /// `f(args…)`.
    pub fn call(name: &str, args: Vec<Sym>) -> Sym {
        Sym::Call {
            name: Rc::from(name),
            args: Rc::from(args),
        }
    }

    /// `(ty)e`.
    pub fn cast(ty: &str, e: &Sym) -> Sym {
        if matches!(e, Sym::None) {
            return Sym::None;
        }
        Sym::Cast {
            ty: Rc::from(ty),
            e: Rc::new(e.clone()),
        }
    }

    fn prec(&self) -> u8 {
        match self {
            Sym::None | Sym::Leaf(_) => prec::ATOM,
            Sym::Un { .. } | Sym::Cast { .. } => prec::UNARY,
            Sym::Bin { prec, .. } => *prec,
            Sym::Index { .. } | Sym::Field { .. } | Sym::Chain { .. } | Sym::Call { .. } => {
                prec::POSTFIX
            }
        }
    }

    /// Renders the symbolic value; chains of `compress_threshold` or more
    /// steps print as `base-->name[[count]]`.
    pub fn render(&self, compress_threshold: u32) -> String {
        let mut out = String::new();
        self.render_into(&mut out, compress_threshold);
        out
    }

    fn child(&self, out: &mut String, needs_parens: bool, threshold: u32) {
        if needs_parens {
            out.push('(');
            self.render_into(out, threshold);
            out.push(')');
        } else {
            self.render_into(out, threshold);
        }
    }

    fn render_into(&self, out: &mut String, threshold: u32) {
        match self {
            Sym::None => out.push_str("<no symbolic value>"),
            Sym::Leaf(s) => out.push_str(s),
            Sym::Un { op, e } => {
                out.push_str(op);
                e.child(out, e.prec() < prec::UNARY, threshold);
            }
            Sym::Bin { op, prec: p, l, r } => {
                l.child(out, l.prec() < *p, threshold);
                out.push_str(op);
                r.child(out, r.prec() <= *p, threshold);
            }
            Sym::Index { base, idx } => {
                base.child(out, base.prec() < prec::POSTFIX, threshold);
                out.push('[');
                idx.render_into(out, threshold);
                out.push(']');
            }
            Sym::Field { arrow, base, name } => {
                base.child(out, base.prec() < prec::POSTFIX, threshold);
                out.push_str(if *arrow { "->" } else { "." });
                out.push_str(name);
            }
            Sym::Chain { base, name, count } => {
                base.child(out, base.prec() < prec::POSTFIX, threshold);
                if *count >= threshold {
                    out.push_str("-->");
                    out.push_str(name);
                    out.push_str("[[");
                    out.push_str(&count.to_string());
                    out.push_str("]]");
                } else {
                    for _ in 0..*count {
                        out.push_str("->");
                        out.push_str(name);
                    }
                }
            }
            Sym::Call { name, args } => {
                out.push_str(name);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    a.render_into(out, threshold);
                }
                out.push(')');
            }
            Sym::Cast { ty, e } => {
                out.push('(');
                out.push_str(ty);
                out.push(')');
                e.child(out, e.prec() < prec::UNARY, threshold);
            }
        }
    }
}

/// Re-exported precedences for builders in `apply`/`eval`.
pub mod precedence {
    pub use super::prec::{ASSIGN, COMMA, RANGE};
    /// `||`.
    pub const OROR: u8 = 6;
    /// `&&`.
    pub const ANDAND: u8 = 7;
    /// `|`.
    pub const BITOR: u8 = 8;
    /// `^`.
    pub const BITXOR: u8 = 9;
    /// `&`.
    pub const BITAND: u8 = 10;
    /// `==` `!=`.
    pub const EQ: u8 = 11;
    /// `<` `<=` `>` `>=`.
    pub const REL: u8 = 12;
    /// `<<` `>>`.
    pub const SHIFT: u8 = 13;
    /// `+` `-`.
    pub const ADD: u8 = 14;
    /// `*` `/` `%`.
    pub const MUL: u8 = 15;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_and_bins() {
        let x1 = Sym::index(&Sym::leaf("x"), &Sym::int(1));
        assert_eq!(x1.render(4), "x[1]");
        let cmp = Sym::bin("==", precedence::EQ, &x1, &Sym::leaf("7"));
        assert_eq!(cmp.render(4), "x[1]==7");
    }

    #[test]
    fn precedence_parens() {
        // 4+0*5 — no parens needed.
        let prod = Sym::bin("*", precedence::MUL, &Sym::leaf("0"), &Sym::leaf("5"));
        let sum = Sym::bin("+", precedence::ADD, &Sym::leaf("4"), &prod);
        assert_eq!(sum.render(4), "4+0*5");
        // (1+2)*3 — parens required.
        let sum2 = Sym::bin("+", precedence::ADD, &Sym::leaf("1"), &Sym::leaf("2"));
        let prod2 = Sym::bin("*", precedence::MUL, &sum2, &Sym::leaf("3"));
        assert_eq!(prod2.render(4), "(1+2)*3");
        // a-(b-c) — right child of same precedence is parenthesized.
        let inner = Sym::bin("-", precedence::ADD, &Sym::leaf("b"), &Sym::leaf("c"));
        let outer = Sym::bin("-", precedence::ADD, &Sym::leaf("a"), &inner);
        assert_eq!(outer.render(4), "a-(b-c)");
    }

    #[test]
    fn field_chain_compression() {
        let mut s = Sym::index(&Sym::leaf("hash"), &Sym::leaf("287"));
        for _ in 0..8 {
            s = Sym::field(true, &s, "next");
        }
        let s = Sym::field(true, &s, "scope");
        // Below threshold 9 the chain compresses at 8.
        assert_eq!(s.render(4), "hash[287]-->next[[8]]->scope");
        // A very high threshold expands everything.
        assert_eq!(
            s.render(99),
            "hash[287]->next->next->next->next->next->next->next->next->scope"
        );
    }

    #[test]
    fn short_chains_stay_expanded() {
        let mut s = Sym::index(&Sym::leaf("hash"), &Sym::leaf("0"));
        for _ in 0..3 {
            s = Sym::field(true, &s, "next");
        }
        let s = Sym::field(true, &s, "scope");
        // Three steps < default threshold 4: expanded, as in the paper's
        // hash[0] walk.
        assert_eq!(s.render(4), "hash[0]->next->next->next->scope");
    }

    #[test]
    fn mixed_fields_break_chains() {
        let s = Sym::field(true, &Sym::leaf("p"), "next");
        let s = Sym::field(true, &s, "prev");
        let s = Sym::field(true, &s, "next");
        assert_eq!(s.render(2), "p->next->prev->next");
    }

    #[test]
    fn dot_fields_do_not_chain() {
        let s = Sym::field(false, &Sym::leaf("a"), "b");
        let s = Sym::field(false, &s, "b");
        assert_eq!(s.render(2), "a.b.b");
    }

    #[test]
    fn unary_and_cast() {
        let neg = Sym::un("-", &Sym::leaf("x"));
        assert_eq!(neg.render(4), "-x");
        let sum = Sym::bin("+", precedence::ADD, &Sym::leaf("a"), &Sym::leaf("b"));
        let neg2 = Sym::un("-", &sum);
        assert_eq!(neg2.render(4), "-(a+b)");
        let c = Sym::cast("double", &Sym::leaf("3"));
        assert_eq!(c.render(4), "(double)3");
    }

    #[test]
    fn calls() {
        let c = Sym::call("printf", vec![Sym::leaf("\"%d\""), Sym::int(3)]);
        assert_eq!(c.render(4), "printf(\"%d\", 3)");
    }

    #[test]
    fn none_propagates() {
        let n = Sym::bin("+", precedence::ADD, &Sym::None, &Sym::leaf("1"));
        assert_eq!(n, Sym::None);
        assert_eq!(Sym::field(true, &Sym::None, "f"), Sym::None);
        assert_eq!(Sym::un("-", &Sym::None), Sym::None);
    }
}
