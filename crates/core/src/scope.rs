//! Name resolution: the `with` stack, aliases, and target symbols.
//!
//! `fetch` resolves a name in this order, mirroring the paper:
//!
//! 1. `_` — the value of the nearest enclosing `with` operand;
//! 2. fields of `with` operands, innermost first (the paper's `push`/
//!    `pop` name-resolution stack);
//! 3. DUEL aliases (`a := e` and DUEL declarations) — the fetched value
//!    keeps the aliased lvalue but displays the alias's *name* ("The
//!    output displays the name of the alias, not the elements of x");
//! 4. target variables (innermost frame, then globals) via
//!    `duel_get_target_variable`;
//! 5. enumeration constants.

use std::collections::HashMap;

use duel_target::Target;

use crate::{
    apply,
    error::{DuelError, DuelResult},
    eval::EvalOptions,
    sym::Sym,
    value::{Scalar, Value},
};

/// One entry of the `with` scope stack.
#[derive(Clone, Debug)]
pub struct WithEntry {
    /// The operand value (a struct/union lvalue, usually).
    pub value: Value,
    /// Whether the scope was entered with `->` (for symbolic display).
    pub arrow: bool,
}

/// The evaluation context threaded through every generator.
pub struct Ctx<'a> {
    /// The debugger backend.
    pub target: &'a mut dyn Target,
    /// Session-persistent aliases (`:=`, declarations).
    pub aliases: &'a mut HashMap<String, Value>,
    /// The `with` name-resolution stack.
    pub with_stack: Vec<WithEntry>,
    /// Evaluation options.
    pub opts: EvalOptions,
    /// Values produced so far by the top-level drive loop (for the
    /// `max_values` safety limit).
    pub produced: u64,
    /// Leaf-generator activations (for the `max_ticks` safety limit).
    pub ticks: u64,
    /// Trace lines accumulated when [`EvalOptions::trace`] is on.
    pub trace: Vec<String>,
    /// Current generator nesting depth (trace indentation and the
    /// `max_depth` guard).
    pub trace_depth: usize,
    /// Deepest generator nesting reached (reported via `EvalStats`).
    pub max_depth_seen: usize,
    /// Generator yields across all nodes, leaf and interior.
    pub yields: u64,
    /// Structure-expansion steps performed by `-->`/`-->>`.
    pub expansions: u64,
    /// Vectored cache warm-ups issued by the prefetch planner.
    pub prefetch_calls: u64,
    /// Ranges those warm-ups read cleanly (a faulted or flaky range is
    /// simply left cold for the demand path).
    pub prefetch_ranges: u64,
    /// Prefetch windows the planner laid out (each at most
    /// [`crate::EvalOptions::prefetch_window`] pages).
    pub windows_planned: u64,
    /// Windows that were in flight on the I/O actor while the evaluator
    /// kept consuming (double-buffered submissions).
    pub windows_inflight: u64,
    /// Per-node cost collector; present only while `.profile` runs.
    pub profile: Option<Box<crate::profile::ProfileCollector>>,
    /// Causal span context discovered from the target tower (present
    /// when a `TraceTarget` is stacked somewhere below). Spans are
    /// recorded only while the context is enabled; every call through
    /// [`Ctx::span_enter`] is a single relaxed atomic load when it is
    /// not.
    pub spans: Option<duel_target::SpanContext>,
    /// Wall-clock deadline derived from [`EvalOptions::timeout_ms`].
    pub deadline: Option<std::time::Instant>,
}

impl<'a> Ctx<'a> {
    /// Creates a context over a target and an alias store.
    pub fn new(
        target: &'a mut dyn Target,
        aliases: &'a mut HashMap<String, Value>,
        opts: EvalOptions,
    ) -> Ctx<'a> {
        let deadline = if opts.timeout_ms > 0 {
            std::time::Instant::now().checked_add(std::time::Duration::from_millis(opts.timeout_ms))
        } else {
            None
        };
        let spans = target.span_context();
        Ctx {
            target,
            aliases,
            with_stack: Vec::new(),
            opts,
            produced: 0,
            ticks: 0,
            trace: Vec::new(),
            trace_depth: 0,
            max_depth_seen: 0,
            yields: 0,
            expansions: 0,
            prefetch_calls: 0,
            prefetch_ranges: 0,
            windows_planned: 0,
            windows_inflight: 0,
            profile: None,
            spans,
            deadline,
        }
    }

    /// Opens a causal span attributed to the current evaluation, or
    /// returns 0 when no span context is stacked (or tracing is off).
    /// The detail closure runs only when a span is actually recorded.
    pub fn span_enter(
        &self,
        kind: duel_target::SpanKind,
        name: &'static str,
        detail: impl FnOnce() -> String,
    ) -> u64 {
        self.spans
            .as_ref()
            .map_or(0, |s| s.push(kind, name, detail))
    }

    /// Closes a span opened by [`Ctx::span_enter`] (no-op for id 0).
    pub fn span_exit(&self, id: u64) {
        if id != 0 {
            if let Some(s) = &self.spans {
                s.pop(id);
            }
        }
    }

    /// Opens a profile span for node `id` (no-op without a collector).
    pub fn profile_enter(&mut self, id: usize) {
        let ticks = self.ticks;
        if let Some(p) = self.profile.as_mut() {
            p.enter(id, ticks);
        }
    }

    /// Closes the profile span for node `id`.
    pub fn profile_exit(&mut self, id: usize, label: &'static str, text: &str, yielded: bool) {
        let ticks = self.ticks;
        if let Some(p) = self.profile.as_mut() {
            p.exit(id, label, text, yielded, ticks);
        }
    }

    /// Is symbolic-value construction enabled?
    pub fn eager_sym(&self) -> bool {
        self.opts.sym_mode == crate::sym::SymMode::Eager
    }

    /// Builds a leaf sym (or nothing in lazy mode).
    pub fn sym_leaf(&self, text: impl AsRef<str>) -> Sym {
        if self.eager_sym() {
            Sym::leaf(text)
        } else {
            Sym::None
        }
    }

    /// Resolves `name` per the order documented at module level.
    pub fn fetch(&mut self, name: &str) -> DuelResult<Value> {
        if name == "_" {
            return match self.with_stack.last() {
                Some(e) => Ok(e.value.clone()),
                None => Err(DuelError::Undefined { name: "_".into() }),
            };
        }
        // 2. with-scope fields, innermost first. The entry holds the raw
        // operand; a pointer is dereferenced lazily *here*, so that
        // `hash[..1024]->(if (_ && scope > 5) name)` never touches a
        // NULL bucket.
        for i in (0..self.with_stack.len()).rev() {
            let entry = self.with_stack[i].clone();
            let (rec_ty, via_ptr) = match apply::classify(self.target, entry.value.ty) {
                apply::Class::Record => (entry.value.ty, false),
                apply::Class::Ptr { pointee }
                    if matches!(apply::classify(self.target, pointee), apply::Class::Record) =>
                {
                    (pointee, true)
                }
                _ => continue,
            };
            if apply::has_field(&*self.target, rec_ty, name) {
                let eager = self.eager_sym();
                let base = if via_ptr {
                    apply::deref_for_with(self.target, &entry.value)?
                } else {
                    entry.value.clone()
                };
                let arrow = via_ptr || entry.arrow;
                return apply::field_of(self.target, &base, name, arrow, eager);
            }
        }
        // 3. aliases, displayed under their own name.
        if let Some(v) = self.aliases.get(name) {
            let mut v = v.clone();
            v.sym = self.sym_leaf(name);
            return Ok(v);
        }
        // 4. target variables.
        if let Some(info) = self.target.get_variable(name) {
            return Ok(Value::lval(info.ty, info.addr, self.sym_leaf(name)));
        }
        // 5. enumerators.
        if let Some((eid, v)) = self.target.types().enumerator(name) {
            let ty = {
                let _ = eid;
                // Enumeration constants have type int in C.
                self.target.types_mut().prim(duel_ctype::Prim::Int)
            };
            return Ok(Value::rval(ty, Scalar::Int(v), self.sym_leaf(name)));
        }
        Err(DuelError::Undefined {
            name: name.to_string(),
        })
    }

    /// Defines or replaces an alias.
    pub fn set_alias(&mut self, name: &str, v: Value) {
        self.aliases.insert(name.to_string(), v);
    }

    /// Counts one leaf-generator activation against `max_ticks` —
    /// every unbounded evaluation loop re-activates some leaf, so this
    /// bounds even value-free loops. Also polls the wall-clock
    /// deadline (cheaply: every 1024 ticks).
    pub fn tick(&mut self) -> DuelResult<()> {
        self.ticks += 1;
        if self.ticks > self.opts.max_ticks {
            return Err(DuelError::BudgetExceeded {
                budget: "step".into(),
                limit: self.opts.max_ticks,
                sym: String::new(),
            });
        }
        if self.ticks & 0x3ff == 0 {
            if let Some(deadline) = self.deadline {
                if std::time::Instant::now() >= deadline {
                    return Err(DuelError::BudgetExceeded {
                        budget: "time".into(),
                        limit: self.opts.timeout_ms,
                        sym: String::new(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Counts a produced top-level value against `max_values`.
    pub fn count_value(&mut self) -> DuelResult<()> {
        self.produced += 1;
        if self.produced > self.opts.max_values {
            Err(DuelError::LimitExceeded {
                limit: self.opts.max_values,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalOptions;
    use duel_target::scenario;

    fn with_ctx<R>(f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
        let mut t = scenario::hash_table_basic();
        let mut aliases = HashMap::new();
        let mut ctx = Ctx::new(&mut t, &mut aliases, EvalOptions::default());
        f(&mut ctx)
    }

    #[test]
    fn fetch_target_global() {
        with_ctx(|ctx| {
            let v = ctx.fetch("hash").unwrap();
            assert!(v.is_lval());
            assert_eq!(v.sym.render(4), "hash");
        });
    }

    #[test]
    fn fetch_undefined() {
        with_ctx(|ctx| {
            assert!(matches!(
                ctx.fetch("nonesuch"),
                Err(DuelError::Undefined { .. })
            ));
            assert!(matches!(ctx.fetch("_"), Err(DuelError::Undefined { .. })));
        });
    }

    #[test]
    fn alias_shadows_nothing_but_displays_name() {
        with_ctx(|ctx| {
            let mut v = ctx.fetch("hash").unwrap();
            v.sym = Sym::leaf("something-else");
            ctx.set_alias("h", v);
            let got = ctx.fetch("h").unwrap();
            assert_eq!(got.sym.render(4), "h");
        });
    }

    #[test]
    fn with_scope_resolves_fields() {
        with_ctx(|ctx| {
            // Push the first symbol of bucket 0 as a with scope.
            let hash = ctx.fetch("hash").unwrap();
            let int_ty = ctx.target.types_mut().prim(duel_ctype::Prim::Int);
            let zero = Value::rval(int_ty, Scalar::Int(0), Sym::int(0));
            let head = apply::index(ctx.target, &hash, &zero, true).unwrap();
            let node = apply::deref_for_with(ctx.target, &head).unwrap();
            ctx.with_stack.push(WithEntry {
                value: node,
                arrow: true,
            });
            let scope = ctx.fetch("scope").unwrap();
            assert_eq!(scope.sym.render(4), "hash[0]->scope");
            let loaded = apply::load(ctx.target, &scope).unwrap();
            assert_eq!(loaded, Scalar::Int(4));
            ctx.with_stack.pop();
        });
    }

    #[test]
    fn value_limit() {
        with_ctx(|ctx| {
            ctx.opts.max_values = 2;
            assert!(ctx.count_value().is_ok());
            assert!(ctx.count_value().is_ok());
            assert!(matches!(
                ctx.count_value(),
                Err(DuelError::LimitExceeded { limit: 2 })
            ));
        });
    }
}
