//! The hand-written lexer (the paper: "Duel's yacc-based parser and the
//! hand-written lexer accept a Duel expression…").
//!
//! Notable departures from a plain C lexer:
//!
//! * `1..5` must lex as `1` `..` `5`, so a `.` starting a fraction is
//!   only consumed when not followed by another `.`;
//! * `]]` is *never* merged into one token — `x[y[0]]` must close two
//!   ordinary indexes; the parser recognises `[[`/`]]` as two adjacent
//!   brackets instead;
//! * maximal munch gives `-->>` > `-->` > `->` > `--`, and the filter
//!   comparisons `>?`, `>=?`, `==?`, … ;
//! * `##` starts a comment to end of line (the paper: "# starts a
//!   comment in gdb; Duel uses ##"), while a single `#` is the index
//!   alias / count operator.

use crate::{
    error::{DuelError, DuelResult},
    token::{SpannedTok, Tok},
};

/// Lexes a whole DUEL command into tokens (ending with [`Tok::Eof`]).
pub fn lex(src: &str) -> DuelResult<Vec<SpannedTok>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn run(mut self) -> DuelResult<Vec<SpannedTok>> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments();
            let offset = self.pos;
            if self.pos >= self.src.len() {
                out.push(SpannedTok {
                    tok: Tok::Eof,
                    offset,
                });
                return Ok(out);
            }
            let tok = self.next_token()?;
            out.push(SpannedTok { tok, offset });
        }
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while self.peek().is_ascii_whitespace() {
                self.pos += 1;
            }
            // `##` comments run to end of line.
            if self.peek() == b'#' && self.peek2() == b'#' {
                while self.pos < self.src.len() && self.peek() != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            // C comments are accepted too.
            if self.peek() == b'/' && self.peek2() == b'*' {
                self.pos += 2;
                while self.pos < self.src.len() && !(self.peek() == b'*' && self.peek2() == b'/') {
                    self.pos += 1;
                }
                self.pos = (self.pos + 2).min(self.src.len());
                continue;
            }
            break;
        }
    }

    fn next_token(&mut self) -> DuelResult<Tok> {
        let c = self.peek();
        if c.is_ascii_digit() {
            return self.number();
        }
        if c == b'.' && self.peek2().is_ascii_digit() {
            return self.number();
        }
        if c == b'_' || c.is_ascii_alphabetic() || c == b'$' {
            return Ok(self.ident());
        }
        if c == b'\'' {
            return self.char_lit();
        }
        if c == b'"' {
            return self.string_lit();
        }
        self.operator()
    }

    fn number(&mut self) -> DuelResult<Tok> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.pos += 2;
            let hs = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.pos += 1;
            }
            if self.pos == hs {
                return Err(DuelError::Lex {
                    offset: start,
                    message: "hex literal needs digits".into(),
                });
            }
            let text = std::str::from_utf8(&self.src[hs..self.pos]).unwrap();
            let v = u64::from_str_radix(text, 16).map_err(|_| DuelError::Lex {
                offset: start,
                message: "hex literal too large".into(),
            })?;
            self.eat_int_suffix();
            return Ok(Tok::Int(v as i64));
        }
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        // A fraction only if `.` is not followed by another `.` (so that
        // `1..5` stays a range) and not followed by an identifier (so
        // that `x[1].f` field access works after an index… actually a
        // digit can't be followed by `.field`, but `1.f` would be a
        // malformed float; be strict).
        if self.peek() == b'.'
            && self.peek2() != b'.'
            && !self.peek2().is_ascii_alphabetic()
            && self.peek2() != b'_'
        {
            is_float = true;
            self.pos += 1;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            let save = self.pos;
            self.pos += 1;
            if self.peek() == b'+' || self.peek() == b'-' {
                self.pos += 1;
            }
            if self.peek().is_ascii_digit() {
                is_float = true;
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
            } else {
                self.pos = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            let v = text.parse::<f64>().map_err(|_| DuelError::Lex {
                offset: start,
                message: format!("bad float literal `{text}`"),
            })?;
            self.eat_float_suffix();
            return Ok(Tok::Float(v));
        }
        // Leading 0 means octal in C.
        let v = if text.len() > 1 && text.starts_with('0') {
            i64::from_str_radix(&text[1..], 8).map_err(|_| DuelError::Lex {
                offset: start,
                message: format!("bad octal literal `{text}`"),
            })?
        } else {
            text.parse::<i64>().map_err(|_| DuelError::Lex {
                offset: start,
                message: format!("integer literal `{text}` too large"),
            })?
        };
        self.eat_int_suffix();
        Ok(Tok::Int(v))
    }

    fn eat_int_suffix(&mut self) {
        while matches!(self.peek(), b'u' | b'U' | b'l' | b'L') {
            self.pos += 1;
        }
    }

    fn eat_float_suffix(&mut self) {
        while matches!(self.peek(), b'f' | b'F' | b'l' | b'L') {
            self.pos += 1;
        }
    }

    fn ident(&mut self) -> Tok {
        let start = self.pos;
        while {
            let c = self.peek();
            c == b'_' || c == b'$' || c.is_ascii_alphanumeric()
        } {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        Tok::Ident(text.to_string())
    }

    fn escape(&mut self, offset: usize) -> DuelResult<u8> {
        let c = self.bump();
        Ok(match c {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'a' => 7,
            b'b' => 8,
            b'f' => 12,
            b'v' => 11,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            b'x' => {
                let mut v: u32 = 0;
                let mut n = 0;
                while self.peek().is_ascii_hexdigit() && n < 2 {
                    v = v * 16 + (self.bump() as char).to_digit(16).unwrap();
                    n += 1;
                }
                if n == 0 {
                    return Err(DuelError::Lex {
                        offset,
                        message: "\\x needs hex digits".into(),
                    });
                }
                v as u8
            }
            other => {
                return Err(DuelError::Lex {
                    offset,
                    message: format!("unknown escape `\\{}`", other as char),
                })
            }
        })
    }

    fn char_lit(&mut self) -> DuelResult<Tok> {
        let offset = self.pos;
        self.pos += 1; // opening quote
        let c = self.bump();
        let v = if c == b'\\' {
            self.escape(offset)?
        } else if c == 0 {
            return Err(DuelError::Lex {
                offset,
                message: "unterminated character literal".into(),
            });
        } else {
            c
        };
        if self.bump() != b'\'' {
            return Err(DuelError::Lex {
                offset,
                message: "unterminated character literal".into(),
            });
        }
        Ok(Tok::Char(v))
    }

    fn string_lit(&mut self) -> DuelResult<Tok> {
        let offset = self.pos;
        self.pos += 1; // opening quote
        let mut out = Vec::new();
        loop {
            let c = self.bump();
            match c {
                b'"' => break,
                0 => {
                    return Err(DuelError::Lex {
                        offset,
                        message: "unterminated string literal".into(),
                    })
                }
                b'\\' => out.push(self.escape(offset)?),
                other => out.push(other),
            }
        }
        Ok(Tok::Str(String::from_utf8_lossy(&out).into_owned()))
    }

    fn operator(&mut self) -> DuelResult<Tok> {
        let offset = self.pos;
        let c = self.bump();
        Ok(match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'+' => match self.peek() {
                b'+' => {
                    self.pos += 1;
                    Tok::PlusPlus
                }
                b'=' => {
                    self.pos += 1;
                    Tok::PlusAssign
                }
                _ => Tok::Plus,
            },
            b'-' => {
                if self.peek() == b'-' && self.peek2() == b'>' {
                    // `-->` or `-->>`.
                    self.pos += 2;
                    if self.peek() == b'>' {
                        self.pos += 1;
                        Tok::DashDashGtGt
                    } else {
                        Tok::DashDashGt
                    }
                } else {
                    match self.peek() {
                        b'-' => {
                            self.pos += 1;
                            Tok::MinusMinus
                        }
                        b'>' => {
                            self.pos += 1;
                            Tok::Arrow
                        }
                        b'=' => {
                            self.pos += 1;
                            Tok::MinusAssign
                        }
                        _ => Tok::Minus,
                    }
                }
            }
            b'*' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    Tok::StarAssign
                }
                _ => Tok::Star,
            },
            b'/' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    Tok::SlashAssign
                }
                _ => Tok::Slash,
            },
            b'%' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    Tok::PercentAssign
                }
                _ => Tok::Percent,
            },
            b'&' => match self.peek() {
                b'&' => {
                    self.pos += 1;
                    Tok::AmpAmp
                }
                b'=' => {
                    self.pos += 1;
                    Tok::AmpAssign
                }
                _ => Tok::Amp,
            },
            b'|' => match self.peek() {
                b'|' => {
                    self.pos += 1;
                    Tok::PipePipe
                }
                b'=' => {
                    self.pos += 1;
                    Tok::PipeAssign
                }
                _ => Tok::Pipe,
            },
            b'^' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    Tok::CaretAssign
                }
                _ => Tok::Caret,
            },
            b'~' => Tok::Tilde,
            b'!' => match (self.peek(), self.peek2()) {
                (b'=', b'?') => {
                    self.pos += 2;
                    Tok::NeQ
                }
                (b'=', _) => {
                    self.pos += 1;
                    Tok::Ne
                }
                _ => Tok::Bang,
            },
            b'<' => match (self.peek(), self.peek2()) {
                (b'<', b'=') => {
                    self.pos += 2;
                    Tok::ShlAssign
                }
                (b'<', _) => {
                    self.pos += 1;
                    Tok::Shl
                }
                (b'=', b'?') => {
                    self.pos += 2;
                    Tok::LeQ
                }
                (b'=', _) => {
                    self.pos += 1;
                    Tok::Le
                }
                (b'?', _) => {
                    self.pos += 1;
                    Tok::LtQ
                }
                _ => Tok::Lt,
            },
            b'>' => match (self.peek(), self.peek2()) {
                (b'>', b'=') => {
                    self.pos += 2;
                    Tok::ShrAssign
                }
                (b'>', _) => {
                    self.pos += 1;
                    Tok::Shr
                }
                (b'=', b'?') => {
                    self.pos += 2;
                    Tok::GeQ
                }
                (b'=', _) => {
                    self.pos += 1;
                    Tok::Ge
                }
                (b'?', _) => {
                    self.pos += 1;
                    Tok::GtQ
                }
                _ => Tok::Gt,
            },
            b'=' => match (self.peek(), self.peek2()) {
                (b'=', b'?') => {
                    self.pos += 2;
                    Tok::EqQ
                }
                (b'=', _) => {
                    self.pos += 1;
                    Tok::EqEq
                }
                (b'>', _) => {
                    self.pos += 1;
                    Tok::Imply
                }
                _ => Tok::Assign,
            },
            b'?' => Tok::Question,
            b':' => match self.peek() {
                b'=' => {
                    self.pos += 1;
                    Tok::ColonAssign
                }
                _ => Tok::Colon,
            },
            b'.' => match self.peek() {
                b'.' => {
                    self.pos += 1;
                    Tok::DotDot
                }
                _ => Tok::Dot,
            },
            b',' => Tok::Comma,
            b';' => Tok::Semi,
            b'#' => match self.peek() {
                b'/' => {
                    self.pos += 1;
                    Tok::HashSlash
                }
                _ => Tok::Hash,
            },
            b'@' => Tok::At,
            other => {
                return Err(DuelError::Lex {
                    offset,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(toks("0x1f"), vec![Tok::Int(31), Tok::Eof]);
        assert_eq!(toks("017"), vec![Tok::Int(15), Tok::Eof]);
        assert_eq!(toks("2.5"), vec![Tok::Float(2.5), Tok::Eof]);
        assert_eq!(toks("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
        assert_eq!(toks("10ul"), vec![Tok::Int(10), Tok::Eof]);
        assert_eq!(toks("1.5f"), vec![Tok::Float(1.5), Tok::Eof]);
    }

    #[test]
    fn ranges_do_not_eat_floats() {
        assert_eq!(
            toks("1..5"),
            vec![Tok::Int(1), Tok::DotDot, Tok::Int(5), Tok::Eof]
        );
        assert_eq!(
            toks("x[..100]"),
            vec![
                Tok::Ident("x".into()),
                Tok::LBracket,
                Tok::DotDot,
                Tok::Int(100),
                Tok::RBracket,
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("0..9"),
            vec![Tok::Int(0), Tok::DotDot, Tok::Int(9), Tok::Eof]
        );
    }

    #[test]
    fn duel_operators() {
        assert_eq!(
            toks(">? >=? <? <=? ==? !=?"),
            vec![
                Tok::GtQ,
                Tok::GeQ,
                Tok::LtQ,
                Tok::LeQ,
                Tok::EqQ,
                Tok::NeQ,
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("a := b => c"),
            vec![
                Tok::Ident("a".into()),
                Tok::ColonAssign,
                Tok::Ident("b".into()),
                Tok::Imply,
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("head-->next"),
            vec![
                Tok::Ident("head".into()),
                Tok::DashDashGt,
                Tok::Ident("next".into()),
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("a-->>b"),
            vec![
                Tok::Ident("a".into()),
                Tok::DashDashGtGt,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("#/x"),
            vec![Tok::HashSlash, Tok::Ident("x".into()), Tok::Eof]
        );
        assert_eq!(
            toks("e#i"),
            vec![
                Tok::Ident("e".into()),
                Tok::Hash,
                Tok::Ident("i".into()),
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("s@0"),
            vec![Tok::Ident("s".into()), Tok::At, Tok::Int(0), Tok::Eof]
        );
    }

    #[test]
    fn c_operators_survive() {
        assert_eq!(
            toks("a->b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("a-- -b"),
            vec![
                Tok::Ident("a".into()),
                Tok::MinusMinus,
                Tok::Minus,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("a<<=b >>= c"),
            vec![
                Tok::Ident("a".into()),
                Tok::ShlAssign,
                Tok::Ident("b".into()),
                Tok::ShrAssign,
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn brackets_never_merge() {
        assert_eq!(
            toks("x[y[0]]"),
            vec![
                Tok::Ident("x".into()),
                Tok::LBracket,
                Tok::Ident("y".into()),
                Tok::LBracket,
                Tok::Int(0),
                Tok::RBracket,
                Tok::RBracket,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(toks("'a'"), vec![Tok::Char(b'a'), Tok::Eof]);
        assert_eq!(toks(r"'\0'"), vec![Tok::Char(0), Tok::Eof]);
        assert_eq!(toks(r"'\n'"), vec![Tok::Char(b'\n'), Tok::Eof]);
        assert_eq!(toks(r"'\x41'"), vec![Tok::Char(0x41), Tok::Eof]);
        assert_eq!(toks(r#""a\tb""#), vec![Tok::Str("a\tb".into()), Tok::Eof]);
    }

    #[test]
    fn comments() {
        assert_eq!(
            toks("1 ## comment\n+2"),
            vec![Tok::Int(1), Tok::Plus, Tok::Int(2), Tok::Eof]
        );
        assert_eq!(
            toks("1 /* c */ + 2"),
            vec![Tok::Int(1), Tok::Plus, Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("'a").is_err());
        assert!(lex("\"abc").is_err());
        assert!(lex("`").is_err());
        assert!(lex("0x").is_err());
        assert!(lex(r"'\q'").is_err());
    }

    #[test]
    fn underscore_and_dollar_idents() {
        assert_eq!(toks("_"), vec![Tok::Ident("_".into()), Tok::Eof]);
        assert_eq!(toks("$v1"), vec![Tok::Ident("$v1".into()), Tok::Eof]);
    }

    #[test]
    fn offsets_recorded() {
        let ts = lex("ab + cd").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 3);
        assert_eq!(ts[2].offset, 5);
    }
}
