#![warn(missing_docs)]

//! DUEL — a very high-level debugging language.
//!
//! This crate implements the language of *DUEL — A Very High-Level
//! Debugging Language* (Golan & Hanson, USENIX Winter 1993): a superset
//! of C expressions extended with **generators** — expressions that can
//! produce zero or more values — plus reduction operators and data
//! structure expansion, evaluated against a debuggee through the narrow
//! [`duel_target::Target`] interface.
//!
//! The signature example from the paper:
//!
//! ```
//! use duel_core::Session;
//! use duel_target::scenario;
//!
//! let mut target = scenario::scan_array();
//! let mut s = Session::new(&mut target);
//! let out = s.eval_lines("x[1..4,8,12..50] >? 5 <? 10").unwrap();
//! assert_eq!(out, vec![
//!     "x[3] = 7",
//!     "x[18] = 9",
//!     "x[47] = 6",
//! ]);
//! ```
//!
//! # Architecture
//!
//! Mirroring the paper's implementation section:
//!
//! * [`lexer`] — the hand-written lexer;
//! * [`parser`] — a Pratt parser replacing the paper's yacc grammar,
//!   producing the same abstract syntax ([`ast`]);
//! * [`eval`] — `duel_eval`: the resumable, coroutine-simulating
//!   evaluator in which each node yields one value per call and `None`
//!   plays the paper's `NOVALUE`;
//! * [`value`] — DUEL's own value representation: a type, an actual
//!   value or lvalue, and a *symbolic value* recording the derivation;
//! * [`sym`] — symbolic-value construction and the display algorithm
//!   (including the `->a->a` → `-->a[[2]]` compression);
//! * [`apply`] — DUEL's own implementation of the C operators;
//! * [`session`] — the `duel` command: drives an expression and renders
//!   every value as `symbolic = value`.

pub mod apply;
pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod profile;
pub mod scope;
pub mod session;
pub mod sexpr;
pub mod sym;
pub mod token;
pub mod value;

pub use error::{DuelError, DuelResult};
pub use eval::EvalOptions;
pub use profile::{NodeCost, ProfileReport};
pub use session::{oneshot_lines, EvalStats, OutputLine, Session};
pub use sexpr::to_sexpr;
pub use sym::SymMode;
pub use value::Value;
