//! Rendering actual values for display.
//!
//! The `duel` command prints each produced value after its symbolic
//! value (`x[3] = 7`). This module renders the value half: integers in
//! decimal, the paper's `2.500` style for short doubles, chars as
//! glyphs, pointers in hex (with the pointed-to string for `char *`),
//! and aggregates structurally.

use duel_ctype::TypeKind;
use duel_target::Target;

use crate::{
    apply::{self, Class},
    error::DuelResult,
    value::{Place, Scalar, Value},
};

/// Renders the actual value of `v`.
pub fn format_value(t: &mut dyn Target, v: &Value, compress_threshold: u32) -> DuelResult<String> {
    format_depth(t, v, compress_threshold, 0)
}

fn format_depth(t: &mut dyn Target, v: &Value, thr: u32, depth: u32) -> DuelResult<String> {
    match apply::classify(t, v.ty) {
        Class::Record => format_record(t, v, thr, depth),
        Class::Array { elem, len } => format_array(t, v, elem, len, thr, depth),
        _ => {
            let s = apply::load(t, v)?;
            Ok(format_scalar(t, v, s))
        }
    }
}

fn format_scalar(t: &mut dyn Target, v: &Value, s: Scalar) -> String {
    match s {
        Scalar::Int(i) => match t.types().kind(v.ty) {
            TypeKind::Prim(
                duel_ctype::Prim::Char | duel_ctype::Prim::SChar | duel_ctype::Prim::UChar,
            ) => format_char(i),
            TypeKind::Enum(eid) => {
                let def = t.types().enum_def(*eid);
                match def.enumerators.iter().find(|(_, ev)| *ev == i) {
                    Some((name, _)) => name.clone(),
                    None => i.to_string(),
                }
            }
            _ => i.to_string(),
        },
        Scalar::Float(f) => format_double(f),
        Scalar::Ptr(p) => format_pointer(t, v, p),
    }
}

/// Formats a character value: glyph when printable, numeric otherwise.
fn format_char(i: i64) -> String {
    let b = i as u8;
    match b {
        0 => "'\\0'".to_string(),
        b'\n' => "'\\n'".to_string(),
        b'\t' => "'\\t'".to_string(),
        c if (c as i64 == i) && (c.is_ascii_graphic() || c == b' ') => {
            format!("'{}'", c as char)
        }
        _ => i.to_string(),
    }
}

/// Formats a double: the paper prints `1 + (double)3/2` as `2.500`, so
/// values that are exact at three decimals use that form.
pub fn format_double(f: f64) -> String {
    if !f.is_finite() {
        return format!("{f}");
    }
    if f.abs() < 1.0e9 && ((f * 1000.0).round() / 1000.0 - f).abs() < f64::EPSILON {
        return format!("{f:.3}");
    }
    if f.abs() >= 1.0e15 {
        return format!("{f:e}");
    }
    format!("{f}")
}

fn format_pointer(t: &mut dyn Target, v: &Value, p: u64) -> String {
    let base = format!("0x{p:x}");
    // A char pointer also shows the string, gdb-style.
    if let Class::Ptr { pointee } = apply::classify(t, v.ty) {
        if matches!(
            t.types().kind(pointee),
            TypeKind::Prim(
                duel_ctype::Prim::Char | duel_ctype::Prim::SChar | duel_ctype::Prim::UChar
            )
        ) && p != 0
            && t.is_mapped(p, 1)
        {
            if let Ok(s) = read_cstr(t, p, 64) {
                return format!("{base} {s:?}");
            }
        }
    }
    base
}

fn read_cstr(t: &mut dyn Target, addr: u64, max: usize) -> DuelResult<String> {
    let mut out = Vec::new();
    let mut a = addr;
    let mut b = [0u8; 1];
    while out.len() < max {
        t.get_bytes(a, &mut b)?;
        if b[0] == 0 {
            break;
        }
        out.push(b[0]);
        a += 1;
    }
    Ok(String::from_utf8_lossy(&out).into_owned())
}

fn format_record(t: &mut dyn Target, v: &Value, thr: u32, depth: u32) -> DuelResult<String> {
    if depth > 2 {
        return Ok("{…}".to_string());
    }
    let (rid, _) = t.types().as_record(v.ty).expect("record class");
    let rec = t.types().record(rid).clone();
    let mut parts = Vec::new();
    for f in &rec.fields {
        if f.name.is_empty() {
            continue;
        }
        let fv = apply::field_of(t, v, &f.name, false, false)?;
        let text = match format_depth(t, &fv, thr, depth + 1) {
            Ok(s) => s,
            Err(_) => "<unreadable>".to_string(),
        };
        parts.push(format!("{} = {}", f.name, text));
    }
    Ok(format!("{{{}}}", parts.join(", ")))
}

fn format_array(
    t: &mut dyn Target,
    v: &Value,
    elem: duel_ctype::TypeId,
    len: Option<u64>,
    thr: u32,
    depth: u32,
) -> DuelResult<String> {
    let addr = match v.place {
        Place::LVal(a) => a,
        _ => return Ok("<array>".to_string()),
    };
    // A char array prints as a string.
    if matches!(
        t.types().kind(elem),
        TypeKind::Prim(duel_ctype::Prim::Char | duel_ctype::Prim::SChar | duel_ctype::Prim::UChar)
    ) {
        let max = len.unwrap_or(64).min(256) as usize;
        if let Ok(s) = read_cstr(t, addr, max) {
            return Ok(format!("{s:?}"));
        }
    }
    let esize = t.types().size_of(elem, t.abi())?;
    let n = len.unwrap_or(0).min(10);
    let mut parts = Vec::new();
    for i in 0..n {
        let ev = Value::lval(elem, addr + i * esize, crate::sym::Sym::None);
        parts.push(format_depth(t, &ev, thr, depth + 1)?);
    }
    let ell = if len.unwrap_or(0) > n { ", …" } else { "" };
    Ok(format!("{{{}{}}}", parts.join(", "), ell))
}

/// Renders a value read back as a plain integer (used by tests).
pub fn as_int_text(t: &mut dyn Target, v: &Value) -> DuelResult<String> {
    let s = apply::load(t, v)?;
    Ok(match s {
        Scalar::Int(i) => i.to_string(),
        Scalar::Float(f) => format_double(f),
        Scalar::Ptr(p) => format!("0x{p:x}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::Sym;
    use duel_ctype::{Abi, Field, Prim};
    use duel_target::SimTarget;

    #[test]
    fn doubles_use_paper_format() {
        assert_eq!(format_double(2.5), "2.500");
        assert_eq!(format_double(0.0), "0.000");
        assert_eq!(format_double(1.23456), "1.23456");
        assert_eq!(format_double(1.0e30), "1e30");
    }

    #[test]
    fn chars_and_enums() {
        let mut t = SimTarget::new(Abi::lp64());
        let c = t.core.types.prim(Prim::Char);
        let v = Value::rval(c, Scalar::Int(b'h' as i64), Sym::None);
        assert_eq!(format_value(&mut t, &v, 4).unwrap(), "'h'");
        let v0 = Value::rval(c, Scalar::Int(0), Sym::None);
        assert_eq!(format_value(&mut t, &v0, 4).unwrap(), "'\\0'");
        let (_, ety) = t
            .core
            .types
            .define_enum(Some("color"), vec![("RED".into(), 7)]);
        let ev = Value::rval(ety, Scalar::Int(7), Sym::None);
        assert_eq!(format_value(&mut t, &ev, 4).unwrap(), "RED");
        let ev2 = Value::rval(ety, Scalar::Int(9), Sym::None);
        assert_eq!(format_value(&mut t, &ev2, 4).unwrap(), "9");
    }

    #[test]
    fn char_pointers_show_strings() {
        let mut t = SimTarget::new(Abi::lp64());
        let c = t.core.types.prim(Prim::Char);
        let pc = t.core.types.pointer(c);
        let addr = t.core.intern_cstring("hi").unwrap();
        let v = Value::rval(pc, Scalar::Ptr(addr), Sym::None);
        let s = format_value(&mut t, &v, 4).unwrap();
        assert!(s.ends_with("\"hi\""), "{s}");
        let null = Value::rval(pc, Scalar::Ptr(0), Sym::None);
        assert_eq!(format_value(&mut t, &null, 4).unwrap(), "0x0");
    }

    #[test]
    fn records_and_arrays() {
        let mut t = SimTarget::new(Abi::lp64());
        let int = t.core.types.prim(Prim::Int);
        let (rid, sty) = t.core.types.declare_struct("pt");
        t.core
            .types
            .define_record(rid, vec![Field::new("x", int), Field::new("y", int)]);
        let addr = t.core.define_global("p", sty).unwrap();
        t.core.write_int(addr, 3).unwrap();
        t.core.write_int(addr + 4, -4).unwrap();
        let v = Value::lval(sty, addr, Sym::None);
        assert_eq!(format_value(&mut t, &v, 4).unwrap(), "{x = 3, y = -4}");
        let arr = t.core.types.array(int, Some(3));
        let aaddr = t.core.define_global("a", arr).unwrap();
        for i in 0..3 {
            t.core.write_int(aaddr + i * 4, i as i32 + 1).unwrap();
        }
        let av = Value::lval(arr, aaddr, Sym::None);
        assert_eq!(format_value(&mut t, &av, 4).unwrap(), "{1, 2, 3}");
    }

    #[test]
    fn char_arrays_print_as_strings() {
        let mut t = SimTarget::new(Abi::lp64());
        let c = t.core.types.prim(Prim::Char);
        let arr = t.core.types.array(c, Some(8));
        let addr = t.core.define_global("s", arr).unwrap();
        t.core.mem.write(addr, b"abc\0").unwrap();
        let v = Value::lval(arr, addr, Sym::None);
        assert_eq!(format_value(&mut t, &v, 4).unwrap(), "\"abc\"");
    }
}
