//! DUEL's value representation.
//!
//! Per the paper: "The 'values' produced during evaluation have a type,
//! an actual value, and a symbolic value. The actual value is a value of
//! a primitive C type or an lvalue, which is a pointer to target data.
//! The symbolic value is a symbolic expression … that indicates how the
//! value was computed."

use duel_ctype::TypeId;

use crate::sym::Sym;

/// A scalar rvalue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scalar {
    /// An integer (stored sign-extended; the type gives signedness and
    /// width).
    Int(i64),
    /// A floating value.
    Float(f64),
    /// A pointer (a target address).
    Ptr(u64),
}

impl Scalar {
    /// Is the scalar non-zero (C truth)?
    pub fn is_truthy(self) -> bool {
        match self {
            Scalar::Int(v) => v != 0,
            Scalar::Float(v) => v != 0.0,
            Scalar::Ptr(p) => p != 0,
        }
    }
}

/// Where the actual value lives.
#[derive(Clone, Debug, PartialEq)]
pub enum Place {
    /// A computed rvalue.
    RVal(Scalar),
    /// An lvalue: the address of an object of the value's type in target
    /// memory.
    LVal(u64),
    /// A bitfield lvalue: storage unit address plus bit placement.
    BitField {
        /// Address of the storage unit.
        addr: u64,
        /// Size of the storage unit in bytes.
        unit: u8,
        /// Bit offset from the unit's least-significant bit.
        bit_off: u8,
        /// Width in bits.
        width: u8,
    },
}

/// A DUEL value: type + actual value (or lvalue) + symbolic value.
#[derive(Clone, Debug, PartialEq)]
pub struct Value {
    /// The C type.
    pub ty: TypeId,
    /// The actual value.
    pub place: Place,
    /// The symbolic derivation, used for display and errors.
    pub sym: Sym,
}

impl Value {
    /// Builds an rvalue.
    pub fn rval(ty: TypeId, s: Scalar, sym: Sym) -> Value {
        Value {
            ty,
            place: Place::RVal(s),
            sym,
        }
    }

    /// Builds an lvalue at `addr`.
    pub fn lval(ty: TypeId, addr: u64, sym: Sym) -> Value {
        Value {
            ty,
            place: Place::LVal(addr),
            sym,
        }
    }

    /// Replaces the symbolic value, keeping type and actual value.
    pub fn with_sym(mut self, sym: Sym) -> Value {
        self.sym = sym;
        self
    }

    /// Returns the address if this is an (ordinary) lvalue.
    pub fn lval_addr(&self) -> Option<u64> {
        match self.place {
            Place::LVal(a) => Some(a),
            _ => None,
        }
    }

    /// Is this value an lvalue (including bitfields)?
    pub fn is_lval(&self) -> bool {
        matches!(self.place, Place::LVal(_) | Place::BitField { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(Scalar::Int(-1).is_truthy());
        assert!(!Scalar::Int(0).is_truthy());
        assert!(Scalar::Float(0.5).is_truthy());
        assert!(!Scalar::Float(0.0).is_truthy());
        assert!(Scalar::Ptr(0x1000).is_truthy());
        assert!(!Scalar::Ptr(0).is_truthy());
    }

    #[test]
    fn lvalue_helpers() {
        let mut tt = duel_ctype::TypeTable::new();
        let ty = tt.prim(duel_ctype::Prim::Int);
        let v = Value::lval(ty, 0x100, Sym::none());
        assert!(v.is_lval());
        assert_eq!(v.lval_addr(), Some(0x100));
        let r = Value::rval(ty, Scalar::Int(1), Sym::none());
        assert!(!r.is_lval());
        assert_eq!(r.lval_addr(), None);
    }
}
