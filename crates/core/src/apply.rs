//! DUEL's own implementation of the C operators.
//!
//! The paper: "Duel duplicates some debugger capabilities in order to
//! reduce its dependence on specific debuggers. For example, Duel
//! contains its own type and value representations and its own
//! implementation of the C operators." Everything here works through the
//! narrow [`Target`] interface: loads and stores go through
//! `get_bytes`/`put_bytes`, and type checking happens *here, at
//! evaluation time*, as the paper requires of a very high-level language.

use duel_ctype::{convert, Prim, TypeId, TypeKind};
use duel_target::{value_io, CallValue, ReadRange, Target, TargetError};

use crate::{
    ast::{BinOp, UnOp},
    error::{DuelError, DuelResult},
    sym::{precedence, Sym},
    value::{Place, Scalar, Value},
};

/// A coarse classification of a type, driving operator semantics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Class {
    /// An integer (including `char`, enums).
    Int {
        /// Signedness under the target ABI.
        signed: bool,
        /// Width in bytes.
        size: u8,
        /// The primitive, for conversion ranking (`Int` for enums).
        prim: Prim,
    },
    /// `float` or `double`.
    Float {
        /// Width in bytes.
        size: u8,
        /// The primitive.
        prim: Prim,
    },
    /// A data pointer.
    Ptr {
        /// The pointee type.
        pointee: TypeId,
    },
    /// An array (decays to a pointer in most contexts).
    Array {
        /// Element type.
        elem: TypeId,
        /// Length, if known.
        len: Option<u64>,
    },
    /// A struct or union.
    Record,
    /// A function type.
    Func,
    /// `void`.
    Void,
}

/// Classifies `ty` under the target's ABI.
pub fn classify(t: &dyn Target, ty: TypeId) -> Class {
    match t.types().kind(ty) {
        TypeKind::Void => Class::Void,
        TypeKind::Prim(p) => {
            if p.is_float() {
                Class::Float {
                    size: p.size(t.abi()) as u8,
                    prim: *p,
                }
            } else {
                Class::Int {
                    signed: p.is_signed(t.abi()),
                    size: p.size(t.abi()) as u8,
                    prim: *p,
                }
            }
        }
        TypeKind::Enum(_) => Class::Int {
            signed: true,
            size: 4,
            prim: Prim::Int,
        },
        TypeKind::Pointer(p) => Class::Ptr { pointee: *p },
        TypeKind::Array { elem, len } => Class::Array {
            elem: *elem,
            len: *len,
        },
        TypeKind::Struct(_) | TypeKind::Union(_) => Class::Record,
        TypeKind::Function { .. } => Class::Func,
    }
}

/// Loads the rvalue of `v` (performing array-to-pointer decay).
pub fn load(t: &mut dyn Target, v: &Value) -> DuelResult<Scalar> {
    match &v.place {
        Place::RVal(s) => Ok(*s),
        Place::BitField {
            addr,
            unit,
            bit_off,
            width,
        } => {
            let signed = matches!(classify(t, v.ty), Class::Int { signed: true, .. });
            let raw = value_io::read_bitfield(t, *addr, *unit as usize, *bit_off, *width, signed)
                .map_err(|e| memory_error(e, v, "x of x.bits"))?;
            Ok(Scalar::Int(raw))
        }
        Place::LVal(addr) => match classify(t, v.ty) {
            Class::Int { signed, size, .. } => {
                let raw = value_io::read_uint(t, *addr, size as usize)
                    .map_err(|e| memory_error(e, v, "x of x"))?;
                Ok(Scalar::Int(if signed {
                    value_io::sign_extend(raw, size as usize)
                } else {
                    raw as i64
                }))
            }
            Class::Float { size, .. } => {
                let f = value_io::read_float(t, *addr, size as usize)
                    .map_err(|e| memory_error(e, v, "x of x"))?;
                Ok(Scalar::Float(f))
            }
            Class::Ptr { .. } => {
                let p = value_io::read_ptr(t, *addr).map_err(|e| memory_error(e, v, "x of x"))?;
                Ok(Scalar::Ptr(p))
            }
            // Array-to-pointer decay: the value is the array's address.
            Class::Array { .. } => Ok(Scalar::Ptr(*addr)),
            Class::Func => Ok(Scalar::Ptr(*addr)),
            Class::Record => Err(DuelError::Type {
                sym: v.sym.render(4),
                message: "a struct/union value cannot be used here".into(),
            }),
            Class::Void => Err(DuelError::Type {
                sym: v.sym.render(4),
                message: "void value".into(),
            }),
        },
    }
}

fn memory_error(e: TargetError, v: &Value, role: &str) -> DuelError {
    match e {
        TargetError::IllegalMemory { addr, .. } => DuelError::IllegalMemory {
            role: role.to_string(),
            sym: v.sym.render(4),
            addr,
        },
        other => DuelError::Target(other),
    }
}

/// C truth of a value.
pub fn truthy(t: &mut dyn Target, v: &Value) -> DuelResult<bool> {
    Ok(load(t, v)?.is_truthy())
}

/// Does `ty` (a struct/union) have a field `name`?
pub fn has_field(t: &dyn Target, ty: TypeId, name: &str) -> bool {
    t.types().find_field(ty, name).is_ok()
}

/// Resolves field `name` of a struct/union lvalue, producing the member
/// lvalue with sym `base.name` / `base->name`.
pub fn field_of(
    t: &mut dyn Target,
    v: &Value,
    name: &str,
    arrow: bool,
    eager_sym: bool,
) -> DuelResult<Value> {
    let (idx, field) = t
        .types()
        .find_field(v.ty, name)
        .map_err(|e| DuelError::Type {
            sym: v.sym.render(4),
            message: e.to_string(),
        })?;
    let fty = field.ty;
    let (rid, _) = t.types().as_record(v.ty).expect("record checked");
    let fl = t.types().field_layout(rid, idx, t.abi())?;
    let base = v.lval_addr().ok_or_else(|| DuelError::Type {
        sym: v.sym.render(4),
        message: "field access needs an addressable structure".into(),
    })?;
    let sym = if eager_sym {
        Sym::field(arrow, &v.sym, name)
    } else {
        Sym::None
    };
    if let (Some(bo), Some(bw)) = (fl.bit_offset, fl.bit_width) {
        return Ok(Value {
            ty: fty,
            place: Place::BitField {
                addr: base + fl.offset,
                unit: fl.size as u8,
                bit_off: bo,
                width: bw,
            },
            sym,
        });
    }
    Ok(Value::lval(fty, base + fl.offset, sym))
}

/// Dereferences a pointer (or passes through a struct lvalue) for use as
/// a `with`/`->` operand, producing the struct lvalue. The resulting
/// value keeps the *pointer's* symbolic value, so a subsequent field
/// fetch renders `ptr->field`.
pub fn deref_for_with(t: &mut dyn Target, v: &Value) -> DuelResult<Value> {
    match classify(t, v.ty) {
        Class::Ptr { pointee } => {
            let p = match load(t, v)? {
                Scalar::Ptr(p) => p,
                other => match other {
                    Scalar::Int(i) => i as u64,
                    _ => 0,
                },
            };
            if p == 0 {
                return Err(DuelError::IllegalMemory {
                    role: "x of x->y".into(),
                    sym: v.sym.render(4),
                    addr: 0,
                });
            }
            let size = t.types().size_of(pointee, t.abi()).unwrap_or(1);
            if !t.is_mapped(p, size) {
                return Err(DuelError::IllegalMemory {
                    role: "x of x->y".into(),
                    sym: v.sym.render(4),
                    addr: p,
                });
            }
            Ok(Value::lval(pointee, p, v.sym.clone()))
        }
        Class::Record => Ok(v.clone()),
        _ => Err(DuelError::Type {
            sym: v.sym.render(4),
            message: format!(
                "`->` needs a pointer to a structure, not `{}`",
                t.types().display(v.ty)
            ),
        }),
    }
}

/// `base[idx]`: array or pointer indexing, producing the element lvalue.
pub fn index(t: &mut dyn Target, base: &Value, idx: &Value, eager_sym: bool) -> DuelResult<Value> {
    let i = match load(t, idx)? {
        Scalar::Int(v) => v,
        Scalar::Ptr(p) => p as i64,
        Scalar::Float(_) => {
            return Err(DuelError::Type {
                sym: idx.sym.render(4),
                message: "array index must be an integer".into(),
            })
        }
    };
    let (elem, base_addr) = match classify(t, base.ty) {
        Class::Array { elem, .. } => {
            let a = base.lval_addr().ok_or_else(|| DuelError::Type {
                sym: base.sym.render(4),
                message: "array value has no address".into(),
            })?;
            (elem, a)
        }
        Class::Ptr { pointee } => {
            let p = match load(t, base)? {
                Scalar::Ptr(p) => p,
                Scalar::Int(v) => v as u64,
                _ => 0,
            };
            (pointee, p)
        }
        _ => {
            return Err(DuelError::Type {
                sym: base.sym.render(4),
                message: format!(
                    "`[]` needs an array or pointer, not `{}`",
                    t.types().display(base.ty)
                ),
            })
        }
    };
    let esize = t.types().size_of(elem, t.abi())? as i64;
    let addr = (base_addr as i64 + i * esize) as u64;
    let sym = if eager_sym {
        Sym::index(&base.sym, &idx.sym)
    } else {
        Sym::None
    };
    Ok(Value::lval(elem, addr, sym))
}

/// Upper bound on bytes one prefetch hint may pull over the wire — a
/// planner hint must never cost more than the scan it accelerates.
pub const PREFETCH_MAX_BYTES: u64 = 1 << 20;

/// Warms the target's cache with one vectored read over `ranges`
/// (address, length) — the prefetch planner's only primitive. Purely
/// advisory: a range that faults or flakes is simply not warmed (the
/// demand read will re-drive it), so errors are swallowed. Oversized
/// ranges are clamped to [`PREFETCH_MAX_BYTES`]; empty ones dropped.
/// Returns the number of ranges that read cleanly.
pub fn prefetch(t: &mut dyn Target, ranges: &[(u64, u64)]) -> usize {
    let mut bufs: Vec<Vec<u8>> = ranges
        .iter()
        .filter(|&&(_, len)| len > 0)
        .map(|&(_, len)| vec![0u8; len.min(PREFETCH_MAX_BYTES) as usize])
        .collect();
    if bufs.is_empty() {
        return 0;
    }
    let mut reads: Vec<ReadRange<'_>> = ranges
        .iter()
        .filter(|&&(_, len)| len > 0)
        .zip(bufs.iter_mut())
        .map(|(&(addr, _), buf)| ReadRange::new(addr, buf))
        .collect();
    t.get_bytes_multi(&mut reads)
        .iter()
        .filter(|r| r.is_ok())
        .count()
}

/// Normalizes an integer to `size` bytes with the given signedness.
pub fn normalize_int(v: i128, size: u8, signed: bool) -> i64 {
    let bits = (size as u32) * 8;
    if bits >= 64 {
        return v as i64;
    }
    let mask = (1i128 << bits) - 1;
    let m = v & mask;
    if signed {
        let sign_bit = 1i128 << (bits - 1);
        if m & sign_bit != 0 {
            (m - (1i128 << bits)) as i64
        } else {
            m as i64
        }
    } else {
        m as i64
    }
}

fn scalar_to_f64(s: Scalar) -> f64 {
    match s {
        Scalar::Int(v) => v as f64,
        Scalar::Float(f) => f,
        Scalar::Ptr(p) => p as f64,
    }
}

fn scalar_to_i128(s: Scalar, signed: bool) -> i128 {
    match s {
        Scalar::Int(v) => {
            if signed {
                v as i128
            } else {
                (v as u64) as i128
            }
        }
        Scalar::Float(f) => f as i128,
        Scalar::Ptr(p) => p as i128,
    }
}

fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Mul | BinOp::Div | BinOp::Rem => precedence::MUL,
        BinOp::Add | BinOp::Sub => precedence::ADD,
        BinOp::Shl | BinOp::Shr => precedence::SHIFT,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => precedence::REL,
        BinOp::Eq | BinOp::Ne => precedence::EQ,
        BinOp::BitAnd => precedence::BITAND,
        BinOp::BitXor => precedence::BITXOR,
        BinOp::BitOr => precedence::BITOR,
    }
}

/// Applies a binary C operator to two values (after loading rvalues),
/// with C's usual arithmetic conversions and pointer arithmetic.
pub fn binary(
    t: &mut dyn Target,
    op: BinOp,
    a: &Value,
    b: &Value,
    eager_sym: bool,
) -> DuelResult<Value> {
    let sym = if eager_sym {
        Sym::bin(op.spelling(), bin_prec(op), &a.sym, &b.sym)
    } else {
        Sym::None
    };
    let int_ty = t.types_mut().prim(Prim::Int);
    let ca = effective_class(t, a);
    let cb = effective_class(t, b);

    // Pointer cases first.
    match (ca, cb, op) {
        (Class::Ptr { pointee }, Class::Int { .. }, BinOp::Add)
        | (Class::Ptr { pointee }, Class::Int { .. }, BinOp::Sub) => {
            let pa = as_addr(load(t, a)?);
            let i = as_int(load(t, b)?);
            let esize = t.types().size_of(pointee, t.abi())? as i64;
            let delta = i * esize;
            let addr = if op == BinOp::Add {
                (pa as i64).wrapping_add(delta)
            } else {
                (pa as i64).wrapping_sub(delta)
            } as u64;
            let ty = decay_type(t, a.ty);
            return Ok(Value::rval(ty, Scalar::Ptr(addr), sym));
        }
        (Class::Int { .. }, Class::Ptr { pointee }, BinOp::Add) => {
            let i = as_int(load(t, a)?);
            let pb = as_addr(load(t, b)?);
            let esize = t.types().size_of(pointee, t.abi())? as i64;
            let addr = (pb as i64).wrapping_add(i * esize) as u64;
            let ty = decay_type(t, b.ty);
            return Ok(Value::rval(ty, Scalar::Ptr(addr), sym));
        }
        (Class::Ptr { pointee }, Class::Ptr { .. }, BinOp::Sub) => {
            let pa = as_addr(load(t, a)?) as i64;
            let pb = as_addr(load(t, b)?) as i64;
            let esize = (t.types().size_of(pointee, t.abi())? as i64).max(1);
            return Ok(Value::rval(int_ty, Scalar::Int((pa - pb) / esize), sym));
        }
        (Class::Ptr { .. }, _, _) | (_, Class::Ptr { .. }, _)
            if matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) =>
        {
            let pa = as_addr(load(t, a)?);
            let pb = as_addr(load(t, b)?);
            let r = match op {
                BinOp::Eq => pa == pb,
                BinOp::Ne => pa != pb,
                BinOp::Lt => pa < pb,
                BinOp::Le => pa <= pb,
                BinOp::Gt => pa > pb,
                _ => pa >= pb,
            };
            return Ok(Value::rval(int_ty, Scalar::Int(r as i64), sym));
        }
        _ => {}
    }

    // Arithmetic cases.
    let (pa, pb) = match (ca, cb) {
        (
            Class::Int { prim: p1, .. } | Class::Float { prim: p1, .. },
            Class::Int { prim: p2, .. } | Class::Float { prim: p2, .. },
        ) => (p1, p2),
        _ => {
            return Err(DuelError::Type {
                sym: sym_or(&sym, a, b),
                message: format!(
                    "operator `{}` cannot combine `{}` and `{}`",
                    op.spelling(),
                    t.types().display(a.ty),
                    t.types().display(b.ty)
                ),
            })
        }
    };
    let common = convert::usual_arithmetic(pa, pb, t.abi());
    let va = load(t, a)?;
    let vb = load(t, b)?;
    if common.is_float() {
        let fa = scalar_to_f64(va);
        let fb = scalar_to_f64(vb);
        let is_cmp = matches!(
            op,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        );
        if is_cmp {
            let r = match op {
                BinOp::Lt => fa < fb,
                BinOp::Le => fa <= fb,
                BinOp::Gt => fa > fb,
                BinOp::Ge => fa >= fb,
                BinOp::Eq => fa == fb,
                _ => fa != fb,
            };
            return Ok(Value::rval(int_ty, Scalar::Int(r as i64), sym));
        }
        let r = match op {
            BinOp::Add => fa + fb,
            BinOp::Sub => fa - fb,
            BinOp::Mul => fa * fb,
            BinOp::Div => {
                if fb == 0.0 {
                    return Err(DuelError::DivByZero {
                        sym: sym_or(&sym, a, b),
                    });
                }
                fa / fb
            }
            other => {
                return Err(DuelError::Type {
                    sym: sym_or(&sym, a, b),
                    message: format!("operator `{}` needs integer operands", other.spelling()),
                })
            }
        };
        let ty = t.types_mut().prim(common);
        return Ok(Value::rval(ty, Scalar::Float(r), sym));
    }

    // Integer arithmetic in the common type.
    let signed = common.is_signed(t.abi());
    let size = common.size(t.abi()) as u8;
    let ia = scalar_to_i128(va, sign_of(t, a));
    let ib = scalar_to_i128(vb, sign_of(t, b));
    let is_cmp = matches!(
        op,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
    );
    if is_cmp {
        // Compare in the common type's representation.
        let na = normalize_cmp(ia, size, signed);
        let nb = normalize_cmp(ib, size, signed);
        let r = match op {
            BinOp::Lt => na < nb,
            BinOp::Le => na <= nb,
            BinOp::Gt => na > nb,
            BinOp::Ge => na >= nb,
            BinOp::Eq => na == nb,
            _ => na != nb,
        };
        return Ok(Value::rval(int_ty, Scalar::Int(r as i64), sym));
    }
    let r: i128 = match op {
        BinOp::Add => ia.wrapping_add(ib),
        BinOp::Sub => ia.wrapping_sub(ib),
        BinOp::Mul => ia.wrapping_mul(ib),
        BinOp::Div => {
            if ib == 0 {
                return Err(DuelError::DivByZero {
                    sym: sym_or(&sym, a, b),
                });
            }
            ia.wrapping_div(ib)
        }
        BinOp::Rem => {
            if ib == 0 {
                return Err(DuelError::DivByZero {
                    sym: sym_or(&sym, a, b),
                });
            }
            ia.wrapping_rem(ib)
        }
        BinOp::Shl => ia.wrapping_shl((ib as u32) & 63),
        BinOp::Shr => {
            if signed {
                ia >> ((ib as u32) & 63)
            } else {
                ((ia as u64 as u128) >> ((ib as u32) & 63)) as i128
            }
        }
        BinOp::BitAnd => ia & ib,
        BinOp::BitXor => ia ^ ib,
        BinOp::BitOr => ia | ib,
        _ => unreachable!("comparisons handled above"),
    };
    let ty = t.types_mut().prim(common);
    Ok(Value::rval(
        ty,
        Scalar::Int(normalize_int(r, size, signed)),
        sym,
    ))
}

fn normalize_cmp(v: i128, size: u8, signed: bool) -> i128 {
    let n = normalize_int(v, size, signed);
    if signed {
        n as i128
    } else {
        (n as u64) as i128
    }
}

fn sym_or(sym: &Sym, a: &Value, b: &Value) -> String {
    if matches!(sym, Sym::None) {
        format!("{} … {}", a.sym.render(4), b.sym.render(4))
    } else {
        sym.render(4)
    }
}

fn sign_of(t: &dyn Target, v: &Value) -> bool {
    matches!(
        effective_class(t, v),
        Class::Int { signed: true, .. } | Class::Float { .. }
    )
}

fn as_addr(s: Scalar) -> u64 {
    match s {
        Scalar::Ptr(p) => p,
        Scalar::Int(v) => v as u64,
        Scalar::Float(f) => f as u64,
    }
}

fn as_int(s: Scalar) -> i64 {
    match s {
        Scalar::Int(v) => v,
        Scalar::Ptr(p) => p as i64,
        Scalar::Float(f) => f as i64,
    }
}

/// The class of a value after array decay.
fn effective_class(t: &dyn Target, v: &Value) -> Class {
    match classify(t, v.ty) {
        Class::Array { elem, .. } => Class::Ptr { pointee: elem },
        other => other,
    }
}

/// The decayed type of an array (pointer to element); other types pass
/// through.
fn decay_type(t: &mut dyn Target, ty: TypeId) -> TypeId {
    match classify(t, ty) {
        Class::Array { elem, .. } => t.types_mut().pointer(elem),
        _ => ty,
    }
}

/// Applies a unary C operator.
pub fn unary(t: &mut dyn Target, op: UnOp, v: &Value, eager_sym: bool) -> DuelResult<Value> {
    let sym = if eager_sym {
        let spelling = match op {
            UnOp::Neg => "-",
            UnOp::Pos => "+",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
            UnOp::Deref => "*",
            UnOp::Addr => "&",
        };
        Sym::un(spelling, &v.sym)
    } else {
        Sym::None
    };
    let int_ty = t.types_mut().prim(Prim::Int);
    match op {
        UnOp::Pos | UnOp::Neg => {
            let s = load(t, v)?;
            match s {
                Scalar::Float(f) => {
                    let r = if op == UnOp::Neg { -f } else { f };
                    Ok(Value::rval(v.ty, Scalar::Float(r), sym))
                }
                Scalar::Int(i) => {
                    let (prim, size, signed) = int_info(t, v)?;
                    let promoted = convert::integer_promote(prim);
                    let _ = (size, signed);
                    let psize = promoted.size(t.abi()) as u8;
                    let psigned = promoted.is_signed(t.abi());
                    let r = if op == UnOp::Neg {
                        (i as i128).wrapping_neg()
                    } else {
                        i as i128
                    };
                    let ty = t.types_mut().prim(promoted);
                    Ok(Value::rval(
                        ty,
                        Scalar::Int(normalize_int(r, psize, psigned)),
                        sym,
                    ))
                }
                Scalar::Ptr(_) => Err(DuelError::Type {
                    sym: v.sym.render(4),
                    message: "unary +/- needs an arithmetic operand".into(),
                }),
            }
        }
        UnOp::Not => {
            let b = truthy(t, v)?;
            Ok(Value::rval(int_ty, Scalar::Int(!b as i64), sym))
        }
        UnOp::BitNot => {
            let (prim, ..) = int_info(t, v)?;
            let promoted = convert::integer_promote(prim);
            let psize = promoted.size(t.abi()) as u8;
            let psigned = promoted.is_signed(t.abi());
            let i = as_int(load(t, v)?);
            let ty = t.types_mut().prim(promoted);
            Ok(Value::rval(
                ty,
                Scalar::Int(normalize_int(!(i as i128), psize, psigned)),
                sym,
            ))
        }
        UnOp::Deref => {
            let (pointee, p) = match effective_class(t, v) {
                Class::Ptr { pointee } => (pointee, as_addr(load(t, v)?)),
                _ => {
                    return Err(DuelError::Type {
                        sym: v.sym.render(4),
                        message: format!("`*` needs a pointer, not `{}`", t.types().display(v.ty)),
                    })
                }
            };
            if p == 0 || !t.is_mapped(p, 1) {
                return Err(DuelError::IllegalMemory {
                    role: "x of *x".into(),
                    sym: v.sym.render(4),
                    addr: p,
                });
            }
            Ok(Value::lval(pointee, p, sym))
        }
        UnOp::Addr => {
            let addr = v.lval_addr().ok_or_else(|| DuelError::NotLvalue {
                sym: v.sym.render(4),
            })?;
            let ty = t.types_mut().pointer(v.ty);
            Ok(Value::rval(ty, Scalar::Ptr(addr), sym))
        }
    }
}

fn int_info(t: &dyn Target, v: &Value) -> DuelResult<(Prim, u8, bool)> {
    match classify(t, v.ty) {
        Class::Int { prim, size, signed } => Ok((prim, size, signed)),
        _ => Err(DuelError::Type {
            sym: v.sym.render(4),
            message: format!(
                "integer operand required, found `{}`",
                t.types().display(v.ty)
            ),
        }),
    }
}

/// Converts a scalar to type `ty` (for assignments, casts, arguments).
pub fn convert_scalar(t: &dyn Target, ty: TypeId, s: Scalar) -> DuelResult<Scalar> {
    Ok(match classify(t, ty) {
        Class::Int { size, signed, .. } => Scalar::Int(normalize_int(
            match s {
                Scalar::Int(v) => v as i128,
                Scalar::Float(f) => f as i128,
                Scalar::Ptr(p) => p as i128,
            },
            size,
            signed,
        )),
        Class::Float { size, .. } => {
            let f = scalar_to_f64(s);
            Scalar::Float(if size == 4 { f as f32 as f64 } else { f })
        }
        Class::Ptr { .. } | Class::Array { .. } | Class::Func => Scalar::Ptr(as_addr(s)),
        Class::Record | Class::Void => {
            return Err(DuelError::Type {
                sym: String::new(),
                message: "cannot convert to a non-scalar type".into(),
            })
        }
    })
}

/// Stores `s` into the lvalue `dst` (converting to the destination
/// type). Returns the stored scalar.
pub fn store(t: &mut dyn Target, dst: &Value, s: Scalar) -> DuelResult<Scalar> {
    let s = convert_scalar(t, dst.ty, s)?;
    match &dst.place {
        Place::LVal(addr) => {
            match classify(t, dst.ty) {
                Class::Int { size, .. } => {
                    let v = as_int(s) as u64;
                    value_io::write_uint(t, *addr, v, size as usize)
                        .map_err(|e| memory_error(e, dst, "x of x = y"))?;
                }
                Class::Float { size, .. } => {
                    value_io::write_float(t, *addr, scalar_to_f64(s), size as usize)
                        .map_err(|e| memory_error(e, dst, "x of x = y"))?;
                }
                Class::Ptr { .. } => {
                    value_io::write_ptr(t, *addr, as_addr(s))
                        .map_err(|e| memory_error(e, dst, "x of x = y"))?;
                }
                _ => {
                    return Err(DuelError::Type {
                        sym: dst.sym.render(4),
                        message: "cannot assign to this type".into(),
                    })
                }
            }
            Ok(s)
        }
        Place::BitField {
            addr,
            unit,
            bit_off,
            width,
        } => {
            value_io::write_bitfield(t, *addr, *unit as usize, *bit_off, *width, as_int(s))
                .map_err(|e| memory_error(e, dst, "x of x = y"))?;
            Ok(s)
        }
        Place::RVal(_) => Err(DuelError::NotLvalue {
            sym: dst.sym.render(4),
        }),
    }
}

/// Casts `v` to `ty`.
pub fn cast(t: &mut dyn Target, ty: TypeId, v: &Value, eager_sym: bool) -> DuelResult<Value> {
    let sym = if eager_sym {
        Sym::cast(&t.types().display(ty), &v.sym)
    } else {
        Sym::None
    };
    if matches!(classify(t, ty), Class::Void) {
        // A cast to void discards the value; keep a zero int.
        return Ok(Value::rval(ty, Scalar::Int(0), sym));
    }
    let s = load(t, v)?;
    let s = convert_scalar(t, ty, s)?;
    Ok(Value::rval(ty, s, sym))
}

/// Marshals a value into a [`CallValue`] for `duel_call_target_func`.
pub fn to_call_value(t: &mut dyn Target, v: &Value) -> DuelResult<CallValue> {
    let s = load(t, v)?;
    let abi = t.abi();
    Ok(match classify(t, v.ty) {
        Class::Int { size, .. } => CallValue::from_u64(v.ty, as_int(s) as u64, size as usize, abi)?,
        Class::Float { size, .. } => {
            let f = scalar_to_f64(s);
            let raw = if size == 4 {
                (f as f32).to_bits() as u64
            } else {
                f.to_bits()
            };
            CallValue::from_u64(v.ty, raw, size as usize, abi)?
        }
        Class::Ptr { .. } | Class::Array { .. } | Class::Func => {
            CallValue::from_u64(v.ty, as_addr(s), abi.pointer_bytes as usize, abi)?
        }
        _ => {
            return Err(DuelError::Type {
                sym: v.sym.render(4),
                message: "cannot pass this value to a function".into(),
            })
        }
    })
}

/// Unmarshals a function result into a value.
pub fn from_call_value(t: &mut dyn Target, cv: &CallValue, sym: Sym) -> DuelResult<Value> {
    let abi = t.abi();
    let raw = cv.to_u64(abi);
    Ok(match classify(t, cv.ty) {
        Class::Int { size, signed, .. } => {
            let v = if signed {
                value_io::sign_extend(raw, size as usize)
            } else {
                raw as i64
            };
            Value::rval(cv.ty, Scalar::Int(v), sym)
        }
        Class::Float { size, .. } => {
            let f = if size == 4 {
                f32::from_bits(raw as u32) as f64
            } else {
                f64::from_bits(raw)
            };
            Value::rval(cv.ty, Scalar::Float(f), sym)
        }
        Class::Ptr { .. } => Value::rval(cv.ty, Scalar::Ptr(raw), sym),
        Class::Void => Value::rval(cv.ty, Scalar::Int(0), sym),
        _ => {
            return Err(DuelError::Type {
                sym: sym.render(4),
                message: "unsupported function return type".into(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use duel_ctype::Abi;
    use duel_target::SimTarget;

    fn setup() -> SimTarget {
        SimTarget::new(Abi::lp64())
    }

    fn int_val(t: &mut SimTarget, v: i64) -> Value {
        let ty = t.core.types.prim(Prim::Int);
        Value::rval(ty, Scalar::Int(v), Sym::int(v))
    }

    fn dbl_val(t: &mut SimTarget, v: f64) -> Value {
        let ty = t.core.types.prim(Prim::Double);
        Value::rval(ty, Scalar::Float(v), Sym::leaf(format!("{v}")))
    }

    #[test]
    fn integer_arithmetic() {
        let mut t = setup();
        let a = int_val(&mut t, 7);
        let b = int_val(&mut t, 3);
        let r = binary(&mut t, BinOp::Add, &a, &b, true).unwrap();
        assert_eq!(load(&mut t, &r).unwrap(), Scalar::Int(10));
        assert_eq!(r.sym.render(4), "7+3");
        let r = binary(&mut t, BinOp::Rem, &a, &b, true).unwrap();
        assert_eq!(load(&mut t, &r).unwrap(), Scalar::Int(1));
        let z = int_val(&mut t, 0);
        assert!(matches!(
            binary(&mut t, BinOp::Div, &a, &z, true),
            Err(DuelError::DivByZero { .. })
        ));
    }

    #[test]
    fn comparisons_yield_int() {
        let mut t = setup();
        let a = int_val(&mut t, 7);
        let b = int_val(&mut t, 3);
        let r = binary(&mut t, BinOp::Gt, &a, &b, true).unwrap();
        assert_eq!(load(&mut t, &r).unwrap(), Scalar::Int(1));
        let r = binary(&mut t, BinOp::Eq, &a, &b, true).unwrap();
        assert_eq!(load(&mut t, &r).unwrap(), Scalar::Int(0));
    }

    #[test]
    fn float_arithmetic_and_promotion() {
        let mut t = setup();
        let a = int_val(&mut t, 1);
        let b = dbl_val(&mut t, 2.5);
        let r = binary(&mut t, BinOp::Add, &a, &b, true).unwrap();
        assert_eq!(load(&mut t, &r).unwrap(), Scalar::Float(3.5));
        // The paper's `1 + (double)3/2`.
        let three = int_val(&mut t, 3);
        let dty = t.core.types.prim(Prim::Double);
        let c = cast(&mut t, dty, &three, true).unwrap();
        let two = int_val(&mut t, 2);
        let half = binary(&mut t, BinOp::Div, &c, &two, true).unwrap();
        let one = int_val(&mut t, 1);
        let r = binary(&mut t, BinOp::Add, &one, &half, true).unwrap();
        assert_eq!(load(&mut t, &r).unwrap(), Scalar::Float(2.5));
        assert_eq!(r.sym.render(4), "1+(double)3/2");
    }

    #[test]
    fn unsigned_wraparound() {
        let mut t = setup();
        let uty = t.core.types.prim(Prim::UInt);
        let a = Value::rval(uty, Scalar::Int(0xffff_ffff), Sym::leaf("a"));
        let b = Value::rval(uty, Scalar::Int(1), Sym::leaf("b"));
        let r = binary(&mut t, BinOp::Add, &a, &b, true).unwrap();
        assert_eq!(load(&mut t, &r).unwrap(), Scalar::Int(0));
        // Unsigned comparison: 0xffffffff > 1.
        let r = binary(&mut t, BinOp::Gt, &a, &b, true).unwrap();
        assert_eq!(load(&mut t, &r).unwrap(), Scalar::Int(1));
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let mut t = setup();
        let int = t.core.types.prim(Prim::Int);
        let arr = t.core.types.array(int, Some(10));
        let base = t.core.define_global("x", arr).unwrap();
        let x = Value::lval(arr, base, Sym::leaf("x"));
        let two = int_val(&mut t, 2);
        let p = binary(&mut t, BinOp::Add, &x, &two, true).unwrap();
        assert_eq!(load(&mut t, &p).unwrap(), Scalar::Ptr(base + 8));
        // p - x == 2.
        let d = binary(&mut t, BinOp::Sub, &p, &x, true).unwrap();
        assert_eq!(load(&mut t, &d).unwrap(), Scalar::Int(2));
    }

    #[test]
    fn indexing_reads_elements() {
        let mut t = setup();
        let int = t.core.types.prim(Prim::Int);
        let arr = t.core.types.array(int, Some(10));
        let base = t.core.define_global("x", arr).unwrap();
        t.core.write_int(base + 12, -9).unwrap();
        let x = Value::lval(arr, base, Sym::leaf("x"));
        let i = int_val(&mut t, 3);
        let e = index(&mut t, &x, &i, true).unwrap();
        assert_eq!(e.sym.render(4), "x[3]");
        assert_eq!(load(&mut t, &e).unwrap(), Scalar::Int(-9));
        // Store through the lvalue.
        store(&mut t, &e, Scalar::Int(42)).unwrap();
        assert_eq!(t.core.read_int(base + 12).unwrap(), 42);
    }

    #[test]
    fn deref_null_and_wild_pointers() {
        let mut t = setup();
        let int = t.core.types.prim(Prim::Int);
        let p = t.core.types.pointer(int);
        let null = Value::rval(p, Scalar::Ptr(0), Sym::leaf("p"));
        assert!(matches!(
            unary(&mut t, UnOp::Deref, &null, true),
            Err(DuelError::IllegalMemory { .. })
        ));
        let wild = Value::rval(p, Scalar::Ptr(0xdead_0000_0000), Sym::leaf("q"));
        let e = unary(&mut t, UnOp::Deref, &wild, true).unwrap_err();
        match e {
            DuelError::IllegalMemory { sym, addr, .. } => {
                assert_eq!(sym, "q");
                assert_eq!(addr, 0xdead_0000_0000);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn address_of() {
        let mut t = setup();
        let int = t.core.types.prim(Prim::Int);
        let a = t.core.define_global("g", int).unwrap();
        let g = Value::lval(int, a, Sym::leaf("g"));
        let p = unary(&mut t, UnOp::Addr, &g, true).unwrap();
        assert_eq!(load(&mut t, &p).unwrap(), Scalar::Ptr(a));
        assert_eq!(p.sym.render(4), "&g");
        let r = int_val(&mut t, 1);
        assert!(matches!(
            unary(&mut t, UnOp::Addr, &r, true),
            Err(DuelError::NotLvalue { .. })
        ));
    }

    #[test]
    fn logical_not_and_bitnot() {
        let mut t = setup();
        let a = int_val(&mut t, 0);
        let r = unary(&mut t, UnOp::Not, &a, true).unwrap();
        assert_eq!(load(&mut t, &r).unwrap(), Scalar::Int(1));
        let b = int_val(&mut t, 5);
        let r = unary(&mut t, UnOp::BitNot, &b, true).unwrap();
        assert_eq!(load(&mut t, &r).unwrap(), Scalar::Int(-6));
    }

    #[test]
    fn char_promotes_on_negate() {
        let mut t = setup();
        let cty = t.core.types.prim(Prim::Char);
        let c = Value::rval(cty, Scalar::Int(7), Sym::leaf("c"));
        let r = unary(&mut t, UnOp::Neg, &c, true).unwrap();
        assert_eq!(load(&mut t, &r).unwrap(), Scalar::Int(-7));
        assert_eq!(t.core.types.display(r.ty), "int");
    }

    #[test]
    fn normalize_int_widths() {
        assert_eq!(normalize_int(256, 1, false), 0);
        assert_eq!(normalize_int(255, 1, true), -1);
        assert_eq!(normalize_int(255, 1, false), 255);
        assert_eq!(normalize_int(-1, 4, false), 0xffff_ffff);
        assert_eq!(normalize_int(i128::from(i64::MAX), 8, true), i64::MAX);
    }

    #[test]
    fn field_access_and_bitfields() {
        let mut t = setup();
        let u = t.core.types.prim(Prim::UInt);
        let (rid, sty) = t.core.types.declare_struct("flags");
        t.core.types.define_record(
            rid,
            vec![
                duel_ctype::Field::bitfield("a", u, 3),
                duel_ctype::Field::bitfield("b", u, 5),
            ],
        );
        let addr = t.core.define_global("f", sty).unwrap();
        t.core.write_uint(addr, 0b1111_1101, 4).unwrap();
        let v = Value::lval(sty, addr, Sym::leaf("f"));
        assert!(has_field(&t, sty, "a"));
        assert!(!has_field(&t, sty, "z"));
        let a = field_of(&mut t, &v, "a", false, true).unwrap();
        assert_eq!(load(&mut t, &a).unwrap(), Scalar::Int(0b101));
        assert_eq!(a.sym.render(4), "f.a");
        let b = field_of(&mut t, &v, "b", false, true).unwrap();
        assert_eq!(load(&mut t, &b).unwrap(), Scalar::Int(0b11111));
        store(&mut t, &b, Scalar::Int(0)).unwrap();
        assert_eq!(t.core.read_uint(addr, 4).unwrap(), 0b101);
    }

    #[test]
    fn call_value_roundtrip() {
        let mut t = setup();
        let v = int_val(&mut t, -5);
        let cv = to_call_value(&mut t, &v).unwrap();
        let back = from_call_value(&mut t, &cv, Sym::leaf("r")).unwrap();
        assert_eq!(load(&mut t, &back).unwrap(), Scalar::Int(-5));
    }
}
