//! Tokens of the DUEL concrete syntax: all of C's, plus the DUEL
//! operators (`..`, `,`-alternation shares C's comma, the `?`-suffixed
//! filter comparisons, `=>`, `:=`, `-->`, `[[ ]]`, `#`, `#/`, `@`).

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Integer literal (value already decoded).
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Character literal (its byte value).
    Char(u8),
    /// String literal (unescaped contents).
    Str(String),
    /// Identifier or keyword candidate.
    Ident(String),

    // Grouping.
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `[[` (unused: the parser recognises two adjacent brackets).
    LLBracket,
    /// `]]` (unused: the parser recognises two adjacent brackets).
    RRBracket,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,

    // C operators.
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `&`.
    Amp,
    /// `|`.
    Pipe,
    /// `^`.
    Caret,
    /// `~`.
    Tilde,
    /// `!`.
    Bang,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// `==`.
    EqEq,
    /// `!=`.
    Ne,
    /// `&&`.
    AmpAmp,
    /// `||`.
    PipePipe,
    /// `?`.
    Question,
    /// `:`.
    Colon,
    /// `=`.
    Assign,
    /// `+=`.
    PlusAssign,
    /// `-=`.
    MinusAssign,
    /// `*=`.
    StarAssign,
    /// `/=`.
    SlashAssign,
    /// `%=`.
    PercentAssign,
    /// `&=`.
    AmpAssign,
    /// `|=`.
    PipeAssign,
    /// `^=`.
    CaretAssign,
    /// `<<=`.
    ShlAssign,
    /// `>>=`.
    ShrAssign,
    /// `++`.
    PlusPlus,
    /// `--`.
    MinusMinus,
    /// `.`.
    Dot,
    /// `->`.
    Arrow,
    /// `,`.
    Comma,
    /// `;`.
    Semi,

    // DUEL operators.
    /// `..` — the `to` generator.
    DotDot,
    /// `>?` — yield left operand if greater.
    GtQ,
    /// `>=?`.
    GeQ,
    /// `<?`.
    LtQ,
    /// `<=?`.
    LeQ,
    /// `==?`.
    EqQ,
    /// `!=?`.
    NeQ,
    /// `=>` — imply.
    Imply,
    /// `:=` — alias definition.
    ColonAssign,
    /// `-->` — depth-first expansion.
    DashDashGt,
    /// `-->>` — breadth-first expansion (extension; the paper describes
    /// BFS semantics without giving concrete syntax).
    DashDashGtGt,
    /// `#` — postfix index alias.
    Hash,
    /// `#/` — the count reduction.
    HashSlash,
    /// `@` — the until operator.
    At,

    /// End of input.
    Eof,
}

impl Tok {
    /// Human-readable spelling for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Float(v) => format!("float `{v}`"),
            Tok::Char(c) => format!("char literal `{}`", *c as char),
            Tok::Str(s) => format!("string \"{s}\""),
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Eof => "end of expression".to_string(),
            other => format!("`{}`", other.spelling()),
        }
    }

    /// The literal spelling of a fixed token.
    pub fn spelling(&self) -> &'static str {
        match self {
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::LLBracket => "[[",
            Tok::RRBracket => "]]",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Caret => "^",
            Tok::Tilde => "~",
            Tok::Bang => "!",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::Le => "<=",
            Tok::Ge => ">=",
            Tok::EqEq => "==",
            Tok::Ne => "!=",
            Tok::AmpAmp => "&&",
            Tok::PipePipe => "||",
            Tok::Question => "?",
            Tok::Colon => ":",
            Tok::Assign => "=",
            Tok::PlusAssign => "+=",
            Tok::MinusAssign => "-=",
            Tok::StarAssign => "*=",
            Tok::SlashAssign => "/=",
            Tok::PercentAssign => "%=",
            Tok::AmpAssign => "&=",
            Tok::PipeAssign => "|=",
            Tok::CaretAssign => "^=",
            Tok::ShlAssign => "<<=",
            Tok::ShrAssign => ">>=",
            Tok::PlusPlus => "++",
            Tok::MinusMinus => "--",
            Tok::Dot => ".",
            Tok::Arrow => "->",
            Tok::Comma => ",",
            Tok::Semi => ";",
            Tok::DotDot => "..",
            Tok::GtQ => ">?",
            Tok::GeQ => ">=?",
            Tok::LtQ => "<?",
            Tok::LeQ => "<=?",
            Tok::EqQ => "==?",
            Tok::NeQ => "!=?",
            Tok::Imply => "=>",
            Tok::ColonAssign => ":=",
            Tok::DashDashGt => "-->",
            Tok::DashDashGtGt => "-->>",
            Tok::Hash => "#",
            Tok::HashSlash => "#/",
            Tok::At => "@",
            _ => "<dynamic>",
        }
    }
}

/// A token with its byte offset in the source (for error reporting).
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_and_spelling() {
        assert_eq!(Tok::DashDashGt.spelling(), "-->");
        assert_eq!(Tok::Int(5).describe(), "integer `5`");
        assert_eq!(Tok::GtQ.describe(), "`>?`");
        assert_eq!(Tok::Eof.describe(), "end of expression");
    }
}
