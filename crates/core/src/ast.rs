//! The abstract syntax of DUEL.
//!
//! Nodes correspond to the primitive operators of the paper's *Semantics*
//! section: generators (`to`, `alternate`), the filter comparisons
//! (`ifgt`, …), sequencing (`sequence`, `imply`, `if`, `while`), scope
//! entry (`with`), expansion (`dfs`, `bfs`), selection and reduction
//! (`select`, `count`, …), aliases (`define`), plus all of C's operators.

/// A unary C operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Unary plus `+e`.
    Pos,
    /// Logical not `!e`.
    Not,
    /// Bitwise complement `~e`.
    BitNot,
    /// Indirection `*e`.
    Deref,
    /// Address-of `&e`.
    Addr,
}

/// A binary C operator (value-producing, non-filter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `&`.
    BitAnd,
    /// `^`.
    BitXor,
    /// `|`.
    BitOr,
}

impl BinOp {
    /// The C spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::BitAnd => "&",
            BinOp::BitXor => "^",
            BinOp::BitOr => "|",
        }
    }
}

/// A filter comparison: yields the *left* operand when the comparison
/// holds, and nothing otherwise (the paper's `ifgt`, `ifge`, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterOp {
    /// `>?`.
    Gt,
    /// `>=?`.
    Ge,
    /// `<?`.
    Lt,
    /// `<=?`.
    Le,
    /// `==?`.
    Eq,
    /// `!=?`.
    Ne,
}

impl FilterOp {
    /// The DUEL spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            FilterOp::Gt => ">?",
            FilterOp::Ge => ">=?",
            FilterOp::Lt => "<?",
            FilterOp::Le => "<=?",
            FilterOp::Eq => "==?",
            FilterOp::Ne => "!=?",
        }
    }

    /// The corresponding plain comparison.
    pub fn as_cmp(self) -> BinOp {
        match self {
            FilterOp::Gt => BinOp::Gt,
            FilterOp::Ge => BinOp::Ge,
            FilterOp::Lt => BinOp::Lt,
            FilterOp::Le => BinOp::Le,
            FilterOp::Eq => BinOp::Eq,
            FilterOp::Ne => BinOp::Ne,
        }
    }
}

/// A reduction over a value sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// `#/e` — the number of values produced by `e`.
    Count,
    /// `+/e` — the sum of the values (the paper's `sum`).
    Sum,
    /// `&&/e` — 1 if all values are non-zero.
    All,
    /// `||/e` — 1 if any value is non-zero.
    Any,
    /// `>/e` — the maximum value (extension).
    Max,
    /// `</e` — the minimum value (extension).
    Min,
}

impl ReduceOp {
    /// The DUEL spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            ReduceOp::Count => "#/",
            ReduceOp::Sum => "+/",
            ReduceOp::All => "&&/",
            ReduceOp::Any => "||/",
            ReduceOp::Max => ">/",
            ReduceOp::Min => "</",
        }
    }
}

/// How a scope-entry (`with`) was written: `e1.e2` or `e1->e2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WithLink {
    /// `.` — operand is a struct/union.
    Dot,
    /// `->` — operand is a pointer to a struct/union.
    Arrow,
}

/// A parsed (unresolved) C type name, as appears in casts, `sizeof`, and
/// DUEL declarations. Resolution against the target's type table happens
/// at evaluation time, per the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeExpr {
    /// The base type.
    pub base: BaseType,
    /// Pointer/array derivations, outermost first as written
    /// (`int *[4]` ⇒ `[Array(4), Ptr]` applied right-to-left on base).
    pub derivs: Vec<Deriv>,
}

/// The base of a type name.
#[derive(Clone, Debug, PartialEq)]
pub enum BaseType {
    /// `void`.
    Void,
    /// A primitive spelled with keywords (`unsigned long`, …).
    Prim(duel_ctype::Prim),
    /// `struct tag`.
    Struct(String),
    /// `union tag`.
    Union(String),
    /// `enum tag`.
    Enum(String),
    /// A typedef name.
    Typedef(String),
}

/// One type derivation step.
#[derive(Clone, Debug, PartialEq)]
pub enum Deriv {
    /// A pointer level.
    Ptr,
    /// An array dimension; `None` for `[]`.
    Array(Option<u64>),
}

/// One declarator in a DUEL declaration (`int i, *p;`).
#[derive(Clone, Debug, PartialEq)]
pub struct Declarator {
    /// The declared name.
    pub name: String,
    /// Extra derivations from the declarator (`*p` ⇒ `[Ptr]`).
    pub derivs: Vec<Deriv>,
}

/// A DUEL expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Character literal.
    Char(u8),
    /// String literal (interned into target memory at evaluation).
    Str(String),
    /// A name: alias, with-scope field, target variable, enumerator, or
    /// function.
    Name(String),
    /// `_` — the current `with` operand.
    Underscore,

    /// `e1..e2` — the integers from `e1` to `e2` inclusive.
    To(Box<Expr>, Box<Expr>),
    /// `..e` — shorthand for `0..e-1`.
    ToPrefix(Box<Expr>),
    /// `e..` — the unbounded sequence `e, e+1, …`.
    ToInf(Box<Expr>),
    /// `e1,e2` — all values of `e1`, then all values of `e2`.
    Alt(Box<Expr>, Box<Expr>),

    /// A unary C operator.
    Unary(UnOp, Box<Expr>),
    /// Pre-increment/decrement (`inc` selects `++`).
    PreIncDec {
        /// `true` for `++`.
        inc: bool,
        /// The operand (an lvalue).
        expr: Box<Expr>,
    },
    /// Post-increment/decrement.
    PostIncDec {
        /// `true` for `++`.
        inc: bool,
        /// The operand (an lvalue).
        expr: Box<Expr>,
    },
    /// `sizeof e`.
    SizeofExpr(Box<Expr>),
    /// `sizeof(type)`.
    SizeofType(TypeExpr),
    /// `(type)e`.
    Cast(TypeExpr, Box<Expr>),

    /// A binary C operator over all operand combinations.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `e1 && e2` (generator semantics per the paper).
    AndAnd(Box<Expr>, Box<Expr>),
    /// `e1 || e2`.
    OrOr(Box<Expr>, Box<Expr>),
    /// `c ? a : b`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `e1 = e2` or `e1 op= e2` (`op` is `None` for plain `=`).
    Assign(Option<BinOp>, Box<Expr>, Box<Expr>),

    /// A filter comparison (`>?`, …) yielding the left operand.
    Filter(FilterOp, Box<Expr>, Box<Expr>),
    /// `e1[e2]`.
    Index(Box<Expr>, Box<Expr>),
    /// `e1[[e2]]` — the paper's `select`.
    Select(Box<Expr>, Box<Expr>),
    /// `e1.e2` / `e1->e2` — the paper's `with`.
    With(WithLink, Box<Expr>, Box<Expr>),
    /// `e1-->e2` — depth-first expansion.
    Dfs(Box<Expr>, Box<Expr>),
    /// `e1-->>e2` — breadth-first expansion.
    Bfs(Box<Expr>, Box<Expr>),
    /// `e1 => e2` — the paper's `imply`.
    Imply(Box<Expr>, Box<Expr>),
    /// `e1 ; e2` — evaluate and discard `e1`, produce `e2`.
    Seq(Box<Expr>, Box<Expr>),
    /// A trailing `;` — evaluate for side effects, produce nothing.
    Discard(Box<Expr>),
    /// `if (c) t [else f]` as an expression.
    If(Box<Expr>, Box<Expr>, Option<Box<Expr>>),
    /// `while (c) body` as an expression.
    While(Box<Expr>, Box<Expr>),
    /// `for (init; cond; step) body` as an expression.
    For {
        /// The init expression, if any.
        init: Option<Box<Expr>>,
        /// The loop condition, if any (absent = true).
        cond: Option<Box<Expr>>,
        /// The step expression, if any.
        step: Option<Box<Expr>>,
        /// The body.
        body: Box<Expr>,
    },
    /// `a := e` — alias definition.
    Alias(String, Box<Expr>),
    /// A DUEL declaration (`int i, *p;`) creating aliases to freshly
    /// allocated target space. Produces no values.
    Decl {
        /// The base type of the declaration.
        base: TypeExpr,
        /// The declarators.
        decls: Vec<Declarator>,
    },
    /// A call `f(a, b, …)`; generator arguments produce the
    /// cross-product of calls.
    Call(String, Vec<Expr>),
    /// A reduction `#/e`, `+/e`, ….
    Reduce(ReduceOp, Box<Expr>),
    /// `e#name` — produce `e`'s values, aliasing `name` to each index.
    IndexAlias(Box<Expr>, String),
    /// `e@stop` — produce `e`'s values until `stop` holds.
    Until(Box<Expr>, Box<Expr>),
    /// `{e}` — display override: the symbolic value becomes the actual
    /// value.
    Braced(Box<Expr>),
}

impl Expr {
    /// Boxes the expression (builder convenience).
    pub fn boxed(self) -> Box<Expr> {
        Box::new(self)
    }

    /// Returns `true` if the expression tree contains any DUEL-specific
    /// construct (generator, alias, filter, statement-expression, …).
    ///
    /// Pure C expressions are displayed without symbolic output, matching
    /// the paper's `duel 1 + (double)3/2` ⇒ `2.500`.
    pub fn has_duel_ops(&self) -> bool {
        use Expr::*;
        match self {
            Int(_) | Float(_) | Char(_) | Str(_) | Name(_) => false,
            Underscore => true,
            To(..) | ToPrefix(..) | ToInf(..) | Alt(..) => true,
            Unary(_, e) | SizeofExpr(e) | Cast(_, e) => e.has_duel_ops(),
            PreIncDec { expr, .. } | PostIncDec { expr, .. } => expr.has_duel_ops(),
            SizeofType(_) => false,
            Bin(_, a, b) | AndAnd(a, b) | OrOr(a, b) => a.has_duel_ops() || b.has_duel_ops(),
            Cond(c, a, b) => c.has_duel_ops() || a.has_duel_ops() || b.has_duel_ops(),
            Assign(_, a, b) => a.has_duel_ops() || b.has_duel_ops(),
            Filter(..)
            | Select(..)
            | Dfs(..)
            | Bfs(..)
            | Imply(..)
            | Seq(..)
            | Discard(..)
            | If(..)
            | While(..)
            | For { .. }
            | Alias(..)
            | Decl { .. }
            | Reduce(..)
            | IndexAlias(..)
            | Until(..)
            | Braced(..) => true,
            Index(a, b) => a.has_duel_ops() || b.has_duel_ops(),
            With(_, a, b) => a.has_duel_ops() || b.has_duel_ops(),
            Call(_, args) => args.iter().any(|a| a.has_duel_ops()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spellings() {
        assert_eq!(BinOp::Shl.spelling(), "<<");
        assert_eq!(FilterOp::Ge.spelling(), ">=?");
        assert_eq!(FilterOp::Ne.as_cmp(), BinOp::Ne);
        assert_eq!(ReduceOp::Count.spelling(), "#/");
    }

    #[test]
    fn duel_op_detection() {
        let pure = Expr::Bin(
            BinOp::Add,
            Expr::Int(1).boxed(),
            Expr::Name("x".into()).boxed(),
        );
        assert!(!pure.has_duel_ops());
        let gen = Expr::Bin(
            BinOp::Add,
            Expr::Int(1).boxed(),
            Expr::To(Expr::Int(1).boxed(), Expr::Int(3).boxed()).boxed(),
        );
        assert!(gen.has_duel_ops());
        let idx = Expr::Index(
            Expr::Name("x".into()).boxed(),
            Expr::ToPrefix(Expr::Int(10).boxed()).boxed(),
        );
        assert!(idx.has_duel_ops());
    }
}
