//! The paper's LISP-like AST notation.
//!
//! The Semantics section specifies ASTs "by a simple LISP-like
//! notation, e.g., the AST for the expression `a*5 + *b` might be
//! `(plus (multiply (name "a") (constant 5)) (indirect (name "b")))`".
//! This module renders our ASTs in that exact notation — handy for
//! understanding how a query parses (the REPL's `.ast` command) and for
//! precise parser tests.

use std::fmt::Write as _;

use crate::ast::{BinOp, Expr, FilterOp, ReduceOp, UnOp, WithLink};

/// Renders `e` in the paper's notation.
pub fn to_sexpr(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e);
    out
}

fn head(out: &mut String, name: &str, kids: &[&Expr]) {
    out.push('(');
    out.push_str(name);
    for k in kids {
        out.push(' ');
        write_expr(out, k);
    }
    out.push(')');
}

fn bin_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "plus",
        BinOp::Sub => "minus",
        BinOp::Mul => "multiply",
        BinOp::Div => "divide",
        BinOp::Rem => "remainder",
        BinOp::Shl => "lshift",
        BinOp::Shr => "rshift",
        BinOp::Lt => "lt",
        BinOp::Le => "le",
        BinOp::Gt => "gt",
        BinOp::Ge => "ge",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::BitAnd => "bitand",
        BinOp::BitXor => "bitxor",
        BinOp::BitOr => "bitor",
    }
}

fn filter_name(op: FilterOp) -> &'static str {
    // The paper's names: ifgt, ifge, ifle, iflt, ifeq, ifne.
    match op {
        FilterOp::Gt => "ifgt",
        FilterOp::Ge => "ifge",
        FilterOp::Lt => "iflt",
        FilterOp::Le => "ifle",
        FilterOp::Eq => "ifeq",
        FilterOp::Ne => "ifne",
    }
}

fn write_expr(out: &mut String, e: &Expr) {
    use Expr::*;
    match e {
        Int(v) => {
            let _ = write!(out, "(constant {v})");
        }
        Float(v) => {
            let _ = write!(out, "(constant {v})");
        }
        Char(c) => {
            let _ = write!(out, "(constant '{}')", *c as char);
        }
        Str(s) => {
            let _ = write!(out, "(string {s:?})");
        }
        Name(n) => {
            let _ = write!(out, "(name {n:?})");
        }
        Underscore => out.push_str("(name \"_\")"),
        To(a, b) => head(out, "to", &[a, b]),
        ToPrefix(a) => head(out, "to-prefix", &[a]),
        ToInf(a) => head(out, "to-infinity", &[a]),
        Alt(a, b) => head(out, "alternate", &[a, b]),
        Unary(op, a) => {
            let name = match op {
                UnOp::Neg => "negate",
                UnOp::Pos => "identity",
                UnOp::Not => "not",
                UnOp::BitNot => "complement",
                UnOp::Deref => "indirect",
                UnOp::Addr => "address",
            };
            head(out, name, &[a]);
        }
        PreIncDec { inc, expr } => head(out, if *inc { "pre-inc" } else { "pre-dec" }, &[expr]),
        PostIncDec { inc, expr } => head(out, if *inc { "post-inc" } else { "post-dec" }, &[expr]),
        SizeofExpr(a) => head(out, "sizeof", &[a]),
        SizeofType(_) => out.push_str("(sizeof-type)"),
        Cast(_, a) => head(out, "cast", &[a]),
        Bin(op, a, b) => head(out, bin_name(*op), &[a, b]),
        AndAnd(a, b) => head(out, "andand", &[a, b]),
        OrOr(a, b) => head(out, "oror", &[a, b]),
        Cond(c, a, b) => head(out, "if", &[c, a, b]),
        Assign(None, a, b) => head(out, "assign", &[a, b]),
        Assign(Some(op), a, b) => {
            let name = format!("assign-{}", bin_name(*op));
            out.push('(');
            out.push_str(&name);
            out.push(' ');
            write_expr(out, a);
            out.push(' ');
            write_expr(out, b);
            out.push(')');
        }
        Filter(op, a, b) => head(out, filter_name(*op), &[a, b]),
        Index(a, b) => head(out, "index", &[a, b]),
        Select(a, b) => head(out, "select", &[a, b]),
        With(WithLink::Dot, a, b) => head(out, "with", &[a, b]),
        With(WithLink::Arrow, a, b) => head(out, "with-arrow", &[a, b]),
        Dfs(a, b) => head(out, "dfs", &[a, b]),
        Bfs(a, b) => head(out, "bfs", &[a, b]),
        Imply(a, b) => head(out, "imply", &[a, b]),
        Seq(a, b) => head(out, "sequence", &[a, b]),
        Discard(a) => head(out, "discard", &[a]),
        If(c, t, None) => head(out, "if", &[c, t]),
        If(c, t, Some(f)) => head(out, "if", &[c, t, f]),
        While(c, b) => head(out, "while", &[c, b]),
        For {
            init,
            cond,
            step,
            body,
        } => {
            out.push_str("(for");
            for part in [init, cond, step] {
                out.push(' ');
                match part {
                    Some(e) => write_expr(out, e),
                    None => out.push_str("()"),
                }
            }
            out.push(' ');
            write_expr(out, body);
            out.push(')');
        }
        Alias(name, a) => {
            let _ = write!(out, "(define {name:?} ");
            write_expr(out, a);
            out.push(')');
        }
        Decl { decls, .. } => {
            out.push_str("(declare");
            for d in decls {
                let _ = write!(out, " {:?}", d.name);
            }
            out.push(')');
        }
        Call(name, args) => {
            let _ = write!(out, "(call {name:?}");
            for a in args {
                out.push(' ');
                write_expr(out, a);
            }
            out.push(')');
        }
        Reduce(op, a) => {
            let name = match op {
                ReduceOp::Count => "count",
                ReduceOp::Sum => "sum",
                ReduceOp::All => "all",
                ReduceOp::Any => "any",
                ReduceOp::Max => "max",
                ReduceOp::Min => "min",
            };
            head(out, name, &[a]);
        }
        IndexAlias(a, name) => {
            let _ = write!(out, "(index-alias {name:?} ");
            write_expr(out, a);
            out.push(')');
        }
        Until(a, b) => head(out, "until", &[a, b]),
        Braced(a) => head(out, "substitute", &[a]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn sexpr(src: &str) -> String {
        to_sexpr(&parse(src, &mut |_| false).unwrap())
    }

    #[test]
    fn the_papers_own_example() {
        // "the AST for the expression a*5 + *b might be
        //  (plus (multiply (name "a") (constant 5))
        //        (indirect (name "b")))"
        assert_eq!(
            sexpr("a*5 + *b"),
            "(plus (multiply (name \"a\") (constant 5)) \
             (indirect (name \"b\")))"
        );
    }

    #[test]
    fn generators_and_filters() {
        assert_eq!(
            sexpr("(1..3)+(5,9)"),
            "(plus (to (constant 1) (constant 3)) \
             (alternate (constant 5) (constant 9)))"
        );
        assert_eq!(
            sexpr("x[..100] >? 0"),
            "(ifgt (index (name \"x\") (to-prefix (constant 100))) \
             (constant 0))"
        );
    }

    #[test]
    fn structure_walks() {
        assert_eq!(
            sexpr("head-->next"),
            "(dfs (name \"head\") (name \"next\"))"
        );
        assert_eq!(
            sexpr("root-->(left,right)"),
            "(dfs (name \"root\") \
             (alternate (name \"left\") (name \"right\")))"
        );
    }

    #[test]
    fn statements_and_aliases() {
        assert_eq!(
            sexpr("i := 1..3; i + 4"),
            "(sequence (define \"i\" (to (constant 1) (constant 3))) \
             (plus (name \"i\") (constant 4)))"
        );
        assert!(sexpr("int i; i").starts_with("(sequence (declare \"i\")"));
        assert_eq!(sexpr("#/x"), "(count (name \"x\"))");
    }
}
