//! The DUEL parser.
//!
//! A Pratt (precedence-climbing) parser replacing the paper's yacc
//! grammar. Precedence, loosest to tightest:
//!
//! | level | operators |
//! |---|---|
//! | 1 | `,` (alternation) |
//! | 2 | `;` (sequence) |
//! | 3 | `=>` (imply, right) |
//! | 4 | `=` `op=` `:=` (right) |
//! | 5 | `?:` (right) |
//! | 6–10 | `\|\|` `&&` `\|` `^` `&` |
//! | 11 | `==` `!=` `==?` `!=?` |
//! | 12 | `<` `<=` `>` `>=` `<?` `<=?` `>?` `>=?` |
//! | 13 | `<<` `>>` |
//! | 14 | `+` `-` |
//! | 15 | `*` `/` `%` |
//! | 16 | `..` (so `1..100+i` is `(1..100)+i`, matching the paper's
//!        account of its evaluation cost) |
//! | 17 | unary: `! ~ + - * & ++ -- sizeof (cast) ..e` and the
//!        reductions `#/ +/ &&/ \|\|/ >/ </` |
//! | 18 | postfix: `[] [[]] () . -> --> -->> ++ -- # @` |
//!
//! `if`, `while`, and `for` are *expressions* and may appear anywhere a
//! primary may; their bodies parse at the assignment level, so
//! `4 + if (i%3 == 0) {i}*5` groups as `4 + (if … ({i}*5))` as in the
//! paper's transcript.
//!
//! Because the parser cannot know the target's typedefs, it takes an
//! `is_typename` oracle; the session supplies one backed by the target.

use crate::{
    ast::{BaseType, BinOp, Declarator, Deriv, Expr, FilterOp, ReduceOp, TypeExpr, UnOp, WithLink},
    error::{DuelError, DuelResult},
    lexer::lex,
    token::{SpannedTok, Tok},
};

/// Precedence levels (binding powers).
mod prec {
    pub const COMMA: u8 = 1;
    pub const SEQ: u8 = 2;
    pub const IMPLY: u8 = 3;
    pub const ASSIGN: u8 = 4;
    pub const COND: u8 = 5;
    pub const OROR: u8 = 6;
    pub const ANDAND: u8 = 7;
    pub const BITOR: u8 = 8;
    pub const BITXOR: u8 = 9;
    pub const BITAND: u8 = 10;
    pub const EQ: u8 = 11;
    pub const REL: u8 = 12;
    pub const SHIFT: u8 = 13;
    pub const ADD: u8 = 14;
    pub const MUL: u8 = 15;
    pub const RANGE: u8 = 16;
}

const KEYWORDS: &[&str] = &[
    "if", "else", "for", "while", "sizeof", "struct", "union", "enum", "void", "char", "short",
    "int", "long", "float", "double", "unsigned", "signed",
];

const TYPE_KEYWORDS: &[&str] = &[
    "void", "char", "short", "int", "long", "float", "double", "unsigned", "signed", "struct",
    "union", "enum",
];

/// Parses a complete DUEL command into an expression.
///
/// `is_typename` reports whether an identifier names a typedef in the
/// target (needed to distinguish `(T)x` casts and `T x;` declarations
/// from parenthesized expressions).
pub fn parse(src: &str, is_typename: &mut dyn FnMut(&str) -> bool) -> DuelResult<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        is_typename,
        depth: 0,
    };
    let e = p.parse_expr(prec::COMMA)?;
    // A trailing `;` evaluates for side effects only.
    let e = if p.peek() == &Tok::Semi {
        p.bump();
        Expr::Discard(e.boxed())
    } else {
        e
    };
    p.expect_eof()?;
    Ok(e)
}

struct Parser<'a> {
    toks: Vec<SpannedTok>,
    pos: usize,
    is_typename: &'a mut dyn FnMut(&str) -> bool,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn offset(&self) -> usize {
        self.toks[self.pos.min(self.toks.len() - 1)].offset
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> DuelResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found {}",
                t.spelling(),
                self.peek().describe()
            )))
        }
    }

    fn expect_eof(&mut self) -> DuelResult<()> {
        if self.peek() == &Tok::Eof {
            Ok(())
        } else {
            Err(self.err(format!(
                "unexpected {} after expression",
                self.peek().describe()
            )))
        }
    }

    fn err(&self, message: String) -> DuelError {
        DuelError::Parse {
            offset: self.offset(),
            message,
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Does the current token start a type name?
    fn at_typename(&mut self) -> bool {
        let name = match self.peek() {
            Tok::Ident(s) => s.clone(),
            _ => return false,
        };
        TYPE_KEYWORDS.contains(&name.as_str()) || (self.is_typename)(&name)
    }

    // ----- expressions -------------------------------------------------

    fn parse_expr(&mut self, min_prec: u8) -> DuelResult<Expr> {
        // Guard against pathological nesting blowing the stack.
        self.depth += 1;
        if self.depth > 128 {
            self.depth -= 1;
            return Err(self.err("expression nests more than 128 levels deep".into()));
        }
        let r = self.parse_expr_inner(min_prec);
        self.depth -= 1;
        r
    }

    fn parse_expr_inner(&mut self, min_prec: u8) -> DuelResult<Expr> {
        let mut lhs = self.parse_unary()?;
        while let Some((op_prec, right_assoc)) = self.infix_prec() {
            if op_prec < min_prec {
                break;
            }
            lhs = self.parse_infix(lhs, op_prec, right_assoc)?;
        }
        Ok(lhs)
    }

    /// Returns `(precedence, right_assoc)` of the infix operator at the
    /// cursor, if any.
    fn infix_prec(&self) -> Option<(u8, bool)> {
        Some(match self.peek() {
            Tok::Comma => (prec::COMMA, false),
            Tok::Semi => (prec::SEQ, false),
            Tok::Imply => (prec::IMPLY, true),
            Tok::Assign
            | Tok::PlusAssign
            | Tok::MinusAssign
            | Tok::StarAssign
            | Tok::SlashAssign
            | Tok::PercentAssign
            | Tok::AmpAssign
            | Tok::PipeAssign
            | Tok::CaretAssign
            | Tok::ShlAssign
            | Tok::ShrAssign
            | Tok::ColonAssign => (prec::ASSIGN, true),
            Tok::Question => (prec::COND, true),
            Tok::PipePipe => (prec::OROR, false),
            Tok::AmpAmp => (prec::ANDAND, false),
            Tok::Pipe => (prec::BITOR, false),
            Tok::Caret => (prec::BITXOR, false),
            Tok::Amp => (prec::BITAND, false),
            Tok::EqEq | Tok::Ne | Tok::EqQ | Tok::NeQ => (prec::EQ, false),
            Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge | Tok::LtQ | Tok::LeQ | Tok::GtQ | Tok::GeQ => {
                (prec::REL, false)
            }
            Tok::Shl | Tok::Shr => (prec::SHIFT, false),
            Tok::Plus | Tok::Minus => (prec::ADD, false),
            Tok::Star | Tok::Slash | Tok::Percent => (prec::MUL, false),
            Tok::DotDot => (prec::RANGE, false),
            _ => return None,
        })
    }

    fn parse_infix(&mut self, lhs: Expr, op_prec: u8, right_assoc: bool) -> DuelResult<Expr> {
        let next_min = if right_assoc { op_prec } else { op_prec + 1 };
        let tok = self.bump();
        Ok(match tok {
            Tok::Comma => {
                let rhs = self.parse_expr(next_min)?;
                Expr::Alt(lhs.boxed(), rhs.boxed())
            }
            Tok::Semi => {
                // A trailing `;` (end of input or `)`/`}`) discards.
                if matches!(self.peek(), Tok::Eof | Tok::RParen | Tok::RBrace) {
                    Expr::Discard(lhs.boxed())
                } else {
                    let rhs = self.parse_expr(next_min)?;
                    Expr::Seq(lhs.boxed(), rhs.boxed())
                }
            }
            Tok::Imply => {
                let rhs = self.parse_expr(next_min)?;
                Expr::Imply(lhs.boxed(), rhs.boxed())
            }
            Tok::ColonAssign => {
                let name = match lhs {
                    Expr::Name(n) => n,
                    other => {
                        return Err(self.err(format!(
                            "`:=` needs a simple name on its left, found {other:?}"
                        )))
                    }
                };
                let rhs = self.parse_expr(next_min)?;
                Expr::Alias(name, rhs.boxed())
            }
            Tok::Assign => {
                let rhs = self.parse_expr(next_min)?;
                Expr::Assign(None, lhs.boxed(), rhs.boxed())
            }
            Tok::PlusAssign
            | Tok::MinusAssign
            | Tok::StarAssign
            | Tok::SlashAssign
            | Tok::PercentAssign
            | Tok::AmpAssign
            | Tok::PipeAssign
            | Tok::CaretAssign
            | Tok::ShlAssign
            | Tok::ShrAssign => {
                let op = match tok {
                    Tok::PlusAssign => BinOp::Add,
                    Tok::MinusAssign => BinOp::Sub,
                    Tok::StarAssign => BinOp::Mul,
                    Tok::SlashAssign => BinOp::Div,
                    Tok::PercentAssign => BinOp::Rem,
                    Tok::AmpAssign => BinOp::BitAnd,
                    Tok::PipeAssign => BinOp::BitOr,
                    Tok::CaretAssign => BinOp::BitXor,
                    Tok::ShlAssign => BinOp::Shl,
                    _ => BinOp::Shr,
                };
                let rhs = self.parse_expr(next_min)?;
                Expr::Assign(Some(op), lhs.boxed(), rhs.boxed())
            }
            Tok::Question => {
                let then = self.parse_expr(prec::ASSIGN)?;
                self.expect(&Tok::Colon)?;
                let els = self.parse_expr(prec::COND)?;
                Expr::Cond(lhs.boxed(), then.boxed(), els.boxed())
            }
            Tok::PipePipe => {
                let rhs = self.parse_expr(next_min)?;
                Expr::OrOr(lhs.boxed(), rhs.boxed())
            }
            Tok::AmpAmp => {
                let rhs = self.parse_expr(next_min)?;
                Expr::AndAnd(lhs.boxed(), rhs.boxed())
            }
            Tok::DotDot => {
                // `e..` — unbounded — when nothing that can start an
                // expression follows.
                if self.at_expr_end() {
                    Expr::ToInf(lhs.boxed())
                } else {
                    let rhs = self.parse_expr(next_min)?;
                    Expr::To(lhs.boxed(), rhs.boxed())
                }
            }
            Tok::GtQ | Tok::GeQ | Tok::LtQ | Tok::LeQ | Tok::EqQ | Tok::NeQ => {
                let op = match tok {
                    Tok::GtQ => FilterOp::Gt,
                    Tok::GeQ => FilterOp::Ge,
                    Tok::LtQ => FilterOp::Lt,
                    Tok::LeQ => FilterOp::Le,
                    Tok::EqQ => FilterOp::Eq,
                    _ => FilterOp::Ne,
                };
                let rhs = self.parse_expr(next_min)?;
                Expr::Filter(op, lhs.boxed(), rhs.boxed())
            }
            other => {
                let op = match other {
                    Tok::Pipe => BinOp::BitOr,
                    Tok::Caret => BinOp::BitXor,
                    Tok::Amp => BinOp::BitAnd,
                    Tok::EqEq => BinOp::Eq,
                    Tok::Ne => BinOp::Ne,
                    Tok::Lt => BinOp::Lt,
                    Tok::Le => BinOp::Le,
                    Tok::Gt => BinOp::Gt,
                    Tok::Ge => BinOp::Ge,
                    Tok::Shl => BinOp::Shl,
                    Tok::Shr => BinOp::Shr,
                    Tok::Plus => BinOp::Add,
                    Tok::Minus => BinOp::Sub,
                    Tok::Star => BinOp::Mul,
                    Tok::Slash => BinOp::Div,
                    Tok::Percent => BinOp::Rem,
                    _ => unreachable!("infix_prec admitted {other:?}"),
                };
                let rhs = self.parse_expr(next_min)?;
                Expr::Bin(op, lhs.boxed(), rhs.boxed())
            }
        })
    }

    /// Can the current token *not* start an expression (so a dangling
    /// `..` means "to infinity")?
    fn at_expr_end(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Eof
                | Tok::RParen
                | Tok::RBracket
                | Tok::RBrace
                | Tok::Comma
                | Tok::Semi
                | Tok::At
                | Tok::Colon
        )
    }

    fn parse_unary(&mut self) -> DuelResult<Expr> {
        // Reductions written as two tokens (`+/`, `&&/`, `||/`, `>/`,
        // `</`) — unambiguous in prefix position.
        if self.peek2() == &Tok::Slash {
            let op = match self.peek() {
                Tok::Plus => Some(ReduceOp::Sum),
                Tok::AmpAmp => Some(ReduceOp::All),
                Tok::PipePipe => Some(ReduceOp::Any),
                Tok::Gt => Some(ReduceOp::Max),
                Tok::Lt => Some(ReduceOp::Min),
                _ => None,
            };
            if let Some(op) = op {
                self.bump();
                self.bump();
                let e = self.parse_unary()?;
                return Ok(Expr::Reduce(op, e.boxed()));
            }
        }
        let e = match self.peek().clone() {
            Tok::HashSlash => {
                self.bump();
                let e = self.parse_unary()?;
                Expr::Reduce(ReduceOp::Count, e.boxed())
            }
            Tok::DotDot => {
                self.bump();
                let e = self.parse_unary()?;
                Expr::ToPrefix(e.boxed())
            }
            Tok::Minus => {
                self.bump();
                Expr::Unary(UnOp::Neg, self.parse_unary()?.boxed())
            }
            Tok::Plus => {
                self.bump();
                Expr::Unary(UnOp::Pos, self.parse_unary()?.boxed())
            }
            Tok::Bang => {
                self.bump();
                Expr::Unary(UnOp::Not, self.parse_unary()?.boxed())
            }
            Tok::Tilde => {
                self.bump();
                Expr::Unary(UnOp::BitNot, self.parse_unary()?.boxed())
            }
            Tok::Star => {
                self.bump();
                Expr::Unary(UnOp::Deref, self.parse_unary()?.boxed())
            }
            Tok::Amp => {
                self.bump();
                Expr::Unary(UnOp::Addr, self.parse_unary()?.boxed())
            }
            Tok::PlusPlus => {
                self.bump();
                Expr::PreIncDec {
                    inc: true,
                    expr: self.parse_unary()?.boxed(),
                }
            }
            Tok::MinusMinus => {
                self.bump();
                Expr::PreIncDec {
                    inc: false,
                    expr: self.parse_unary()?.boxed(),
                }
            }
            Tok::Ident(kw) if kw == "sizeof" => {
                self.bump();
                if self.peek() == &Tok::LParen && self.typename_after_lparen() {
                    self.bump();
                    let ty = self.parse_typename()?;
                    self.expect(&Tok::RParen)?;
                    Expr::SizeofType(ty)
                } else {
                    Expr::SizeofExpr(self.parse_unary()?.boxed())
                }
            }
            Tok::LParen if self.typename_after_lparen() => {
                self.bump();
                let ty = self.parse_typename()?;
                self.expect(&Tok::RParen)?;
                let e = self.parse_unary()?;
                Expr::Cast(ty, e.boxed())
            }
            _ => self.parse_primary()?,
        };
        self.parse_postfix(e)
    }

    /// Looks ahead: is `(` followed by a type name (a cast or
    /// `sizeof(type)`)?
    fn typename_after_lparen(&mut self) -> bool {
        debug_assert_eq!(self.peek(), &Tok::LParen);
        let name = match self.peek2() {
            Tok::Ident(s) => s.clone(),
            _ => return false,
        };
        TYPE_KEYWORDS.contains(&name.as_str()) || (self.is_typename)(&name)
    }

    fn parse_primary(&mut self) -> DuelResult<Expr> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            Tok::Char(c) => {
                self.bump();
                Ok(Expr::Char(c))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr(prec::COMMA)?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBrace => {
                self.bump();
                let e = self.parse_expr(prec::COMMA)?;
                self.expect(&Tok::RBrace)?;
                Ok(Expr::Braced(e.boxed()))
            }
            Tok::Ident(name) => {
                if name == "if" {
                    return self.parse_if();
                }
                if name == "while" {
                    return self.parse_while();
                }
                if name == "for" {
                    return self.parse_for();
                }
                if self.at_typename() {
                    return self.parse_decl();
                }
                if KEYWORDS.contains(&name.as_str()) {
                    return Err(self.err(format!("`{name}` cannot start an expression here")));
                }
                self.bump();
                if name == "_" {
                    Ok(Expr::Underscore)
                } else if self.peek() == &Tok::LParen {
                    // A call.
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            // Arguments parse above `,` so that commas
                            // separate arguments, as in C; alternation
                            // in an argument needs parentheses, as in
                            // the paper's `printf("…", (3,4), 5..7)`.
                            args.push(self.parse_expr(prec::SEQ)?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Name(name))
                }
            }
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }

    fn parse_if(&mut self) -> DuelResult<Expr> {
        self.bump(); // `if`
        self.expect(&Tok::LParen)?;
        let cond = self.parse_expr(prec::COMMA)?;
        self.expect(&Tok::RParen)?;
        let then = self.parse_expr(prec::ASSIGN)?;
        let els = if self.eat_kw("else") {
            Some(self.parse_expr(prec::ASSIGN)?.boxed())
        } else {
            None
        };
        Ok(Expr::If(cond.boxed(), then.boxed(), els))
    }

    fn parse_while(&mut self) -> DuelResult<Expr> {
        self.bump(); // `while`
        self.expect(&Tok::LParen)?;
        let cond = self.parse_expr(prec::COMMA)?;
        self.expect(&Tok::RParen)?;
        let body = self.parse_expr(prec::ASSIGN)?;
        Ok(Expr::While(cond.boxed(), body.boxed()))
    }

    fn parse_for(&mut self) -> DuelResult<Expr> {
        self.bump(); // `for`
        self.expect(&Tok::LParen)?;
        let init = if self.peek() == &Tok::Semi {
            None
        } else {
            Some(self.parse_expr(prec::IMPLY)?.boxed())
        };
        self.expect(&Tok::Semi)?;
        let cond = if self.peek() == &Tok::Semi {
            None
        } else {
            Some(self.parse_expr(prec::IMPLY)?.boxed())
        };
        self.expect(&Tok::Semi)?;
        let step = if self.peek() == &Tok::RParen {
            None
        } else {
            Some(self.parse_expr(prec::IMPLY)?.boxed())
        };
        self.expect(&Tok::RParen)?;
        let body = self.parse_expr(prec::ASSIGN)?;
        Ok(Expr::For {
            init,
            cond,
            step,
            body: body.boxed(),
        })
    }

    // ----- postfix ------------------------------------------------------

    fn parse_postfix(&mut self, mut e: Expr) -> DuelResult<Expr> {
        loop {
            e = match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    if self.eat(&Tok::LBracket) {
                        // `e[[sel]]`.
                        let sel = self.parse_expr(prec::COMMA)?;
                        self.expect(&Tok::RBracket)?;
                        self.expect(&Tok::RBracket)?;
                        Expr::Select(e.boxed(), sel.boxed())
                    } else {
                        let idx = self.parse_expr(prec::COMMA)?;
                        self.expect(&Tok::RBracket)?;
                        Expr::Index(e.boxed(), idx.boxed())
                    }
                }
                Tok::Dot => {
                    self.bump();
                    let rhs = self.parse_with_operand()?;
                    Expr::With(WithLink::Dot, e.boxed(), rhs.boxed())
                }
                Tok::Arrow => {
                    self.bump();
                    let rhs = self.parse_with_operand()?;
                    Expr::With(WithLink::Arrow, e.boxed(), rhs.boxed())
                }
                Tok::DashDashGt => {
                    self.bump();
                    let rhs = self.parse_with_operand()?;
                    Expr::Dfs(e.boxed(), rhs.boxed())
                }
                Tok::DashDashGtGt => {
                    self.bump();
                    let rhs = self.parse_with_operand()?;
                    Expr::Bfs(e.boxed(), rhs.boxed())
                }
                Tok::PlusPlus => {
                    self.bump();
                    Expr::PostIncDec {
                        inc: true,
                        expr: e.boxed(),
                    }
                }
                Tok::MinusMinus => {
                    self.bump();
                    Expr::PostIncDec {
                        inc: false,
                        expr: e.boxed(),
                    }
                }
                Tok::Hash => {
                    self.bump();
                    let name = match self.bump() {
                        Tok::Ident(n) => n,
                        other => {
                            return Err(self.err(format!(
                                "`#` needs an alias name, found {}",
                                other.describe()
                            )))
                        }
                    };
                    Expr::IndexAlias(e.boxed(), name)
                }
                Tok::At => {
                    self.bump();
                    let stop = self.parse_until_operand()?;
                    Expr::Until(e.boxed(), stop.boxed())
                }
                _ => return Ok(e),
            };
        }
    }

    /// The right operand of `.`/`->`/`-->`: a field name, a
    /// parenthesized expression, an `if` expression, `{e}`, or `_`.
    fn parse_with_operand(&mut self) -> DuelResult<Expr> {
        match self.peek().clone() {
            Tok::Ident(name) if name == "if" => self.parse_if(),
            Tok::Ident(name) => {
                self.bump();
                if name == "_" {
                    Ok(Expr::Underscore)
                } else {
                    Ok(Expr::Name(name))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr(prec::COMMA)?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBrace => {
                self.bump();
                let e = self.parse_expr(prec::COMMA)?;
                self.expect(&Tok::RBrace)?;
                Ok(Expr::Braced(e.boxed()))
            }
            other => Err(self.err(format!(
                "expected a field name or parenthesized expression \
                 after `.`/`->`/`-->`, found {}",
                other.describe()
            ))),
        }
    }

    /// The operand of `@`: a literal, a name, `_`, or a parenthesized
    /// expression.
    fn parse_until_operand(&mut self) -> DuelResult<Expr> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Char(c) => {
                self.bump();
                Ok(Expr::Char(c))
            }
            Tok::Ident(n) => {
                self.bump();
                if n == "_" {
                    Ok(Expr::Underscore)
                } else {
                    Ok(Expr::Name(n))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr(prec::COMMA)?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!(
                "expected a literal or parenthesized condition after \
                 `@`, found {}",
                other.describe()
            ))),
        }
    }

    // ----- types and declarations ---------------------------------------

    /// Parses a type name: base + abstract derivations (`int *[4]`).
    fn parse_typename(&mut self) -> DuelResult<TypeExpr> {
        let base = self.parse_base_type()?;
        let mut derivs = Vec::new();
        while self.eat(&Tok::Star) {
            derivs.push(Deriv::Ptr);
        }
        while self.peek() == &Tok::LBracket {
            self.bump();
            let len = match self.peek() {
                Tok::Int(v) => {
                    let v = *v;
                    self.bump();
                    Some(v as u64)
                }
                _ => None,
            };
            self.expect(&Tok::RBracket)?;
            derivs.push(Deriv::Array(len));
        }
        Ok(TypeExpr { base, derivs })
    }

    fn parse_base_type(&mut self) -> DuelResult<BaseType> {
        use duel_ctype::Prim;
        if self.eat_kw("void") {
            return Ok(BaseType::Void);
        }
        if self.eat_kw("struct") {
            return Ok(BaseType::Struct(self.tag_name("struct")?));
        }
        if self.eat_kw("union") {
            return Ok(BaseType::Union(self.tag_name("union")?));
        }
        if self.eat_kw("enum") {
            return Ok(BaseType::Enum(self.tag_name("enum")?));
        }
        if self.eat_kw("float") {
            return Ok(BaseType::Prim(Prim::Float));
        }
        if self.eat_kw("double") {
            return Ok(BaseType::Prim(Prim::Double));
        }
        // Integer keyword soup: [signed|unsigned] [char|short|int|long
        // [long]] in any reasonable order.
        let mut signed: Option<bool> = None;
        let mut longs = 0u8;
        let mut base: Option<&str> = None;
        let mut progressed = true;
        while progressed {
            progressed = false;
            if self.eat_kw("signed") {
                signed = Some(true);
                progressed = true;
            } else if self.eat_kw("unsigned") {
                signed = Some(false);
                progressed = true;
            } else if self.eat_kw("long") {
                longs += 1;
                progressed = true;
            } else if self.eat_kw("short") {
                base = Some("short");
                progressed = true;
            } else if self.eat_kw("char") {
                base = Some("char");
                progressed = true;
            } else if self.eat_kw("int") {
                if base.is_none() {
                    base = Some("int");
                }
                progressed = true;
            } else if self.eat_kw("float") {
                base = Some("float");
                progressed = true;
            } else if self.eat_kw("double") {
                base = Some("double");
                progressed = true;
            }
        }
        if signed.is_none() && longs == 0 && base.is_none() {
            // A typedef name.
            if let Tok::Ident(name) = self.peek().clone() {
                if (self.is_typename)(&name) {
                    self.bump();
                    return Ok(BaseType::Typedef(name));
                }
            }
            return Err(self.err(format!(
                "expected a type name, found {}",
                self.peek().describe()
            )));
        }
        let unsigned = signed == Some(false);
        let prim = match (base, longs) {
            (Some("char"), _) => {
                if unsigned {
                    Prim::UChar
                } else if signed == Some(true) {
                    Prim::SChar
                } else {
                    Prim::Char
                }
            }
            (Some("short"), _) => {
                if unsigned {
                    Prim::UShort
                } else {
                    Prim::Short
                }
            }
            (Some("double"), _) => Prim::Double,
            (Some("float"), _) => Prim::Float,
            (_, 0) => {
                if unsigned {
                    Prim::UInt
                } else {
                    Prim::Int
                }
            }
            (_, 1) => {
                if unsigned {
                    Prim::ULong
                } else {
                    Prim::Long
                }
            }
            _ => {
                if unsigned {
                    Prim::ULongLong
                } else {
                    Prim::LongLong
                }
            }
        };
        Ok(BaseType::Prim(prim))
    }

    fn tag_name(&mut self, kind: &str) -> DuelResult<String> {
        match self.bump() {
            Tok::Ident(n) if !KEYWORDS.contains(&n.as_str()) => Ok(n),
            other => Err(self.err(format!(
                "expected a tag after `{kind}`, found {}",
                other.describe()
            ))),
        }
    }

    /// Parses a DUEL declaration: `base declarator (, declarator)*`.
    /// The caller has checked that the cursor is at a type name.
    fn parse_decl(&mut self) -> DuelResult<Expr> {
        let base = TypeExpr {
            base: self.parse_base_type()?,
            derivs: Vec::new(),
        };
        let mut decls = Vec::new();
        loop {
            let mut derivs = Vec::new();
            while self.eat(&Tok::Star) {
                derivs.push(Deriv::Ptr);
            }
            let name = match self.bump() {
                Tok::Ident(n) if !KEYWORDS.contains(&n.as_str()) => n,
                other => {
                    return Err(self.err(format!(
                        "expected a declarator name, found {}",
                        other.describe()
                    )))
                }
            };
            while self.peek() == &Tok::LBracket {
                self.bump();
                let len = match self.peek() {
                    Tok::Int(v) => {
                        let v = *v;
                        self.bump();
                        Some(v as u64)
                    }
                    _ => None,
                };
                self.expect(&Tok::RBracket)?;
                derivs.push(Deriv::Array(len));
            }
            decls.push(Declarator { name, derivs });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(Expr::Decl { base, decls })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr::*;

    fn p(src: &str) -> Expr {
        parse(src, &mut |_| false).unwrap()
    }

    fn perr(src: &str) -> DuelError {
        parse(src, &mut |_| false).unwrap_err()
    }

    #[test]
    fn literals_and_names() {
        assert_eq!(p("42"), Int(42));
        assert_eq!(p("x"), Name("x".into()));
        assert_eq!(p("_"), Underscore);
        assert_eq!(p("'a'"), Char(b'a'));
    }

    #[test]
    fn range_binds_tighter_than_add() {
        // The paper's `1..100+i` must be `(1..100)+i`.
        let e = p("1..100+i");
        assert_eq!(
            e,
            Bin(
                crate::ast::BinOp::Add,
                To(Int(1).boxed(), Int(100).boxed()).boxed(),
                Name("i".into()).boxed()
            )
        );
    }

    #[test]
    fn alternation_is_loosest() {
        // `x[1..4,8,12..50]` — commas separate alternatives inside the
        // index.
        let e = p("x[1..4,8]");
        match e {
            Index(_, idx) => match *idx {
                Alt(a, b) => {
                    assert_eq!(*a, To(Int(1).boxed(), Int(4).boxed()));
                    assert_eq!(*b, Int(8));
                }
                other => panic!("expected Alt, got {other:?}"),
            },
            other => panic!("expected Index, got {other:?}"),
        }
    }

    #[test]
    fn filters_chain_left() {
        // `x >? 5 <? 10` is `(x >? 5) <? 10`.
        let e = p("x >? 5 <? 10");
        match e {
            Filter(crate::ast::FilterOp::Lt, lhs, _) => {
                assert!(matches!(*lhs, Filter(crate::ast::FilterOp::Gt, _, _)));
            }
            other => panic!("expected Filter, got {other:?}"),
        }
    }

    #[test]
    fn prefix_and_postfix_ranges() {
        assert_eq!(p("..5"), ToPrefix(Int(5).boxed()));
        match p("x[..1024]") {
            Index(_, idx) => {
                assert_eq!(*idx, ToPrefix(Int(1024).boxed()))
            }
            other => panic!("{other:?}"),
        }
        match p("argv[0..]") {
            Index(_, idx) => assert_eq!(*idx, ToInf(Int(0).boxed())),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn with_and_dfs_chains() {
        // `hash[0]-->next->scope`.
        let e = p("hash[0]-->next->scope");
        match e {
            With(crate::ast::WithLink::Arrow, base, field) => {
                assert_eq!(*field, Name("scope".into()));
                assert!(matches!(*base, Dfs(_, _)));
            }
            other => panic!("{other:?}"),
        }
        // `root-->(left,right)->key`.
        let e = p("root-->(left,right)->key");
        match e {
            With(_, base, _) => match *base {
                Dfs(_, op) => assert!(matches!(*op, Alt(_, _))),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bfs_operator() {
        assert!(matches!(p("root-->>(left,right)"), Bfs(_, _)));
    }

    #[test]
    fn select_vs_nested_index() {
        assert!(matches!(p("x[[52,74]]"), Select(_, _)));
        // Two adjacent `]` must close two indexes.
        let e = p("x[y[0]]");
        match e {
            Index(_, idx) => assert!(matches!(*idx, Index(_, _))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn alias_imply_chain() {
        // `x:= hash !=? 0 => y:= x => y = 0` associates as
        // alias => (alias => assign).
        let e = p("x:= h !=? 0 => y:= x => y = 0");
        match e {
            Imply(lhs, rhs) => {
                assert!(matches!(*lhs, Alias(_, _)));
                assert!(matches!(*rhs, Imply(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_as_operand_of_plus() {
        // `4 + if (i%3==0) i*5` — if binds as the operand of `+` and its
        // body includes `i*5`.
        let e = p("4 + if (i%3 == 0) i*5");
        match e {
            Bin(crate::ast::BinOp::Add, _, rhs) => match *rhs {
                If(_, body, None) => {
                    assert!(matches!(*body, Bin(crate::ast::BinOp::Mul, _, _)))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_else_chain_in_with() {
        let e = p("root-->(if (key > 5) left else if (key < 5) right)->key");
        match e {
            With(_, base, _) => match *base {
                Dfs(_, op) => {
                    assert!(matches!(*op, If(_, _, Some(_))))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_loop_with_decl_prefix() {
        let e = p("int i; for (i = 0; i < 1024; i++) hash[i]");
        match e {
            Seq(decl, f) => {
                assert!(matches!(*decl, Decl { .. }));
                assert!(matches!(*f, For { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_semicolon_discards() {
        assert!(matches!(p("x = 0 ;"), Discard(_)));
        assert!(matches!(p("x = 0"), Assign(None, _, _)));
    }

    #[test]
    fn casts_and_sizeof() {
        let e = p("1 + (double)3/2");
        // Must parse the cast, not a parenthesized name.
        match e {
            Bin(crate::ast::BinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Bin(crate::ast::BinOp::Div, _, _)));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(p("sizeof(int)"), SizeofType(_)));
        assert!(matches!(p("sizeof x"), SizeofExpr(_)));
        assert!(matches!(p("sizeof(x)"), SizeofExpr(_)));
        assert!(matches!(p("(struct s *)p"), Cast(_, _)));
    }

    #[test]
    fn calls_take_comma_separated_args() {
        let e = p("printf(\"%d %d, \", (3,4), 5..7)");
        match e {
            Call(name, args) => {
                assert_eq!(name, "printf");
                assert_eq!(args.len(), 3);
                assert!(matches!(args[1], Alt(_, _)));
                assert!(matches!(args[2], To(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reductions() {
        assert!(matches!(
            p("#/(root-->(left,right)->key)"),
            Reduce(crate::ast::ReduceOp::Count, _)
        ));
        assert!(matches!(
            p("+/x[..10]"),
            Reduce(crate::ast::ReduceOp::Sum, _)
        ));
        assert!(matches!(
            p("&&/x[..10]"),
            Reduce(crate::ast::ReduceOp::All, _)
        ));
    }

    #[test]
    fn index_alias_and_until() {
        let e = p("L-->next#i->value");
        match e {
            With(_, base, _) => {
                assert!(matches!(*base, IndexAlias(_, _)))
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(p("argv[0..]@0"), Until(_, _)));
        assert!(matches!(p("s[0..999]@(_=='\\0')"), Until(_, _)));
    }

    #[test]
    fn braced_display_override() {
        assert!(matches!(p("{i}*5"), Bin(_, _, _)));
        match p("{i}*5") {
            Bin(_, lhs, _) => assert!(matches!(*lhs, Braced(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn declaration_forms() {
        match p("int i, *p, a[10]") {
            Decl { decls, .. } => {
                assert_eq!(decls.len(), 3);
                assert_eq!(decls[0].name, "i");
                assert_eq!(decls[1].derivs, vec![Deriv::Ptr]);
                assert_eq!(decls[2].derivs, vec![Deriv::Array(Some(10))]);
            }
            other => panic!("{other:?}"),
        }
        match p("unsigned long x") {
            Decl { base, .. } => {
                assert_eq!(base.base, BaseType::Prim(duel_ctype::Prim::ULong))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn typedef_oracle_enables_casts() {
        let mut is_ty = |s: &str| s == "List";
        let e = parse("(List *)p", &mut is_ty).unwrap();
        assert!(matches!(e, Cast(_, _)));
        // Without the oracle it is a parenthesized product.
        let e = parse("(List)*p", &mut |_| false).unwrap();
        assert!(matches!(e, Bin(crate::ast::BinOp::Mul, _, _)));
    }

    #[test]
    fn errors_have_positions() {
        match perr("1 +") {
            DuelError::Parse { offset, .. } => assert_eq!(offset, 3),
            other => panic!("{other:?}"),
        }
        assert!(parse("x[", &mut |_| false).is_err());
        assert!(parse("if (x)", &mut |_| false).is_err());
        assert!(parse("3 := x", &mut |_| false).is_err());
        assert!(parse("x->", &mut |_| false).is_err());
    }

    #[test]
    fn conditional_operator() {
        let e = p("a ? b : c ? d : e");
        match e {
            Cond(_, _, els) => assert!(matches!(*els, Cond(_, _, _))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn assignment_right_assoc() {
        let e = p("a = b = c");
        match e {
            Assign(None, _, rhs) => {
                assert!(matches!(*rhs, Assign(None, _, _)))
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(p("a += 1"), Assign(Some(_), _, _)));
    }

    #[test]
    fn underscore_in_with() {
        let e = p("x[..10].if (_ < 0 || _ > 100) _");
        match e {
            With(crate::ast::WithLink::Dot, _, rhs) => {
                assert!(matches!(*rhs, If(_, _, None)))
            }
            other => panic!("{other:?}"),
        }
    }
}
