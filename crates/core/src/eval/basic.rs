//! Scalar generators: constants, names, ranges, alternation, and the
//! generator-lifted C operators.

use duel_ctype::Prim;

use crate::{
    apply,
    ast::{BinOp, FilterOp, UnOp},
    error::{DuelError, DuelResult},
    scope::Ctx,
    sym::Sym,
    value::{Scalar, Value},
};

use super::{Gen, GenT};

// ----- constants --------------------------------------------------------

struct ConstGen {
    make: fn(&mut Ctx<'_>, i64, f64) -> Value,
    i: i64,
    f: f64,
    done: bool,
}

impl GenT for ConstGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        ctx.tick()?;
        if self.done {
            self.done = false;
            return Ok(None);
        }
        self.done = true;
        Ok(Some((self.make)(ctx, self.i, self.f)))
    }

    fn reset(&mut self) {
        self.done = false;
    }
}

/// An integer literal.
pub fn constant_int(v: i64) -> Gen {
    Box::new(ConstGen {
        make: |ctx, i, _| {
            let ty = ctx.target.types_mut().prim(Prim::Int);
            Value::rval(ty, Scalar::Int(i), ctx.sym_leaf(i.to_string()))
        },
        i: v,
        f: 0.0,
        done: false,
    })
}

/// A floating literal.
pub fn constant_float(v: f64) -> Gen {
    Box::new(ConstGen {
        make: |ctx, _, f| {
            let ty = ctx.target.types_mut().prim(Prim::Double);
            // Keep the symbolic value a *float* literal (`4.0`, not
            // `4`), so it stays a legal DUEL expression of the same
            // type.
            let mut text = format!("{f}");
            if !text.contains('.') && !text.contains('e') {
                text.push_str(".0");
            }
            Value::rval(ty, Scalar::Float(f), ctx.sym_leaf(text))
        },
        i: 0,
        f: v,
        done: false,
    })
}

/// A character literal.
pub fn constant_char(c: u8) -> Gen {
    Box::new(ConstGen {
        make: |ctx, i, _| {
            let ty = ctx.target.types_mut().prim(Prim::Char);
            let printable = i as u8;
            let text = match printable {
                0 => "'\\0'".to_string(),
                b'\n' => "'\\n'".to_string(),
                b'\t' => "'\\t'".to_string(),
                c if c.is_ascii_graphic() || c == b' ' => {
                    format!("'{}'", c as char)
                }
                c => format!("'\\x{c:02x}'"),
            };
            Value::rval(ty, Scalar::Int(i), ctx.sym_leaf(text))
        },
        i: c as i64,
        f: 0.0,
        done: false,
    })
}

// ----- names ------------------------------------------------------------

struct NameGen {
    name: String,
    done: bool,
}

impl GenT for NameGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        ctx.tick()?;
        if self.done {
            self.done = false;
            return Ok(None);
        }
        self.done = true;
        ctx.fetch(&self.name).map(Some)
    }

    fn reset(&mut self) {
        self.done = false;
    }
}

/// A name (variable, alias, with-scope field, enumerator, or `_`).
pub fn name(n: String) -> Gen {
    Box::new(NameGen {
        name: n,
        done: false,
    })
}

// ----- ranges -----------------------------------------------------------

/// The integer value of a (single) operand value.
pub(crate) fn int_of(ctx: &mut Ctx<'_>, v: &Value) -> DuelResult<i64> {
    match apply::load(ctx.target, v)? {
        Scalar::Int(i) => Ok(i),
        Scalar::Ptr(p) => Ok(p as i64),
        Scalar::Float(_) => Err(DuelError::Type {
            sym: v.sym.render(ctx.opts.compress_threshold),
            message: "an integer is required here".into(),
        }),
    }
}

fn int_value(ctx: &mut Ctx<'_>, i: i64) -> Value {
    let ty = ctx.target.types_mut().prim(Prim::Int);
    // Generator substitution: the symbolic value of `a..b` is "the
    // current iteration value" (paper, *Implementation*).
    let sym = if ctx.eager_sym() {
        Sym::int(i)
    } else {
        Sym::None
    };
    Value::rval(ty, Scalar::Int(i), sym)
}

/// `e1..e2` — the paper's `to`:
///
/// ```text
/// case TO:
///   while (u = eval(n->kids[0]))
///     while (v = eval(n->kids[1]))
///       for (i = u; i <= v; i++)
///         yield i
/// ```
struct ToGen {
    l: Gen,
    r: Gen,
    lo: Option<i64>,
    hi: Option<i64>,
    i: i64,
}

impl GenT for ToGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        ctx.tick()?;
        loop {
            if self.lo.is_none() {
                match self.l.next(ctx)? {
                    Some(u) => {
                        self.lo = Some(int_of(ctx, &u)?);
                    }
                    None => return Ok(None),
                }
            }
            if self.hi.is_none() {
                match self.r.next(ctx)? {
                    Some(v) => {
                        self.hi = Some(int_of(ctx, &v)?);
                        self.i = self.lo.unwrap();
                    }
                    None => {
                        self.lo = None;
                        continue;
                    }
                }
            }
            if self.i <= self.hi.unwrap() {
                let i = self.i;
                self.i += 1;
                return Ok(Some(int_value(ctx, i)));
            }
            self.hi = None;
        }
    }

    fn reset(&mut self) {
        self.l.reset();
        self.r.reset();
        self.lo = None;
        self.hi = None;
    }
}

/// `e1..e2`.
pub fn to(l: Gen, r: Gen) -> Gen {
    Box::new(ToGen {
        l,
        r,
        lo: None,
        hi: None,
        i: 0,
    })
}

/// `..e` — shorthand for `0..e-1`.
struct ToPrefixGen {
    e: Gen,
    hi: Option<i64>,
    i: i64,
}

impl GenT for ToPrefixGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        ctx.tick()?;
        loop {
            if self.hi.is_none() {
                match self.e.next(ctx)? {
                    Some(u) => {
                        self.hi = Some(int_of(ctx, &u)? - 1);
                        self.i = 0;
                    }
                    None => return Ok(None),
                }
            }
            if self.i <= self.hi.unwrap() {
                let i = self.i;
                self.i += 1;
                return Ok(Some(int_value(ctx, i)));
            }
            self.hi = None;
        }
    }

    fn reset(&mut self) {
        self.e.reset();
        self.hi = None;
    }
}

/// `..e`.
pub fn to_prefix(e: Gen) -> Gen {
    Box::new(ToPrefixGen { e, hi: None, i: 0 })
}

/// `e..` — "an essentially infinite sequence of integers beginning at
/// e" (bounded in practice by `@`, filters, or the value limit).
struct ToInfGen {
    e: Gen,
    cur: Option<i64>,
}

impl GenT for ToInfGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        ctx.tick()?;
        if self.cur.is_none() {
            match self.e.next(ctx)? {
                Some(u) => self.cur = Some(int_of(ctx, &u)?),
                None => return Ok(None),
            }
        }
        let i = self.cur.unwrap();
        self.cur = Some(i + 1);
        Ok(Some(int_value(ctx, i)))
    }

    fn reset(&mut self) {
        self.e.reset();
        self.cur = None;
    }
}

/// `e..`.
pub fn to_inf(e: Gen) -> Gen {
    Box::new(ToInfGen { e, cur: None })
}

// ----- alternation ------------------------------------------------------

/// `e1,e2` — the paper's `alternate`:
///
/// ```text
/// case ALTERNATE:
///   while (u = eval(n->kids[0])) yield u
///   while (v = eval(n->kids[1])) yield v
/// ```
struct AltGen {
    l: Gen,
    r: Gen,
    in_right: bool,
}

impl GenT for AltGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        if !self.in_right {
            if let Some(u) = self.l.next(ctx)? {
                return Ok(Some(u));
            }
            self.in_right = true;
        }
        match self.r.next(ctx)? {
            Some(v) => Ok(Some(v)),
            None => {
                self.in_right = false;
                Ok(None)
            }
        }
    }

    fn reset(&mut self) {
        self.l.reset();
        self.r.reset();
        self.in_right = false;
    }
}

/// `e1,e2`.
pub fn alternate(l: Gen, r: Gen) -> Gen {
    Box::new(AltGen {
        l,
        r,
        in_right: false,
    })
}

// ----- lifted C operators -----------------------------------------------

/// Unary operators stream their operand:
///
/// ```text
/// case NEGATE, INDIRECT, ...:
///   while (u = eval(n->kids[0])) yield apply(n->op, u)
/// ```
struct UnaryGen {
    op: UnOp,
    e: Gen,
}

impl GenT for UnaryGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        match self.e.next(ctx)? {
            Some(u) => {
                let eager = ctx.eager_sym();
                apply::unary(ctx.target, self.op, &u, eager).map(Some)
            }
            None => Ok(None),
        }
    }

    fn reset(&mut self) {
        self.e.reset();
    }
}

/// A unary C operator.
pub fn unary(op: UnOp, e: Gen) -> Gen {
    Box::new(UnaryGen { op, e })
}

/// Binary operators produce all combinations:
///
/// ```text
/// case PLUS, MINUS, ...:
///   bin0: n->value = eval(n->kids[0]); if NOVALUE return NOVALUE
///   bin1: u = eval(n->kids[1]); if NOVALUE goto bin0
///         return apply(n->op, n->value, u)
/// ```
struct BinGen {
    op: BinOp,
    l: Gen,
    r: Gen,
    cur: Option<Value>,
}

impl GenT for BinGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            if self.cur.is_none() {
                match self.l.next(ctx)? {
                    Some(u) => self.cur = Some(u),
                    None => return Ok(None),
                }
            }
            match self.r.next(ctx)? {
                Some(v) => {
                    let eager = ctx.eager_sym();
                    let l = self.cur.as_ref().unwrap();
                    return apply::binary(ctx.target, self.op, l, &v, eager).map(Some);
                }
                None => self.cur = None,
            }
        }
    }

    fn reset(&mut self) {
        self.l.reset();
        self.r.reset();
        self.cur = None;
    }
}

/// A binary C operator.
pub fn binary(op: BinOp, l: Gen, r: Gen) -> Gen {
    Box::new(BinGen {
        op,
        l,
        r,
        cur: None,
    })
}

/// Filter comparisons yield their left operand when the comparison
/// holds:
///
/// ```text
/// case IFGT, IFGE, IFLE, IFLT, IFEQ, IFNE:
///   while (u = eval(n->kids[0]))
///     while (v = eval(n->kids[1]))
///       if (w = apply(n->op, u, v)) yield w
/// ```
struct FilterGen {
    op: FilterOp,
    l: Gen,
    r: Gen,
    cur: Option<Value>,
}

impl GenT for FilterGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            if self.cur.is_none() {
                match self.l.next(ctx)? {
                    Some(u) => self.cur = Some(u),
                    None => return Ok(None),
                }
            }
            match self.r.next(ctx)? {
                Some(v) => {
                    let l = self.cur.as_ref().unwrap();
                    let cmp = apply::binary(ctx.target, self.op.as_cmp(), l, &v, false)?;
                    if apply::truthy(ctx.target, &cmp)? {
                        // The filter yields the *left* operand, with its
                        // own symbolic value. Cloned only on a hit; a
                        // failed comparison costs no allocation.
                        return Ok(Some(self.cur.clone().unwrap()));
                    }
                }
                None => self.cur = None,
            }
        }
    }

    fn reset(&mut self) {
        self.l.reset();
        self.r.reset();
        self.cur = None;
    }
}

/// A filter comparison (`>?` and friends).
pub fn filter(op: FilterOp, l: Gen, r: Gen) -> Gen {
    Box::new(FilterGen {
        op,
        l,
        r,
        cur: None,
    })
}
