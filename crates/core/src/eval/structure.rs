//! Structure-walking generators: indexing, `with` (`.`/`->`), the
//! `-->`/`-->>` expansions, `[[..]]` selection, `#` index aliasing, and
//! `@` termination.

use std::collections::{HashSet, VecDeque};

use crate::{
    apply::{self, Class},
    ast::{Expr, WithLink},
    error::{DuelError, DuelResult},
    scope::{Ctx, WithEntry},
    value::{Scalar, Value},
};

use super::{basic::int_of, compile, first_value, Gen, GenT};

// ----- indexing ---------------------------------------------------------

/// `e1[e2]` — ordinary C indexing lifted over generators (both the base
/// and the index may generate).
///
/// When the index expression is a compile-time contiguous range
/// (`x[a..b]`, `x[..n]` — see `range_hint` in the parent module) and
/// [`crate::EvalOptions::prefetch`] is on, each fresh base value first
/// lays out a **windowed** warm plan over the span: windows of at most
/// [`crate::EvalOptions::prefetch_window`] cache pages, so a huge scan
/// costs bounded memory per warm call. When the tower has an I/O actor
/// below the cache, the windows are double-buffered — window *k+1* is
/// submitted the moment the scan enters window *k*, so the wire works
/// while the evaluator chews — and otherwise each window is read
/// synchronously at its boundary (same wire sequence, no overlap).
struct IndexGen {
    base: Gen,
    idx: Gen,
    cur: Option<Value>,
    /// Inclusive index range the idx generator is known to enumerate.
    hint: Option<(i64, i64)>,
    /// Base address already warmed (one plan per base value).
    warmed: Option<u64>,
    /// The windowed warm plan for the current base, if any.
    plan: Option<WindowPlan>,
}

/// The double-buffered window schedule of one hinted scan.
struct WindowPlan {
    /// `(start, len)` byte windows, in address order.
    windows: Vec<(u64, u64)>,
    /// `boundaries[k]`: 0-based element ordinal (counted from the first
    /// scanned element) whose bytes first touch window `k` — the moment
    /// window `k` must be applied and window `k+1` submitted.
    boundaries: Vec<u64>,
    /// Next window index to apply: windows `0..next` are resident,
    /// window `next` (when one exists) is the submitted one in flight.
    next: usize,
    /// Elements handed to the evaluator so far for this base.
    consumed: u64,
    /// Whether the tower accepted [`duel_target::Target::prefetch_submit`];
    /// `false` means windows were warmed eagerly via the legacy path
    /// and no boundary work remains.
    seam: bool,
}

impl WindowPlan {
    /// Submits window `k` and counts its completion when polled.
    fn submit(&self, ctx: &mut Ctx<'_>, k: usize) -> bool {
        let (start, len) = self.windows[k];
        ctx.prefetch_calls += 1;
        ctx.target.prefetch_submit(&[(start, len)])
    }

    /// Applies the oldest in-flight window (blocking on the wire if it
    /// has not landed yet) and books its stats.
    fn poll(&self, ctx: &mut Ctx<'_>) {
        if let Some(c) = ctx.target.prefetch_poll() {
            ctx.prefetch_ranges += c.clean;
        }
    }

    /// Called once per element handed to the evaluator: crossing into
    /// window `k` submits window `k+1`, then applies window `k`
    /// (double buffering — planning always sees fully applied prior
    /// windows, which keeps record→replay deterministic).
    ///
    /// Submit-before-poll matters: the submission queues behind the
    /// in-flight window on the actor's FIFO, so the worker rolls
    /// straight from one wire turn into the next while this thread is
    /// still blocked in the poll — the wire never idles between
    /// windows. (Polling first would leave it idle for the length of
    /// each poll wait.) The capture layer is agnostic: it records
    /// submissions in submission order either way.
    fn advance(&mut self, ctx: &mut Ctx<'_>) {
        if self.seam {
            while self.next < self.windows.len() && self.consumed >= self.boundaries[self.next] {
                let k = self.next;
                let span = ctx.span_enter(duel_target::SpanKind::Prefetch, "prefetch", || {
                    format!("window {k} boundary")
                });
                if k + 1 < self.windows.len() && self.submit(ctx, k + 1) {
                    ctx.windows_inflight += 1;
                }
                self.poll(ctx);
                ctx.span_exit(span);
                self.next += 1;
            }
        }
        self.consumed += 1;
    }
}

/// Warms one bounded chunk of ranges: through the cache's prefetch
/// seam when the tower offers it (submit + immediate apply — callers
/// consume these bytes right away, so there is nothing to overlap),
/// else through the legacy vectored read.
fn warm_chunk(ctx: &mut Ctx<'_>, chunk: &[(u64, u64)]) {
    ctx.prefetch_calls += 1;
    ctx.windows_planned += 1;
    if ctx.target.prefetch_submit(chunk) {
        if let Some(c) = ctx.target.prefetch_poll() {
            ctx.prefetch_ranges += c.clean;
        }
    } else {
        ctx.prefetch_ranges += apply::prefetch(ctx.target, chunk) as u64;
    }
}

impl IndexGen {
    /// Lays out the planner's warm schedule for base value `b`, if it
    /// applies. Advisory by construction: any shape we cannot cheaply
    /// resolve (no address, unsized elements) is skipped, and read
    /// errors are left for the demand path to surface.
    fn warm(&mut self, ctx: &mut Ctx<'_>, b: &Value) {
        self.plan = None;
        let (lo, hi) = match self.hint {
            Some(h) if ctx.opts.prefetch => h,
            _ => return,
        };
        let (elem, base_addr) = match apply::classify(ctx.target, b.ty) {
            Class::Array { elem, .. } => match b.lval_addr() {
                Some(a) => (elem, a),
                None => return,
            },
            Class::Ptr { pointee } => match apply::load(ctx.target, b) {
                Ok(Scalar::Ptr(p)) if p != 0 => (pointee, p),
                Ok(Scalar::Int(p)) if p != 0 => (pointee, p as u64),
                _ => return,
            },
            _ => return,
        };
        if self.warmed == Some(base_addr) {
            return;
        }
        self.warmed = Some(base_addr);
        let esize = match ctx.target.types().size_of(elem, ctx.target.abi()) {
            Ok(s) if s > 0 => s,
            _ => return,
        };
        let start = (base_addr as i64 + lo * esize as i64) as u64;
        let total = (hi - lo + 1) as u64 * esize;
        // Window size: `prefetch_window` cache pages (64-byte pages
        // assumed when the tower has no cache to ask).
        let page = ctx.target.cache_page_size().unwrap_or(64);
        let window = (ctx.opts.prefetch_window.max(1) as u64).saturating_mul(page);
        let mut windows = Vec::new();
        let mut boundaries = Vec::new();
        let mut off = 0u64;
        while off < total {
            let len = window.min(total - off);
            windows.push((start + off, len));
            // The element containing byte `off` is the first to touch
            // this window (it may straddle the previous one).
            boundaries.push(off / esize);
            off += len;
        }
        ctx.windows_planned += windows.len() as u64;
        let span = ctx.span_enter(duel_target::SpanKind::Prefetch, "prefetch", || {
            format!("warm 0x{start:x}+{total} ({} windows)", windows.len())
        });
        let plan = WindowPlan {
            windows,
            boundaries,
            next: 0,
            consumed: 0,
            seam: false,
        };
        let seam = plan.submit(ctx, 0);
        let plan = if seam {
            // Window 0 must be resident before the first element is
            // read; window 1 then rides the wire while the evaluator
            // consumes window 0.
            plan.poll(ctx);
            if plan.windows.len() > 1 && plan.submit(ctx, 1) {
                ctx.windows_inflight += 1;
            }
            WindowPlan {
                next: 1,
                seam: true,
                ..plan
            }
        } else {
            // No cache in the tower: warm every window eagerly through
            // the legacy vectored read, one bounded call per window.
            ctx.prefetch_ranges += apply::prefetch(ctx.target, &[plan.windows[0]]) as u64;
            for w in &plan.windows[1..] {
                ctx.prefetch_calls += 1;
                ctx.prefetch_ranges += apply::prefetch(ctx.target, &[*w]) as u64;
            }
            plan
        };
        ctx.span_exit(span);
        self.plan = Some(plan);
    }
}

impl GenT for IndexGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            if self.cur.is_none() {
                match self.base.next(ctx)? {
                    Some(b) => {
                        self.warm(ctx, &b);
                        self.cur = Some(b);
                    }
                    None => return Ok(None),
                }
            }
            match self.idx.next(ctx)? {
                Some(i) => {
                    if let Some(p) = &mut self.plan {
                        p.advance(ctx);
                    }
                    let eager = ctx.eager_sym();
                    let b = self.cur.as_ref().unwrap();
                    return apply::index(ctx.target, b, &i, eager).map(Some);
                }
                None => self.cur = None,
            }
        }
    }

    fn reset(&mut self) {
        self.base.reset();
        self.idx.reset();
        self.cur = None;
        self.warmed = None;
        self.plan = None;
    }
}

/// `e1[e2]`.
pub fn index(base: Gen, idx: Gen, hint: Option<(i64, i64)>) -> Gen {
    Box::new(IndexGen {
        base,
        idx,
        cur: None,
        hint,
        warmed: None,
        plan: None,
    })
}

// ----- selection --------------------------------------------------------

/// `e1[[e2]]` — the paper's `select`: "produces the elements of e2 given
/// by the integers in e1" (0-based, per the worked example
/// `((1..9)*(1..9))[[52,74]]` ⇒ `6*8 = 48`). "The actual implementation
/// of select avoids the re-evaluation of e2 when possible" — we cache
/// produced values.
struct SelectGen {
    base: Gen,
    idx: Gen,
    cache: Vec<Value>,
    exhausted: bool,
}

impl GenT for SelectGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            match self.idx.next(ctx)? {
                None => {
                    self.rewind();
                    return Ok(None);
                }
                Some(iv) => {
                    let i = int_of(ctx, &iv)?;
                    if i < 0 {
                        continue;
                    }
                    let i = i as usize;
                    while self.cache.len() <= i && !self.exhausted {
                        match self.base.next(ctx)? {
                            Some(v) => self.cache.push(v),
                            None => self.exhausted = true,
                        }
                    }
                    if let Some(v) = self.cache.get(i) {
                        // The selected value keeps its own symbolic
                        // value (`6*8 = 48`).
                        return Ok(Some(v.clone()));
                    }
                    // Out of range: no value for this index.
                }
            }
        }
    }

    fn reset(&mut self) {
        self.idx.reset();
        self.rewind();
    }
}

impl SelectGen {
    fn rewind(&mut self) {
        self.base.reset();
        self.cache.clear();
        self.exhausted = false;
    }
}

/// `e1[[e2]]`.
pub fn select(base: Gen, idx: Gen) -> Gen {
    Box::new(SelectGen {
        base,
        idx,
        cache: Vec::new(),
        exhausted: false,
    })
}

// ----- with -------------------------------------------------------------

/// `e1.e2` / `e1->e2` — the paper's `with`:
///
/// ```text
/// case WITH:
///   while (u = eval(n->kids[0])) {
///     push(u)
///     while (v = eval(n->kids[1])) yield v
///     pop()
///   }
/// ```
///
/// The pushed entry holds the *raw* operand: `_` refers to it directly,
/// and dereferencing for field access happens lazily at fetch time, so
/// `hash[..1024]->(if (_ && scope > 5) name)` never dereferences a NULL
/// bucket.
struct WithGen {
    link: WithLink,
    base: Gen,
    inner: Gen,
    active: bool,
}

impl GenT for WithGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            if !self.active {
                match self.base.next(ctx)? {
                    Some(u) => {
                        ctx.with_stack.push(WithEntry {
                            value: u,
                            arrow: self.link == WithLink::Arrow,
                        });
                        self.active = true;
                    }
                    None => return Ok(None),
                }
            }
            match self.inner.next(ctx) {
                Ok(Some(v)) => return Ok(Some(v)),
                Ok(None) => {
                    ctx.with_stack.pop();
                    self.active = false;
                }
                Err(e) => {
                    ctx.with_stack.pop();
                    self.active = false;
                    return Err(e);
                }
            }
        }
    }

    fn reset(&mut self) {
        self.base.reset();
        self.inner.reset();
        // Any pushed entry is popped by the error path in `next`.
        self.active = false;
    }
}

/// `e1.e2` / `e1->e2`.
pub fn with(link: WithLink, base: Gen, inner: Gen) -> Gen {
    Box::new(WithGen {
        link,
        base,
        inner,
        active: false,
    })
}

// ----- expansion (dfs / bfs) ---------------------------------------------

/// `e1-->e2` (depth-first) and `e1-->>e2` (breadth-first) expansion:
///
/// ```text
/// case DFS:
///   while (u = eval(n->kids[0])) {
///     stack(n, u)
///     while (v = unstack(n)) {
///       push(v)
///       while (w = eval(n->kids[1])) stack(n, w)
///       pop()
///       yield v
///     }
///   }
/// ```
///
/// "until a NULL pointer or an invalid pointer terminates the sequence";
/// children are stacked in reverse so a `(left,right)` expansion visits
/// in preorder. The paper's implementation "does not handle cycles" —
/// ours guards with a visited set unless `dfs_cycle_check` is off.
struct ExpandGen {
    root: Gen,
    expand: Gen,
    bfs: bool,
    frontier: VecDeque<Value>,
    visited: HashSet<u64>,
    running: bool,
    /// Nodes visited for the current root value, checked against
    /// `max_expand` — the backstop that terminates cyclic structures
    /// when the visited-set check is disabled.
    expanded: u64,
}

impl ExpandGen {
    /// Is `v` a pointer to mapped memory? Returns the address.
    fn pointer_target(&self, ctx: &mut Ctx<'_>, v: &Value) -> DuelResult<Option<u64>> {
        let pointee = match apply::classify(ctx.target, v.ty) {
            Class::Ptr { pointee } => pointee,
            _ => {
                return Err(DuelError::Type {
                    sym: v.sym.render(ctx.opts.compress_threshold),
                    message: "`-->` expansion needs pointer values to walk".into(),
                })
            }
        };
        let p = match apply::load(ctx.target, v)? {
            Scalar::Ptr(p) => p,
            Scalar::Int(i) => i as u64,
            Scalar::Float(_) => 0,
        };
        if p == 0 {
            return Ok(None);
        }
        let size = ctx
            .target
            .types()
            .size_of(pointee, ctx.target.abi())
            .unwrap_or(1);
        if !ctx.target.is_mapped(p, size) {
            return Ok(None);
        }
        Ok(Some(p))
    }

    /// Normalizes a node to a pointer rvalue (loading field lvalues).
    fn as_node(&self, ctx: &mut Ctx<'_>, v: &Value, addr: u64) -> Value {
        let _ = ctx;
        Value::rval(v.ty, Scalar::Ptr(addr), v.sym.clone())
    }
}

impl GenT for ExpandGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            if self.frontier.is_empty() {
                match self.root.next(ctx)? {
                    Some(u) => {
                        self.visited.clear();
                        self.expanded = 0;
                        if let Some(p) = self.pointer_target(ctx, &u)? {
                            self.visited.insert(p);
                            let node = self.as_node(ctx, &u, p);
                            self.frontier.push_back(node);
                            self.running = true;
                        }
                        // NULL/invalid root: yields nothing for this u.
                        continue;
                    }
                    None => {
                        self.running = false;
                        return Ok(None);
                    }
                }
            }
            // Pop the next node (LIFO for dfs, FIFO for bfs).
            let x = if self.bfs {
                self.frontier.pop_front().unwrap()
            } else {
                self.frontier.pop_back().unwrap()
            };
            self.expanded += 1;
            ctx.expansions += 1;
            if self.expanded > ctx.opts.max_expand {
                return Err(DuelError::BudgetExceeded {
                    budget: "expansion".into(),
                    limit: ctx.opts.max_expand,
                    sym: x.sym.render(ctx.opts.compress_threshold),
                });
            }
            // Expand: evaluate e2 in the scope of *X.
            ctx.with_stack.push(WithEntry {
                value: x.clone(),
                arrow: true,
            });
            let mut children = Vec::new();
            let res: DuelResult<()> = (|| {
                while let Some(w) = self.expand.next(ctx)? {
                    if let Some(p) = self.pointer_target(ctx, &w)? {
                        let fresh = !ctx.opts.dfs_cycle_check || self.visited.insert(p);
                        if fresh {
                            children.push(self.as_node(ctx, &w, p));
                        }
                    }
                }
                Ok(())
            })();
            ctx.with_stack.pop();
            res?;
            // Planner hook: the children are homogeneous nodes about to
            // have their fields read one by one — warm them in vectored
            // turns of at most `prefetch_window` pages each. Advisory;
            // a node that fails to warm is fetched on demand as before.
            if ctx.opts.prefetch && !children.is_empty() {
                let ranges: Vec<(u64, u64)> = children
                    .iter()
                    .filter_map(|c| {
                        let addr = match c.place {
                            crate::value::Place::RVal(Scalar::Ptr(p)) if p != 0 => p,
                            _ => return None,
                        };
                        let pointee = match apply::classify(ctx.target, c.ty) {
                            Class::Ptr { pointee } => pointee,
                            _ => return None,
                        };
                        let size = ctx.target.types().size_of(pointee, ctx.target.abi()).ok()?;
                        (size > 0).then_some((addr, size))
                    })
                    .collect();
                if !ranges.is_empty() {
                    let span = ctx.span_enter(duel_target::SpanKind::Prefetch, "prefetch", || {
                        format!("warm {} discovered nodes", ranges.len())
                    });
                    let page = ctx.target.cache_page_size().unwrap_or(64);
                    let window = (ctx.opts.prefetch_window.max(1) as u64).saturating_mul(page);
                    let mut chunk: Vec<(u64, u64)> = Vec::new();
                    let mut chunk_bytes = 0u64;
                    for &(addr, len) in &ranges {
                        if !chunk.is_empty() && chunk_bytes + len > window {
                            warm_chunk(ctx, &chunk);
                            chunk.clear();
                            chunk_bytes = 0;
                        }
                        chunk.push((addr, len));
                        chunk_bytes += len;
                    }
                    if !chunk.is_empty() {
                        warm_chunk(ctx, &chunk);
                    }
                    ctx.span_exit(span);
                }
            }
            if self.bfs {
                // Queue in natural order.
                for c in children {
                    self.frontier.push_back(c);
                }
            } else {
                // Stack in reverse so the first child is visited first.
                for c in children.into_iter().rev() {
                    self.frontier.push_back(c);
                }
            }
            return Ok(Some(x));
        }
    }

    fn reset(&mut self) {
        self.root.reset();
        self.expand.reset();
        self.frontier.clear();
        self.visited.clear();
        self.running = false;
        self.expanded = 0;
    }
}

/// Builds a `-->` / `-->>` expansion.
pub fn expand(root: Gen, expand_expr: &Expr, bfs: bool) -> Gen {
    Box::new(ExpandGen {
        root,
        expand: compile(expand_expr),
        bfs,
        frontier: VecDeque::new(),
        visited: HashSet::new(),
        running: false,
        expanded: 0,
    })
}

// ----- index alias ------------------------------------------------------

/// `e#name` — "produces the values of e and arranges for `name` to be an
/// alias for the index of each value in e".
struct IndexAliasGen {
    e: Gen,
    name: String,
    i: i64,
}

impl GenT for IndexAliasGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        match self.e.next(ctx)? {
            Some(v) => {
                let ty = ctx.target.types_mut().prim(duel_ctype::Prim::Int);
                let sym = ctx.sym_leaf(self.i.to_string());
                ctx.set_alias(&self.name, Value::rval(ty, Scalar::Int(self.i), sym));
                self.i += 1;
                Ok(Some(v))
            }
            None => {
                self.i = 0;
                Ok(None)
            }
        }
    }

    fn reset(&mut self) {
        self.e.reset();
        self.i = 0;
    }
}

/// `e#name`.
pub fn index_alias(e: Gen, name: String) -> Gen {
    Box::new(IndexAliasGen { e, name, i: 0 })
}

// ----- until ------------------------------------------------------------

enum Stop {
    /// `e@3`, `e@'\0'` — stop when the value equals the constant.
    Literal(i64),
    /// `e@(cond)` — stop when `cond`, evaluated in the scope of the
    /// value (so `_` refers to it), is non-zero.
    Cond(Gen),
}

/// `e@n` — "produces the values of e until e.n is non-zero"; with a
/// constant `n`, "the expression produces the values of e up to the
/// first one that equals n". The paper's `argv[0..]@0` and
/// `s[0..999]@(_=='\0')`.
struct UntilGen {
    e: Gen,
    stop: Stop,
    stopped: bool,
}

impl GenT for UntilGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        if self.stopped {
            self.stopped = false;
            return Ok(None);
        }
        match self.e.next(ctx)? {
            None => Ok(None),
            Some(v) => {
                let stop_now = match &mut self.stop {
                    Stop::Literal(lit) => {
                        let cur = match apply::load(ctx.target, &v)? {
                            Scalar::Int(i) => i,
                            Scalar::Ptr(p) => p as i64,
                            Scalar::Float(f) => f as i64,
                        };
                        cur == *lit
                    }
                    Stop::Cond(cond) => {
                        ctx.with_stack.push(WithEntry {
                            value: v.clone(),
                            arrow: false,
                        });
                        let r = first_value(ctx, cond);
                        ctx.with_stack.pop();
                        match r? {
                            Some(c) => apply::truthy(ctx.target, &c)?,
                            None => false,
                        }
                    }
                };
                if stop_now {
                    self.e.reset();
                    return Ok(None);
                }
                Ok(Some(v))
            }
        }
    }

    fn reset(&mut self) {
        self.e.reset();
        if let Stop::Cond(c) = &mut self.stop {
            c.reset();
        }
        self.stopped = false;
    }
}

/// Constant-folds a stop operand: the paper's "n can be a constant, in
/// which case the expression produces the values of e up to the first
/// one that equals n" must also cover `(-1)` and friends.
fn stop_constant(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Char(c) => Some(*c as i64),
        Expr::Unary(crate::ast::UnOp::Neg, inner) => stop_constant(inner).map(|v| -v),
        Expr::Unary(crate::ast::UnOp::Pos, inner) => stop_constant(inner),
        _ => None,
    }
}

/// `e@stop`.
pub fn until(e: Gen, stop_expr: &Expr) -> Gen {
    let stop = match stop_constant(stop_expr) {
        Some(v) => Stop::Literal(v),
        None => Stop::Cond(compile(stop_expr)),
    };
    Box::new(UntilGen {
        e,
        stop,
        stopped: false,
    })
}
