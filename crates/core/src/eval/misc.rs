//! Remaining generators: aliases, declarations, calls, reductions,
//! assignment, casts, `sizeof`, string literals, and `{e}`.

use duel_ctype::{Prim, TypeId};

use crate::{
    apply,
    ast::{BaseType, BinOp, Declarator, Deriv, ReduceOp, TypeExpr},
    error::{DuelError, DuelResult},
    printer,
    scope::Ctx,
    sym::{precedence, Sym},
    value::{Scalar, Value},
};

use super::{first_value, Gen, GenT};

/// Resolves a parsed type name against the target's type table —
/// evaluation-time type checking, per the paper.
pub fn resolve_type(ctx: &mut Ctx<'_>, te: &TypeExpr, extra: &[Deriv]) -> DuelResult<TypeId> {
    let mut ty = match &te.base {
        BaseType::Void => ctx.target.types_mut().void(),
        BaseType::Prim(p) => ctx.target.types_mut().prim(*p),
        BaseType::Struct(tag) => {
            ctx.target
                .lookup_struct(tag)
                .ok_or_else(|| DuelError::Type {
                    sym: format!("struct {tag}"),
                    message: "unknown struct tag".into(),
                })?;
            ctx.target.types_mut().declare_struct(tag).1
        }
        BaseType::Union(tag) => {
            ctx.target
                .lookup_union(tag)
                .ok_or_else(|| DuelError::Type {
                    sym: format!("union {tag}"),
                    message: "unknown union tag".into(),
                })?;
            ctx.target.types_mut().declare_union(tag).1
        }
        BaseType::Enum(tag) => {
            let eid = ctx.target.lookup_enum(tag).ok_or_else(|| DuelError::Type {
                sym: format!("enum {tag}"),
                message: "unknown enum tag".into(),
            })?;
            let def = ctx.target.types().enum_def(eid).clone();
            ctx.target
                .types_mut()
                .define_enum(Some(tag), def.enumerators)
                .1
        }
        BaseType::Typedef(name) => {
            ctx.target
                .lookup_typedef(name)
                .ok_or_else(|| DuelError::Type {
                    sym: name.clone(),
                    message: "unknown type name".into(),
                })?
        }
    };
    // Pointer stars apply first, then array dimensions innermost-first
    // (`int m[3][4]` is an array of 3 arrays of 4 ints).
    let all: Vec<&Deriv> = te.derivs.iter().chain(extra.iter()).collect();
    for d in all.iter().filter(|d| matches!(d, Deriv::Ptr)) {
        let _ = d;
        ty = ctx.target.types_mut().pointer(ty);
    }
    for d in all.iter().rev() {
        if let Deriv::Array(n) = d {
            ty = ctx.target.types_mut().array(ty, *n);
        }
    }
    Ok(ty)
}

// ----- string literals --------------------------------------------------

/// A string literal, interned into target scratch space on first use
/// (per generator node) and yielded as a `char[]` lvalue that decays to
/// a pointer.
struct StrGen {
    s: String,
    addr: Option<u64>,
    done: bool,
}

impl GenT for StrGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        ctx.tick()?;
        if self.done {
            self.done = false;
            return Ok(None);
        }
        self.done = true;
        let addr = match self.addr {
            Some(a) => a,
            None => {
                let len = self.s.len() as u64 + 1;
                let a = ctx.target.alloc_space(len, 1)?;
                ctx.target.put_bytes(a, self.s.as_bytes())?;
                ctx.target.put_bytes(a + self.s.len() as u64, &[0])?;
                self.addr = Some(a);
                a
            }
        };
        let ch = ctx.target.types_mut().prim(Prim::Char);
        let aty = ctx
            .target
            .types_mut()
            .array(ch, Some(self.s.len() as u64 + 1));
        let sym = ctx.sym_leaf(format!("{:?}", self.s));
        Ok(Some(Value::lval(aty, addr, sym)))
    }

    fn reset(&mut self) {
        self.done = false;
    }
}

/// A string literal.
pub fn string_literal(s: String) -> Gen {
    Box::new(StrGen {
        s,
        addr: None,
        done: false,
    })
}

// ----- alias / declarations ----------------------------------------------

/// `a := e` — the paper's `define`:
///
/// ```text
/// case DEFINE:
///   while (u = eval(n->kids[1])) { alias(n->name, u); yield u }
/// ```
struct AliasGen {
    name: String,
    e: Gen,
}

impl GenT for AliasGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        match self.e.next(ctx)? {
            Some(v) => {
                ctx.set_alias(&self.name, v.clone());
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    fn reset(&mut self) {
        self.e.reset();
    }
}

/// `a := e`.
pub fn alias(name: String, e: Gen) -> Gen {
    Box::new(AliasGen { name, e })
}

/// A DUEL declaration: "Duel declarations, e.g., `int i`, establishes
/// aliases to newly allocated target locations"
/// (`duel_alloc_target_space`). Produces no values.
struct DeclGen {
    base: TypeExpr,
    decls: Vec<Declarator>,
    allocated: bool,
}

impl GenT for DeclGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        if !self.allocated {
            self.allocated = true;
            for d in &self.decls {
                let ty = resolve_type(ctx, &self.base, &d.derivs)?;
                let (size, align) = ctx
                    .target
                    .types()
                    .size_align(ty, ctx.target.abi())
                    .map_err(|e| DuelError::Type {
                        sym: d.name.clone(),
                        message: e.to_string(),
                    })?;
                let addr = ctx.target.alloc_space(size, align)?;
                // Zero-initialize so fresh DUEL variables are
                // deterministic.
                ctx.target.put_bytes(addr, &vec![0u8; size as usize])?;
                let sym = ctx.sym_leaf(&d.name);
                ctx.set_alias(&d.name, Value::lval(ty, addr, sym));
            }
        }
        Ok(None)
    }

    fn reset(&mut self) {
        // Deliberately not re-allocating: a declaration takes effect
        // once per command.
    }
}

/// A declaration.
pub fn decl(base: TypeExpr, decls: Vec<Declarator>) -> Gen {
    Box::new(DeclGen {
        base,
        decls,
        allocated: false,
    })
}

// ----- assignment and ++/-- ----------------------------------------------

fn assign_spelling(op: Option<BinOp>) -> &'static str {
    match op {
        None => "=",
        Some(BinOp::Add) => "+=",
        Some(BinOp::Sub) => "-=",
        Some(BinOp::Mul) => "*=",
        Some(BinOp::Div) => "/=",
        Some(BinOp::Rem) => "%=",
        Some(BinOp::BitAnd) => "&=",
        Some(BinOp::BitOr) => "|=",
        Some(BinOp::BitXor) => "^=",
        Some(BinOp::Shl) => "<<=",
        Some(BinOp::Shr) => ">>=",
        _ => "=",
    }
}

/// `e1 = e2` (and `op=`) — C's assignment, unchanged, applied to every
/// combination of generated lvalues and values (the paper's
/// `hash[0..1023]->scope = 0`).
struct AssignGen {
    op: Option<BinOp>,
    l: Gen,
    r: Gen,
    cur: Option<Value>,
}

impl GenT for AssignGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            if self.cur.is_none() {
                match self.l.next(ctx)? {
                    Some(u) => self.cur = Some(u),
                    None => return Ok(None),
                }
            }
            match self.r.next(ctx)? {
                Some(v) => {
                    // Borrowed, not cloned: the lvalue is only ever
                    // read here (type, address, symbolic text).
                    let lhs = self.cur.as_ref().unwrap();
                    let eager = ctx.eager_sym();
                    let stored = match self.op {
                        None => {
                            let s = apply::load(ctx.target, &v)?;
                            apply::store(ctx.target, lhs, s)?
                        }
                        Some(op) => {
                            let combined = apply::binary(ctx.target, op, lhs, &v, false)?;
                            let s = apply::load(ctx.target, &combined)?;
                            apply::store(ctx.target, lhs, s)?
                        }
                    };
                    let sym = if eager {
                        Sym::bin(
                            assign_spelling(self.op),
                            precedence::ASSIGN,
                            &lhs.sym,
                            &v.sym,
                        )
                    } else {
                        Sym::None
                    };
                    return Ok(Some(Value::rval(lhs.ty, stored, sym)));
                }
                None => self.cur = None,
            }
        }
    }

    fn reset(&mut self) {
        self.l.reset();
        self.r.reset();
        self.cur = None;
    }
}

/// Assignment.
pub fn assign(op: Option<BinOp>, l: Gen, r: Gen) -> Gen {
    Box::new(AssignGen {
        op,
        l,
        r,
        cur: None,
    })
}

/// `++e`, `--e`, `e++`, `e--` — pointer-aware, per C.
struct IncDecGen {
    pre: bool,
    inc: bool,
    e: Gen,
}

impl GenT for IncDecGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        match self.e.next(ctx)? {
            None => Ok(None),
            Some(u) => {
                let eager = ctx.eager_sym();
                let old = apply::load(ctx.target, &u)?;
                let int_ty = ctx.target.types_mut().prim(Prim::Int);
                let one = Value::rval(int_ty, Scalar::Int(1), Sym::leaf("1"));
                let op = if self.inc { BinOp::Add } else { BinOp::Sub };
                let newv = apply::binary(ctx.target, op, &u, &one, false)?;
                let news = apply::load(ctx.target, &newv)?;
                let stored = apply::store(ctx.target, &u, news)?;
                let opname = if self.inc { "++" } else { "--" };
                let sym = if eager {
                    if self.pre {
                        Sym::un(if self.inc { "++" } else { "--" }, &u.sym)
                    } else {
                        Sym::leaf(format!(
                            "{}{}",
                            u.sym.render(ctx.opts.compress_threshold),
                            opname
                        ))
                    }
                } else {
                    Sym::None
                };
                let result = if self.pre { stored } else { old };
                Ok(Some(Value::rval(u.ty, result, sym)))
            }
        }
    }

    fn reset(&mut self) {
        self.e.reset();
    }
}

/// `++`/`--` in either position.
pub fn incdec(pre: bool, inc: bool, e: Gen) -> Gen {
    Box::new(IncDecGen { pre, inc, e })
}

// ----- casts and sizeof ---------------------------------------------------

/// `(type)e`.
struct CastGen {
    te: TypeExpr,
    e: Gen,
    resolved: Option<TypeId>,
}

impl GenT for CastGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        match self.e.next(ctx)? {
            None => Ok(None),
            Some(u) => {
                let ty = match self.resolved {
                    Some(t) => t,
                    None => {
                        let t = resolve_type(ctx, &self.te, &[])?;
                        self.resolved = Some(t);
                        t
                    }
                };
                let eager = ctx.eager_sym();
                apply::cast(ctx.target, ty, &u, eager).map(Some)
            }
        }
    }

    fn reset(&mut self) {
        self.e.reset();
    }
}

/// `(type)e`.
pub fn cast(te: TypeExpr, e: Gen) -> Gen {
    Box::new(CastGen {
        te,
        e,
        resolved: None,
    })
}

struct SizeofGen {
    te: Option<TypeExpr>,
    e: Option<Gen>,
    done: bool,
}

impl GenT for SizeofGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        if self.done {
            self.done = false;
            return Ok(None);
        }
        self.done = true;
        let ty = match (&self.te, &mut self.e) {
            (Some(te), _) => resolve_type(ctx, te, &[])?,
            (None, Some(e)) => match first_value(ctx, e)? {
                Some(v) => v.ty,
                None => {
                    return Err(DuelError::Type {
                        sym: "sizeof".into(),
                        message: "operand of sizeof produced no value".into(),
                    })
                }
            },
            _ => unreachable!("sizeof has an operand"),
        };
        let size = ctx
            .target
            .types()
            .size_of(ty, ctx.target.abi())
            .map_err(|e| DuelError::Type {
                sym: "sizeof".into(),
                message: e.to_string(),
            })?;
        let ulong = ctx.target.types_mut().prim(Prim::ULong);
        let text = format!("sizeof({})", ctx.target.types().display(ty));
        let sym = ctx.sym_leaf(text);
        Ok(Some(Value::rval(ulong, Scalar::Int(size as i64), sym)))
    }

    fn reset(&mut self) {
        self.done = false;
        if let Some(e) = self.e.as_mut() {
            e.reset();
        }
    }
}

/// `sizeof e`.
pub fn sizeof_expr(e: Gen) -> Gen {
    Box::new(SizeofGen {
        te: None,
        e: Some(e),
        done: false,
    })
}

/// `sizeof(type)`.
pub fn sizeof_type(te: TypeExpr) -> Gen {
    Box::new(SizeofGen {
        te: Some(te),
        e: None,
        done: false,
    })
}

// ----- calls ----------------------------------------------------------------

/// A target-function call. "If any of the arguments are generators, the
/// function is called repeatedly for all combinations of values" — the
/// paper's `printf("%d %d, ", (3,4), 5..7)` makes six calls, leftmost
/// argument varying slowest.
struct CallGen {
    name: String,
    args: Vec<Gen>,
    cur: Vec<Value>,
    started: bool,
}

impl CallGen {
    fn perform(&self, ctx: &mut Ctx<'_>) -> DuelResult<Value> {
        if !ctx.target.has_function(&self.name) {
            return Err(DuelError::Target(
                duel_target::TargetError::UnknownFunction(self.name.clone()),
            ));
        }
        let mut call_args = Vec::with_capacity(self.cur.len());
        for v in &self.cur {
            call_args.push(apply::to_call_value(ctx.target, v)?);
        }
        let ret = ctx.target.call_func(&self.name, &call_args)?;
        let sym = if ctx.eager_sym() {
            Sym::call(&self.name, self.cur.iter().map(|v| v.sym.clone()).collect())
        } else {
            Sym::None
        };
        apply::from_call_value(ctx.target, &ret, sym)
    }
}

impl GenT for CallGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        if !self.started {
            self.cur.clear();
            for a in self.args.iter_mut() {
                match a.next(ctx)? {
                    Some(v) => self.cur.push(v),
                    None => {
                        // An empty argument generator: no calls at all.
                        for b in self.args.iter_mut() {
                            b.reset();
                        }
                        return Ok(None);
                    }
                }
            }
            self.started = true;
            return self.perform(ctx).map(Some);
        }
        // Advance the odometer, rightmost argument fastest.
        let n = self.args.len();
        let mut k = n;
        loop {
            if k == 0 {
                self.started = false;
                self.cur.clear();
                return Ok(None);
            }
            k -= 1;
            match self.args[k].next(ctx)? {
                Some(v) => {
                    self.cur[k] = v;
                    // Restart everything to the right.
                    let mut ok = true;
                    for j in k + 1..n {
                        match self.args[j].next(ctx)? {
                            Some(v) => self.cur[j] = v,
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        self.started = false;
                        self.cur.clear();
                        for b in self.args.iter_mut() {
                            b.reset();
                        }
                        return Ok(None);
                    }
                    return self.perform(ctx).map(Some);
                }
                None => {
                    // Exhausted (and auto-rewound); carry leftward.
                }
            }
        }
    }

    fn reset(&mut self) {
        for a in self.args.iter_mut() {
            a.reset();
        }
        self.cur.clear();
        self.started = false;
    }
}

/// `f(args…)`.
pub fn call(name: String, args: Vec<Gen>) -> Gen {
    Box::new(CallGen {
        name,
        args,
        cur: Vec::new(),
        started: false,
    })
}

// ----- reductions ------------------------------------------------------------

/// `#/e`, `+/e`, `&&/e`, `||/e`, `>/e`, `</e` — APL-style reductions:
/// "(count e) returns the number of values produced by e, (sum e) sums
/// the values produced by e".
struct ReduceGen {
    op: ReduceOp,
    e: Gen,
    done: bool,
}

impl GenT for ReduceGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        if self.done {
            self.done = false;
            return Ok(None);
        }
        self.done = true;
        let long_ty = ctx.target.types_mut().prim(Prim::LongLong);
        let dbl_ty = ctx.target.types_mut().prim(Prim::Double);
        match self.op {
            ReduceOp::Count => {
                let mut n: i64 = 0;
                while self.e.next(ctx)?.is_some() {
                    n += 1;
                }
                Ok(Some(Value::rval(long_ty, Scalar::Int(n), Sym::None)))
            }
            ReduceOp::Sum => {
                let mut isum: i64 = 0;
                let mut fsum: f64 = 0.0;
                let mut any_float = false;
                while let Some(v) = self.e.next(ctx)? {
                    match apply::load(ctx.target, &v)? {
                        Scalar::Int(i) => {
                            isum = isum.wrapping_add(i);
                            fsum += i as f64;
                        }
                        Scalar::Float(f) => {
                            any_float = true;
                            fsum += f;
                        }
                        Scalar::Ptr(p) => {
                            isum = isum.wrapping_add(p as i64);
                            fsum += p as f64;
                        }
                    }
                }
                Ok(Some(if any_float {
                    Value::rval(dbl_ty, Scalar::Float(fsum), Sym::None)
                } else {
                    Value::rval(long_ty, Scalar::Int(isum), Sym::None)
                }))
            }
            ReduceOp::All => {
                let mut all = true;
                while let Some(v) = self.e.next(ctx)? {
                    if !apply::truthy(ctx.target, &v)? {
                        all = false;
                        self.e.reset();
                        break;
                    }
                }
                Ok(Some(Value::rval(
                    long_ty,
                    Scalar::Int(all as i64),
                    Sym::None,
                )))
            }
            ReduceOp::Any => {
                let mut any = false;
                while let Some(v) = self.e.next(ctx)? {
                    if apply::truthy(ctx.target, &v)? {
                        any = true;
                        self.e.reset();
                        break;
                    }
                }
                Ok(Some(Value::rval(
                    long_ty,
                    Scalar::Int(any as i64),
                    Sym::None,
                )))
            }
            ReduceOp::Max | ReduceOp::Min => {
                let want_max = self.op == ReduceOp::Max;
                let mut best: Option<Value> = None;
                let mut best_key: f64 = 0.0;
                while let Some(v) = self.e.next(ctx)? {
                    let key = match apply::load(ctx.target, &v)? {
                        Scalar::Int(i) => i as f64,
                        Scalar::Float(f) => f,
                        Scalar::Ptr(p) => p as f64,
                    };
                    let better = match best {
                        None => true,
                        Some(_) => {
                            if want_max {
                                key > best_key
                            } else {
                                key < best_key
                            }
                        }
                    };
                    if better {
                        best_key = key;
                        best = Some(v);
                    }
                }
                // The extremum keeps its own symbolic value, which
                // pinpoints *where* it came from.
                Ok(best)
            }
        }
    }

    fn reset(&mut self) {
        self.e.reset();
        self.done = false;
    }
}

/// A reduction.
pub fn reduce(op: ReduceOp, e: Gen) -> Gen {
    Box::new(ReduceGen { op, e, done: false })
}

// ----- sequence equality (the paper's `equality`) ---------------------------

/// `equal(e1, e2)` — the paper's `(equality e1 e2)`: 1 if the two value
/// sequences are element-wise equal (same length, same values), else 0.
struct SeqEqualGen {
    a: Gen,
    b: Gen,
    done: bool,
}

impl GenT for SeqEqualGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        if self.done {
            self.done = false;
            return Ok(None);
        }
        self.done = true;
        let mut eq = true;
        loop {
            let av = self.a.next(ctx)?;
            let bv = self.b.next(ctx)?;
            match (av, bv) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    let xs = apply::load(ctx.target, &x)?;
                    let ys = apply::load(ctx.target, &y)?;
                    let same = match (xs, ys) {
                        (Scalar::Int(i), Scalar::Int(j)) => i == j,
                        (Scalar::Float(i), Scalar::Float(j)) => i == j,
                        (Scalar::Ptr(i), Scalar::Ptr(j)) => i == j,
                        (Scalar::Int(i), Scalar::Ptr(j)) | (Scalar::Ptr(j), Scalar::Int(i)) => {
                            i as u64 == j
                        }
                        (Scalar::Int(i), Scalar::Float(j)) | (Scalar::Float(j), Scalar::Int(i)) => {
                            i as f64 == j
                        }
                        _ => false,
                    };
                    if !same {
                        eq = false;
                        self.a.reset();
                        self.b.reset();
                        break;
                    }
                }
                // Unequal lengths: drain and rewind whichever side is
                // still producing.
                (Some(_), None) | (None, Some(_)) => {
                    eq = false;
                    self.a.reset();
                    self.b.reset();
                    break;
                }
            }
        }
        let ty = ctx.target.types_mut().prim(Prim::Int);
        Ok(Some(Value::rval(ty, Scalar::Int(eq as i64), Sym::None)))
    }

    fn reset(&mut self) {
        self.a.reset();
        self.b.reset();
        self.done = false;
    }
}

/// `equal(e1, e2)`.
pub fn seq_equal(a: Gen, b: Gen) -> Gen {
    Box::new(SeqEqualGen { a, b, done: false })
}

// ----- frame exploration (extension) ---------------------------------------

/// `frames()` — generates the active frame indices `0..frame_count-1`,
/// innermost first. An extension addressing the paper's Discussion:
/// "displaying the local x in all of the currently active stack frames
/// … is tedious to do with most debuggers".
struct FramesGen {
    i: Option<usize>,
}

impl GenT for FramesGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        ctx.tick()?;
        let n = ctx.target.frame_count();
        let i = self.i.unwrap_or(0);
        if i >= n {
            self.i = None;
            return Ok(None);
        }
        self.i = Some(i + 1);
        let ty = ctx.target.types_mut().prim(Prim::Int);
        let sym = ctx.sym_leaf(i.to_string());
        Ok(Some(Value::rval(ty, Scalar::Int(i as i64), sym)))
    }

    fn reset(&mut self) {
        self.i = None;
    }
}

/// `frames()`.
pub fn frames() -> Gen {
    Box::new(FramesGen { i: None })
}

/// `local("x", k)` — the lvalue of local `x` in frame `k`, for each
/// generated `k`; frames without such a local yield nothing.
struct LocalGen {
    var: String,
    k: Gen,
}

impl GenT for LocalGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            match self.k.next(ctx)? {
                None => return Ok(None),
                Some(kv) => {
                    let k = apply::load(ctx.target, &kv)?;
                    let k = match k {
                        Scalar::Int(i) if i >= 0 => i as usize,
                        _ => continue,
                    };
                    match ctx.target.get_variable_in_frame(&self.var, k) {
                        Some(info) => {
                            let sym = ctx.sym_leaf(format!("local(\"{}\", {k})", self.var));
                            return Ok(Some(Value::lval(info.ty, info.addr, sym)));
                        }
                        // No such local in this frame: skip it.
                        None => continue,
                    }
                }
            }
        }
    }

    fn reset(&mut self) {
        self.k.reset();
    }
}

/// `local("x", k)`.
pub fn local(var: String, k: Gen) -> Gen {
    Box::new(LocalGen { var, k })
}

// ----- braced override ---------------------------------------------------

/// `{e}` — "Enclosing an expression in braces overrides the default
/// display for that expression and causes its value to be displayed".
struct BracedGen {
    e: Gen,
}

impl GenT for BracedGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        match self.e.next(ctx)? {
            None => Ok(None),
            Some(v) => {
                let text = printer::format_value(ctx.target, &v, ctx.opts.compress_threshold)?;
                let sym = ctx.sym_leaf(text);
                Ok(Some(v.with_sym(sym)))
            }
        }
    }

    fn reset(&mut self) {
        self.e.reset();
    }
}

/// `{e}`.
pub fn braced(e: Gen) -> Gen {
    Box::new(BracedGen { e })
}
