//! Control generators: `&&`, `||`, `if`, `while`, `for`, sequencing,
//! imply, and discard.

use crate::{apply, error::DuelResult, scope::Ctx, value::Value};

use super::{Gen, GenT};

/// `e1 && e2` — "produces all of the values of e2 for each non-zero
/// value produced by e1":
///
/// ```text
/// case ANDAND:
///   while (u = eval(n->kids[0]))
///     if (u != 0)
///       while (v = eval(n->kids[1])) yield v
/// ```
struct AndAndGen {
    l: Gen,
    r: Gen,
    active: bool,
}

impl GenT for AndAndGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            if !self.active {
                match self.l.next(ctx)? {
                    Some(u) => {
                        if apply::truthy(ctx.target, &u)? {
                            self.active = true;
                        }
                    }
                    None => return Ok(None),
                }
            } else {
                match self.r.next(ctx)? {
                    Some(v) => return Ok(Some(v)),
                    None => self.active = false,
                }
            }
        }
    }

    fn reset(&mut self) {
        self.l.reset();
        self.r.reset();
        self.active = false;
    }
}

/// `e1 && e2`.
pub fn andand(l: Gen, r: Gen) -> Gen {
    Box::new(AndAndGen {
        l,
        r,
        active: false,
    })
}

/// `e1 || e2` — the dual of `&&`: non-zero values of `e1` pass through;
/// for each zero value, `e2`'s values are produced. Equivalent to C for
/// single-valued operands.
struct OrOrGen {
    l: Gen,
    r: Gen,
    active: bool,
}

impl GenT for OrOrGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            if !self.active {
                match self.l.next(ctx)? {
                    Some(u) => {
                        if apply::truthy(ctx.target, &u)? {
                            return Ok(Some(u));
                        }
                        self.active = true;
                    }
                    None => return Ok(None),
                }
            } else {
                match self.r.next(ctx)? {
                    Some(v) => return Ok(Some(v)),
                    None => self.active = false,
                }
            }
        }
    }

    fn reset(&mut self) {
        self.l.reset();
        self.r.reset();
        self.active = false;
    }
}

/// `e1 || e2`.
pub fn oror(l: Gen, r: Gen) -> Gen {
    Box::new(OrOrGen {
        l,
        r,
        active: false,
    })
}

/// `if (e1) e2 [else e3]` — for each non-zero value of `e1`, all values
/// of `e2`; for each zero value, all values of `e3`:
///
/// ```text
/// case IF:
///   while (u = eval(n->kids[0]))
///     if (u != 0) while (v = eval(n->kids[1])) yield v
///     else        while (v = eval(n->kids[2])) yield v
/// ```
struct IfGen {
    c: Gen,
    t: Gen,
    f: Option<Gen>,
    /// `None` = draw from condition; `Some(true/false)` = streaming the
    /// then/else branch.
    branch: Option<bool>,
}

impl GenT for IfGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            match self.branch {
                None => match self.c.next(ctx)? {
                    Some(u) => {
                        let b = apply::truthy(ctx.target, &u)?;
                        if b || self.f.is_some() {
                            self.branch = Some(b);
                        }
                    }
                    None => return Ok(None),
                },
                Some(true) => match self.t.next(ctx)? {
                    Some(v) => return Ok(Some(v)),
                    None => self.branch = None,
                },
                Some(false) => {
                    let f = self.f.as_mut().expect("branch checked");
                    match f.next(ctx)? {
                        Some(v) => return Ok(Some(v)),
                        None => self.branch = None,
                    }
                }
            }
        }
    }

    fn reset(&mut self) {
        self.c.reset();
        self.t.reset();
        if let Some(f) = self.f.as_mut() {
            f.reset();
        }
        self.branch = None;
    }
}

/// `if` / `?:` as an expression.
pub fn if_gen(c: Gen, t: Gen, f: Option<Gen>) -> Gen {
    Box::new(IfGen {
        c,
        t,
        f,
        branch: None,
    })
}

/// `while (e1) e2` — "produces e2 only if all of the values of e1 are
/// non-zero", restarting after each full round:
///
/// ```text
/// case WHILE:
///   for (;;) {
///     while (u = eval(n->kids[0])) if (u == 0) return NOVALUE
///     while (v = eval(n->kids[1])) yield v
///   }
/// ```
struct WhileGen {
    c: Gen,
    body: Gen,
    in_body: bool,
}

impl GenT for WhileGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            if !self.in_body {
                // Drain the condition; any zero value ends the loop.
                while let Some(u) = self.c.next(ctx)? {
                    if !apply::truthy(ctx.target, &u)? {
                        // Rewind for the next evaluation.
                        self.c.reset();
                        return Ok(None);
                    }
                }
                self.in_body = true;
            }
            match self.body.next(ctx)? {
                Some(v) => return Ok(Some(v)),
                None => self.in_body = false,
            }
        }
    }

    fn reset(&mut self) {
        self.c.reset();
        self.body.reset();
        self.in_body = false;
    }
}

/// `while` as an expression.
pub fn while_gen(c: Gen, body: Gen) -> Gen {
    Box::new(WhileGen {
        c,
        body,
        in_body: false,
    })
}

/// `for (init; cond; step) body` — C's `for` cast as an expression that
/// produces the body's values on every iteration.
struct ForGen {
    init: Option<Gen>,
    cond: Option<Gen>,
    step: Option<Gen>,
    body: Gen,
    phase: ForPhase,
}

#[derive(PartialEq)]
enum ForPhase {
    Init,
    Cond,
    Body,
    Step,
    Done,
}

impl GenT for ForGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            match self.phase {
                ForPhase::Init => {
                    if let Some(init) = self.init.as_mut() {
                        while init.next(ctx)?.is_some() {}
                    }
                    self.phase = ForPhase::Cond;
                }
                ForPhase::Cond => {
                    let mut go = true;
                    if let Some(cond) = self.cond.as_mut() {
                        // As with `while`: every value must be non-zero.
                        while let Some(u) = cond.next(ctx)? {
                            if !apply::truthy(ctx.target, &u)? {
                                go = false;
                                cond.reset();
                                break;
                            }
                        }
                    }
                    self.phase = if go { ForPhase::Body } else { ForPhase::Done };
                }
                ForPhase::Body => match self.body.next(ctx)? {
                    Some(v) => return Ok(Some(v)),
                    None => self.phase = ForPhase::Step,
                },
                ForPhase::Step => {
                    if let Some(step) = self.step.as_mut() {
                        while step.next(ctx)?.is_some() {}
                    }
                    self.phase = ForPhase::Cond;
                }
                ForPhase::Done => {
                    self.phase = ForPhase::Init;
                    return Ok(None);
                }
            }
        }
    }

    fn reset(&mut self) {
        if let Some(g) = self.init.as_mut() {
            g.reset();
        }
        if let Some(g) = self.cond.as_mut() {
            g.reset();
        }
        if let Some(g) = self.step.as_mut() {
            g.reset();
        }
        self.body.reset();
        self.phase = ForPhase::Init;
    }
}

/// `for` as an expression.
pub fn for_gen(init: Option<Gen>, cond: Option<Gen>, step: Option<Gen>, body: Gen) -> Gen {
    Box::new(ForGen {
        init,
        cond,
        step,
        body,
        phase: ForPhase::Init,
    })
}

/// `e1 ; e2` — "evaluates e1 but discards its values, and then produces
/// the values of e2":
///
/// ```text
/// case SEQUENCE:
///   while (u = eval(n->kids[0])) ;
///   while (v = eval(n->kids[1])) yield v
/// ```
struct SeqGen {
    l: Gen,
    r: Gen,
    drained: bool,
}

impl GenT for SeqGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        if !self.drained {
            while self.l.next(ctx)?.is_some() {}
            self.drained = true;
        }
        match self.r.next(ctx)? {
            Some(v) => Ok(Some(v)),
            None => {
                self.drained = false;
                Ok(None)
            }
        }
    }

    fn reset(&mut self) {
        self.l.reset();
        self.r.reset();
        self.drained = false;
    }
}

/// `e1 ; e2`.
pub fn seq(l: Gen, r: Gen) -> Gen {
    Box::new(SeqGen {
        l,
        r,
        drained: false,
    })
}

/// A trailing `;`: evaluate for side effects, produce nothing.
struct DiscardGen {
    e: Gen,
}

impl GenT for DiscardGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        while self.e.next(ctx)?.is_some() {}
        Ok(None)
    }

    fn reset(&mut self) {
        self.e.reset();
    }
}

/// `e ;`.
pub fn discard(e: Gen) -> Gen {
    Box::new(DiscardGen { e })
}

/// `e1 => e2` — "produces e2's values for each value of e1":
///
/// ```text
/// case IMPLY:
///   while (u = eval(n->kids[0]))
///     while (v = eval(n->kids[1])) yield v
/// ```
struct ImplyGen {
    l: Gen,
    r: Gen,
    active: bool,
}

impl GenT for ImplyGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        loop {
            if !self.active {
                match self.l.next(ctx)? {
                    Some(_) => self.active = true,
                    None => return Ok(None),
                }
            }
            match self.r.next(ctx)? {
                Some(v) => return Ok(Some(v)),
                None => self.active = false,
            }
        }
    }

    fn reset(&mut self) {
        self.l.reset();
        self.r.reset();
        self.active = false;
    }
}

/// `e1 => e2`.
pub fn imply(l: Gen, r: Gen) -> Gen {
    Box::new(ImplyGen {
        l,
        r,
        active: false,
    })
}
