//! `duel_eval` — the resumable generator evaluator.
//!
//! The paper implements generators by giving every AST node a `state`
//! field and a saved `value`, so that "each call to eval produces one of
//! the values" and the distinguished `NOVALUE` ends a sequence, after
//! which "the next call to eval re-evaluates the node". This module is a
//! direct transliteration:
//!
//! * every operator compiles to a small state machine implementing
//!   [`GenT`];
//! * `next` returns `Ok(Some(value))` for each produced value and
//!   `Ok(None)` for `NOVALUE`;
//! * on returning `None`, a generator rewinds its own state, so a parent
//!   that calls it again restarts it — exactly the paper's
//!   `n->state = 0` protocol;
//! * [`GenT::reset`] force-rewinds a generator mid-stream, which the
//!   paper's `select` needs (`n->kids[1]->state = 0`).
//!
//! The paper's `yield`-style pseudo-code for each operator is quoted in
//! the corresponding submodule.

mod basic;
mod control;
mod misc;
mod structure;

use std::sync::{
    atomic::{AtomicUsize, Ordering},
    Arc,
};

use crate::{ast::Expr, error::DuelResult, scope::Ctx, sym::SymMode, value::Value};

/// Evaluation options.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalOptions {
    /// Hard limit on values produced by one command (protects against
    /// `0..` runaways). The paper's implementation had no limit; ours
    /// reports [`crate::DuelError::LimitExceeded`].
    pub max_values: u64,
    /// Chains of `->name` steps at least this long display as
    /// `-->name[[n]]`. The paper's transcripts imply thresholds between
    /// 2 and 9; 4 matches most of them.
    pub compress_threshold: u32,
    /// Whether symbolic values are constructed (experiment E4 ablates
    /// this).
    pub sym_mode: SymMode,
    /// Guard `-->`/`-->>` against cycles with a visited set. The paper's
    /// implementation "does not handle cycles"; disabling this
    /// reproduces that behaviour (bounded by `max_values`).
    pub dfs_cycle_check: bool,
    /// Hard limit on evaluation *steps* (leaf-generator activations),
    /// bounding even loops that produce no values (`while (1) (1..0)`).
    /// Exhausting it reports [`crate::DuelError::BudgetExceeded`] with
    /// budget `"step"`.
    pub max_ticks: u64,
    /// Hard limit on generator nesting depth, bounding the native call
    /// stack against pathologically nested expressions. Budget
    /// `"depth"`.
    pub max_depth: u64,
    /// Hard limit on nodes visited per root value of a `-->`/`-->>`
    /// expansion — the backstop that terminates cyclic structures when
    /// [`EvalOptions::dfs_cycle_check`] is off. Budget `"expansion"`.
    pub max_expand: u64,
    /// Wall-clock deadline for one command, in milliseconds (0 = no
    /// deadline). Budget `"time"`.
    pub timeout_ms: u64,
    /// Render fault-class errors (unmapped memory, unknown symbols)
    /// that occur while *displaying* one value of a stream as
    /// `sym = <error: ...>` lines and keep the stream going, instead of
    /// aborting the command. Off by default: the paper's sessions stop
    /// at the first error.
    pub error_values: bool,
    /// Trace every generator resumption (the paper's `eval` calls) into
    /// the session's trace buffer — the Semantics section's evaluation
    /// walkthroughs, made observable.
    pub trace: bool,
    /// Generator-aware prefetch: when a generator is about to expand a
    /// compile-time-known contiguous range (`x[a..b]`, `x[..n]`) or
    /// walk freshly discovered structure nodes, warm the cache with one
    /// vectored read first, so the element-by-element scan that follows
    /// is served locally instead of one wire turn per element. Purely
    /// advisory (values and errors are identical either way); off by
    /// default so read-count-sensitive experiments are undisturbed.
    pub prefetch: bool,
    /// Prefetch window size in cache pages: a planner warm-up never
    /// reads more than this many pages in one call, so warming
    /// `x[..100000]` costs bounded memory instead of one giant buffer.
    /// When the tower has an I/O actor below the cache, windows are
    /// double-buffered: window *k+1* is on the wire while the evaluator
    /// consumes window *k*.
    pub prefetch_window: usize,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            max_values: 1_000_000,
            compress_threshold: 4,
            sym_mode: SymMode::Eager,
            dfs_cycle_check: true,
            max_ticks: 100_000_000,
            max_depth: 256,
            max_expand: 1_000_000,
            timeout_ms: 0,
            error_values: false,
            trace: false,
            prefetch: false,
            prefetch_window: 64,
        }
    }
}

/// A compiled generator node.
///
/// The contract mirrors the paper's `eval`:
/// * `next` yields the node's next value, or `None` when the sequence is
///   exhausted — after which the node has rewound itself and a further
///   `next` restarts the sequence;
/// * `reset` rewinds unconditionally (used by `select` and by reductions
///   that stop early).
pub trait GenT {
    /// Produces the next value of this generator.
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>>;

    /// Rewinds to the initial state.
    fn reset(&mut self);
}

/// A boxed generator.
pub type Gen = Box<dyn GenT>;

/// A wrapper that logs each resumption of its inner generator — one
/// line per `eval` call, exactly the paper's walkthrough of
/// `(1..3)+(5,9)`. Also the evaluator's *unified* span boundary: every
/// observer of node entry/exit hangs off this one seam. When profiling
/// is on, entry/exit snapshot the tick and wire-read counters so the
/// deltas can be charged to this node (see [`crate::profile`]); when
/// causal tracing is on, the same entry/exit opens and closes a
/// [`duel_target::SpanKind::Node`] span, so every wire event the
/// resumption triggers anywhere down the tower is attributed to this
/// AST node. A `ProfileReport` is thus a fold over the same enter/exit
/// stream the span ring records — the two views cannot drift apart.
struct TraceGen {
    /// Unique per compiled node; keys the node's profile row.
    id: usize,
    label: &'static str,
    /// Clipped symbolic text, e.g. `x[..256]`. Shared (`Arc<str>`)
    /// rather than owned: span details and profile rows borrow or
    /// cheaply clone it, so a node resumed a million times never
    /// re-allocates its own name.
    text: Arc<str>,
    inner: Gen,
}

/// Ids are process-global so nodes compiled mid-evaluation (the `-->`
/// template, `@` stop conditions) never collide with the main tree.
static NODE_IDS: AtomicUsize = AtomicUsize::new(0);

impl GenT for TraceGen {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> DuelResult<Option<Value>> {
        // Every compiled node passes through here, so the nesting depth
        // of `next` calls — and with it the native stack — is bounded
        // even when tracing is off.
        ctx.trace_depth += 1;
        if ctx.trace_depth as u64 > ctx.opts.max_depth {
            ctx.trace_depth -= 1;
            return Err(crate::error::DuelError::BudgetExceeded {
                budget: "depth".into(),
                limit: ctx.opts.max_depth,
                sym: self.label.to_string(),
            });
        }
        if ctx.trace_depth > ctx.max_depth_seen {
            ctx.max_depth_seen = ctx.trace_depth;
        }
        let profiling = ctx.profile.is_some();
        if profiling {
            ctx.profile_enter(self.id);
        }
        let span = ctx.span_enter(duel_target::SpanKind::Node, self.label, || {
            // Materialized only when a span is actually recorded.
            self.text.to_string()
        });
        let depth = ctx.trace_depth;
        let r = self.inner.next(ctx);
        ctx.trace_depth -= 1;
        let yielded = matches!(r, Ok(Some(_)));
        if yielded {
            ctx.yields += 1;
        }
        ctx.span_exit(span);
        if profiling {
            ctx.profile_exit(self.id, self.label, &self.text, yielded);
        }
        if ctx.opts.trace {
            let outcome = match &r {
                Ok(Some(v)) => {
                    let thr = ctx.opts.compress_threshold;
                    format!("yield {}", v.sym.render(thr))
                }
                Ok(None) => "NOVALUE".to_string(),
                Err(e) => format!("error: {e}"),
            };
            ctx.trace.push(format!(
                "{}eval({}) -> {}",
                "  ".repeat(depth - 1),
                self.label,
                outcome
            ));
        }
        r
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// The paper's operator name for an expression node.
fn op_label(e: &Expr) -> &'static str {
    use Expr::*;
    match e {
        Int(_) | Float(_) | Char(_) | Str(_) => "constant",
        Name(_) | Underscore => "name",
        To(..) | ToPrefix(..) | ToInf(..) => "to",
        Alt(..) => "alternate",
        Unary(..) | PreIncDec { .. } | PostIncDec { .. } => "unary",
        SizeofExpr(..) | SizeofType(..) => "sizeof",
        Cast(..) => "cast",
        Bin(..) => "binary",
        AndAnd(..) => "andand",
        OrOr(..) => "oror",
        Cond(..) | If(..) => "if",
        Assign(..) => "assign",
        Filter(..) => "ifcmp",
        Index(..) => "index",
        Select(..) => "select",
        With(..) => "with",
        Dfs(..) => "dfs",
        Bfs(..) => "bfs",
        Imply(..) => "imply",
        Seq(..) | Discard(..) => "sequence",
        While(..) => "while",
        For { .. } => "for",
        Alias(..) => "define",
        Decl { .. } => "declare",
        Call(..) => "call",
        Reduce(..) => "reduce",
        IndexAlias(..) => "index-alias",
        Until(..) => "until",
        Braced(..) => "substitute",
    }
}

/// Compiles an expression into its generator tree.
pub fn compile(e: &Expr) -> Gen {
    let label = op_label(e);
    let text: Arc<str> = crate::profile::clip(&crate::profile::expr_text(e), 48).into();
    let inner = compile_inner(e);
    Box::new(TraceGen {
        id: NODE_IDS.fetch_add(1, Ordering::Relaxed),
        label,
        text,
        inner,
    })
}

fn compile_inner(e: &Expr) -> Gen {
    use Expr::*;
    match e {
        Int(v) => basic::constant_int(*v),
        Float(v) => basic::constant_float(*v),
        Char(c) => basic::constant_char(*c),
        Str(s) => misc::string_literal(s.clone()),
        Name(n) => basic::name(n.clone()),
        Underscore => basic::name("_".to_string()),
        To(a, b) => basic::to(compile(a), compile(b)),
        ToPrefix(a) => basic::to_prefix(compile(a)),
        ToInf(a) => basic::to_inf(compile(a)),
        Alt(a, b) => basic::alternate(compile(a), compile(b)),
        Unary(op, a) => basic::unary(*op, compile(a)),
        PreIncDec { inc, expr } => misc::incdec(true, *inc, compile(expr)),
        PostIncDec { inc, expr } => misc::incdec(false, *inc, compile(expr)),
        SizeofExpr(a) => misc::sizeof_expr(compile(a)),
        SizeofType(t) => misc::sizeof_type(t.clone()),
        Cast(t, a) => misc::cast(t.clone(), compile(a)),
        Bin(op, a, b) => basic::binary(*op, compile(a), compile(b)),
        AndAnd(a, b) => control::andand(compile(a), compile(b)),
        OrOr(a, b) => control::oror(compile(a), compile(b)),
        Cond(c, a, b) => control::if_gen(compile(c), compile(a), Some(compile(b))),
        Assign(op, l, r) => misc::assign(*op, compile(l), compile(r)),
        Filter(op, a, b) => basic::filter(*op, compile(a), compile(b)),
        Index(a, b) => structure::index(compile(a), compile(b), range_hint(b)),
        Select(a, b) => structure::select(compile(a), compile(b)),
        With(link, a, b) => structure::with(*link, compile(a), compile(b)),
        Dfs(a, b) => structure::expand(compile(a), b.as_ref(), false),
        Bfs(a, b) => structure::expand(compile(a), b.as_ref(), true),
        Imply(a, b) => control::imply(compile(a), compile(b)),
        Seq(a, b) => control::seq(compile(a), compile(b)),
        Discard(a) => control::discard(compile(a)),
        If(c, t, f) => control::if_gen(compile(c), compile(t), f.as_ref().map(|f| compile(f))),
        While(c, b) => control::while_gen(compile(c), compile(b)),
        For {
            init,
            cond,
            step,
            body,
        } => control::for_gen(
            init.as_ref().map(|e| compile(e)),
            cond.as_ref().map(|e| compile(e)),
            step.as_ref().map(|e| compile(e)),
            compile(body),
        ),
        Alias(name, a) => misc::alias(name.clone(), compile(a)),
        Decl { base, decls } => misc::decl(base.clone(), decls.clone()),
        // Built-in pseudo-functions (extensions for the paper's
        // "unnamed portions of the program state" future work):
        // `frames()` generates the active frame indices, and
        // `local("x", k)` resolves a local in frame `k`.
        Call(name, args) if name == "frames" && args.is_empty() => misc::frames(),
        Call(name, args)
            if name == "local" && args.len() == 2 && matches!(args[0], Expr::Str(_)) =>
        {
            let var = match &args[0] {
                Expr::Str(s) => s.clone(),
                _ => unreachable!("guard checked"),
            };
            misc::local(var, compile(&args[1]))
        }
        // `equal(e1, e2)` — the paper's `(equality e1 e2)` reduction:
        // "returns 1 if the values produced by e1 are equal to those
        // produced by e2 and 0 otherwise". The paper names it without
        // giving concrete syntax; it is exposed as a builtin.
        Call(name, args) if name == "equal" && args.len() == 2 => {
            misc::seq_equal(compile(&args[0]), compile(&args[1]))
        }
        Call(name, args) => misc::call(name.clone(), args.iter().map(compile).collect()),
        Reduce(op, a) => misc::reduce(*op, compile(a)),
        IndexAlias(a, name) => structure::index_alias(compile(a), name.clone()),
        Until(a, stop) => structure::until(compile(a), stop),
        Braced(a) => misc::braced(compile(a)),
    }
}

/// Constant-folds an integer literal (allowing `-`/`+` prefixes), the
/// same closure the `@` stop operand uses.
fn const_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Char(c) => Some(*c as i64),
        Expr::Unary(crate::ast::UnOp::Neg, inner) => const_int(inner).map(|v| -v),
        Expr::Unary(crate::ast::UnOp::Pos, inner) => const_int(inner),
        _ => None,
    }
}

/// The prefetch planner's compile-time analysis: does this index
/// expression enumerate a known contiguous inclusive range? `x[a..b]`
/// yields `a..=b`; the prefix form `x[..n]` yields `0..=n-1`. Anything
/// data-dependent (filters, `a..`, computed bounds) gets no hint — the
/// demand path handles it exactly as before.
fn range_hint(e: &Expr) -> Option<(i64, i64)> {
    match e {
        Expr::To(a, b) => {
            let (lo, hi) = (const_int(a)?, const_int(b)?);
            (lo <= hi).then_some((lo, hi))
        }
        Expr::ToPrefix(n) => {
            let n = const_int(n)?;
            (n > 0).then_some((0, n - 1))
        }
        _ => None,
    }
}

/// Drives a generator to exhaustion, feeding each value to `f` — the
/// top-level `duel` command loop.
pub fn drive(
    ctx: &mut Ctx<'_>,
    gen: &mut Gen,
    mut f: impl FnMut(&mut Ctx<'_>, Value) -> DuelResult<()>,
) -> DuelResult<()> {
    while let Some(v) = gen.next(ctx)? {
        ctx.count_value()?;
        f(ctx, v)?;
    }
    Ok(())
}

/// Collects every value a generator produces (test/bench convenience).
pub fn collect(ctx: &mut Ctx<'_>, gen: &mut Gen) -> DuelResult<Vec<Value>> {
    let mut out = Vec::new();
    drive(ctx, gen, |_, v| {
        out.push(v);
        Ok(())
    })?;
    Ok(out)
}

/// Pulls the first value of a sub-generator and resets it — used by
/// operators whose operand is semantically single-valued (e.g. the `@`
/// stop condition).
pub(crate) fn first_value(ctx: &mut Ctx<'_>, gen: &mut Gen) -> DuelResult<Option<Value>> {
    let v = gen.next(ctx)?;
    if v.is_some() {
        gen.reset();
    }
    Ok(v)
}
