//! `duel-replay` — offline capture inspection.
//!
//! Postmortem tooling over flight-recorder captures (see `.record` in
//! the `duel` REPL): summarize a capture, dump its op timeline, and
//! rank the hottest memory regions, all without a live debuggee.
//!
//! ```sh
//! duel-replay session.jsonl              # summary + per-op stats
//! duel-replay session.jsonl --timeline   # last 20 events
//! duel-replay session.jsonl --timeline 100
//! duel-replay session.jsonl --perfetto out.json  # Chrome trace JSON
//! ```

use duel_target::capture::{Capture, CaptureCall};
use duel_target::trace::{fmt_ns, TraceEvent, TraceHandle};
use duel_target::{chrome_trace_json, SpanContext, SpanKind};

const USAGE: &str = "usage: duel-replay CAPTURE.jsonl [--timeline [N]] [--perfetto FILE]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let mut path = None;
    let mut timeline = None;
    let mut perfetto = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeline" => {
                timeline = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse::<usize>().ok())
                        .inspect(|_| i += 1)
                        .unwrap_or(20),
                );
            }
            "--perfetto" => {
                i += 1;
                match args.get(i) {
                    Some(f) => perfetto = Some(f.to_string()),
                    None => {
                        eprintln!("--perfetto needs a FILE\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            a if a.starts_with('-') => {
                eprintln!("unknown flag `{a}`\n{USAGE}");
                std::process::exit(2);
            }
            a => path = Some(a.to_string()),
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let cap = match Capture::load(&path) {
        Ok(cap) => cap,
        Err(e) => {
            eprintln!("cannot load `{path}`: {e}");
            std::process::exit(1);
        }
    };

    if let Some(out) = perfetto {
        export_perfetto(&out, &cap);
    } else if let Some(n) = timeline {
        print_timeline(&cap, n);
    } else {
        print_summary(&path, &cap);
    }
}

/// Converts a capture to Chrome trace-event JSON (loadable in
/// ui.perfetto.dev). Captures hold per-call latencies, not wall-clock
/// timestamps, so events are laid end to end on a synthetic timeline;
/// one `capture` root span covers the whole recording and every wire
/// event is attributed to it, keeping the ancestor-chain invariant the
/// live exporter guarantees.
fn export_perfetto(out: &str, cap: &Capture) {
    let spans = SpanContext::new(cap.events.len().max(1));
    spans.set_enabled(true);
    let trace = spans.begin_trace();
    let total_ns: u64 = cap.events.iter().map(|e| e.ns).sum();
    let h = &cap.header;
    let root = spans.record_closed(
        SpanKind::Root,
        "capture",
        || format!("{} / {}", h.backend, h.scenario),
        0,
        total_ns,
    );
    let mut ts = 0u64;
    let events: Vec<TraceEvent> = cap
        .events
        .iter()
        .map(|ev| {
            let e = TraceEvent {
                seq: ev.seq,
                op: ev.call.trace_op(),
                detail: ev.call.detail(),
                outcome: ev.reply.outcome(),
                nanos: ev.ns,
                ts_ns: ts,
                trace,
                span: root,
            };
            ts += ev.ns;
            e
        })
        .collect();
    let json = chrome_trace_json(&spans.snapshot(), &events);
    match std::fs::write(out, &json) {
        Ok(()) => {
            println!(
                "perfetto trace written to {out} ({} events, {} of recorded latency)",
                events.len(),
                fmt_ns(total_ns)
            );
        }
        Err(e) => {
            eprintln!("cannot write `{out}`: {e}");
            std::process::exit(1);
        }
    }
}

/// Renders one capture event in the `.trace dump` format.
fn render(ev: &duel_target::capture::CaptureEvent) -> String {
    TraceEvent {
        seq: ev.seq,
        op: ev.call.trace_op(),
        detail: ev.call.detail(),
        outcome: ev.reply.outcome(),
        nanos: ev.ns,
        ts_ns: 0,
        trace: 0,
        span: 0,
    }
    .render()
}

fn print_timeline(cap: &Capture, n: usize) {
    let skip = cap.events.len().saturating_sub(n);
    if skip > 0 {
        println!("... {skip} earlier event(s) ...");
    }
    for ev in cap.events.iter().skip(skip) {
        println!("{}", render(ev));
    }
}

fn print_summary(path: &str, cap: &Capture) {
    let h = &cap.header;
    println!("capture: {path}");
    println!(
        "  schema v{}, backend `{}`, scenario `{}`",
        h.schema_version, h.backend, h.scenario
    );
    println!(
        "  abi: {}-bit pointers, {}-endian, {} types in snapshot{}",
        h.abi.pointer_bytes * 8,
        match h.abi.endian {
            duel_ctype::Endian::Little => "little",
            duel_ctype::Endian::Big => "big",
        },
        cap.types().kinds.len(),
        if cap.footer_types.is_some() {
            ""
        } else {
            " (no footer: capture was not finalized)"
        }
    );
    let total_ns: u64 = cap.events.iter().map(|e| e.ns).sum();
    println!(
        "  {} events, {} of recorded backend latency",
        cap.events.len(),
        fmt_ns(total_ns)
    );

    // Feed the capture through the live TraceStats machinery so the
    // per-op table here and `.trace` in the REPL stay one code path.
    let handle = TraceHandle::new(cap.events.len().max(1));
    handle.set_enabled(true);
    for ev in &cap.events {
        handle.record_event(
            ev.call.trace_op(),
            ev.call.detail(),
            ev.reply.outcome(),
            ev.ns,
        );
    }
    let stats = handle.snapshot();
    println!("\nper-op stats:");
    for o in stats.ops.iter().filter(|o| o.calls > 0) {
        println!(
            "  {:<13} {:>8} calls {:>6} errors  mean {:>8}  p99 {:>8}",
            o.op.name(),
            o.calls,
            o.errors,
            fmt_ns(o.mean_ns()),
            fmt_ns(o.quantile_ns(0.99))
        );
    }

    // Hot-address table: accesses bucketed by 64-byte line.
    const BUCKET: u64 = 64;
    let mut heat: std::collections::HashMap<u64, (u64, u64)> = std::collections::HashMap::new();
    for ev in &cap.events {
        let (addr, len) = match &ev.call {
            CaptureCall::GetBytes { addr, len } => (*addr, *len),
            CaptureCall::PutBytes { addr, data } => (*addr, data.len() as u64),
            _ => continue,
        };
        let first = addr / BUCKET;
        let last = addr.saturating_add(len.saturating_sub(1)) / BUCKET;
        for b in first..=last {
            let slot = heat.entry(b * BUCKET).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += len.min(BUCKET);
        }
    }
    let mut hot: Vec<(u64, (u64, u64))> = heat.into_iter().collect();
    hot.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
    if !hot.is_empty() {
        println!("\nhot addresses (64-byte lines):");
        for (addr, (touches, bytes)) in hot.iter().take(10) {
            println!("  0x{addr:<10x} {touches:>6} touches {bytes:>8} bytes");
        }
    }
}
