//! `duel-replay` — offline capture inspection.
//!
//! Postmortem tooling over flight-recorder captures (see `.record` in
//! the `duel` REPL): summarize a capture, dump its op timeline, rank
//! the hottest memory regions, render the live `.top` view offline,
//! and run arbitrary DUEL meta-queries over the capture's telemetry —
//! all without a live debuggee.
//!
//! ```sh
//! duel-replay session.jsonl              # summary + per-op stats
//! duel-replay session.jsonl --timeline   # last 20 events
//! duel-replay session.jsonl --timeline 100
//! duel-replay session.jsonl --perfetto out.json  # Chrome trace JSON
//! duel-replay session.jsonl --top 10     # offline `.top`
//! duel-replay session.jsonl --query 'events[..nevents].lat_ns >? 1000'
//! ```

use std::fmt::Write as _;

use duel_cli::{render_top_report, Repl};
use duel_target::capture::{Capture, CaptureCall};
use duel_target::trace::{fmt_ns, TraceEvent, TraceHandle, TraceStats};
use duel_target::{
    chrome_trace_json, MetaCapture, MetaSnapshot, MetaTarget, MetricsRegistry, SpanContext,
    SpanKind,
};

const USAGE: &str = "usage: duel-replay CAPTURE.jsonl \
                     [--timeline [N]] [--perfetto FILE] [--top [N]] [--query EXPR]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let mut path = None;
    let mut timeline = None;
    let mut perfetto = None;
    let mut top = None;
    let mut query = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeline" => {
                timeline = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse::<usize>().ok())
                        .inspect(|_| i += 1)
                        .unwrap_or(20),
                );
            }
            "--top" => {
                top = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse::<usize>().ok())
                        .inspect(|_| i += 1)
                        .unwrap_or(10),
                );
            }
            "--perfetto" => {
                i += 1;
                match args.get(i) {
                    Some(f) => perfetto = Some(f.to_string()),
                    None => {
                        eprintln!("--perfetto needs a FILE\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--query" => {
                i += 1;
                match args.get(i) {
                    Some(e) => query = Some(e.to_string()),
                    None => {
                        eprintln!("--query needs an EXPR\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            a if a.starts_with('-') => {
                eprintln!("unknown flag `{a}`\n{USAGE}");
                std::process::exit(2);
            }
            a => path = Some(a.to_string()),
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let cap = match Capture::load(&path) {
        Ok(cap) => cap,
        Err(e) => {
            eprintln!("cannot load `{path}`: {e}");
            std::process::exit(1);
        }
    };

    if let Some(expr) = query {
        let (out, failed) = run_query(&cap, &expr);
        print!("{out}");
        if failed {
            std::process::exit(1);
        }
    } else if let Some(out) = perfetto {
        export_perfetto(&out, &cap);
    } else if let Some(n) = top {
        print!("{}", render_offline_top(&path, &cap, n));
    } else if let Some(n) = timeline {
        print_timeline(&cap, n);
    } else {
        print_summary(&path, &cap);
    }
}

/// Rebuilds live-telemetry shapes from a capture: a span context with
/// one `capture` root covering the recording, the events laid end to
/// end on a synthetic timeline (captures hold per-call latencies, not
/// wall-clock timestamps) and attributed to that root, and a
/// [`TraceHandle`] fed through the live `TraceStats` machinery — so
/// the offline views and the REPL's stay one code path.
fn synthesize(cap: &Capture) -> (SpanContext, Vec<TraceEvent>, TraceHandle) {
    let spans = SpanContext::new(cap.events.len().max(1));
    spans.set_enabled(true);
    let trace = spans.begin_trace();
    let total_ns: u64 = cap.events.iter().map(|e| e.ns).sum();
    let h = &cap.header;
    let root = spans.record_closed(
        SpanKind::Root,
        "capture",
        || format!("{} / {}", h.backend, h.scenario),
        0,
        total_ns,
    );
    let handle = TraceHandle::new(cap.events.len().max(1));
    handle.set_enabled(true);
    let mut ts = 0u64;
    let events: Vec<TraceEvent> = cap
        .events
        .iter()
        .map(|ev| {
            let op = ev.call.trace_op();
            let detail = ev.call.detail();
            let outcome = ev.reply.outcome();
            handle.record_event(op, detail.clone(), outcome, ev.ns);
            let e = TraceEvent {
                seq: ev.seq,
                op,
                detail,
                outcome,
                nanos: ev.ns,
                ts_ns: ts,
                trace,
                span: root,
            };
            ts += ev.ns;
            e
        })
        .collect();
    (spans, events, handle)
}

/// Charges a capture's per-op totals to a fresh metrics registry under
/// the same `wire.<op>.{calls,errors,ns}` names the live REPL's
/// `feed_metrics` uses, so offline meta-queries and counter tables
/// read identically to live ones.
fn wire_metrics(stats: &TraceStats) -> MetricsRegistry {
    let m = MetricsRegistry::new();
    for o in stats.ops.iter().filter(|o| o.calls > 0) {
        m.counter(&format!("wire.{}.calls", o.op.name()))
            .add(o.calls);
        if o.errors > 0 {
            m.counter(&format!("wire.{}.errors", o.op.name()))
                .add(o.errors);
        }
        m.counter(&format!("wire.{}.ns", o.op.name()))
            .add(o.total_ns);
    }
    m
}

/// The offline `.top`: hottest spans (here: the one capture root),
/// wire ops, and busiest counters, rendered by the same
/// [`render_top_report`] the live view uses.
fn render_offline_top(path: &str, cap: &Capture, n: usize) -> String {
    let (spans, _, handle) = synthesize(cap);
    let stats = handle.snapshot();
    let metrics = wire_metrics(&stats);
    let mut out = String::new();
    let _ = writeln!(out, "top — `{path}` ({} events)", cap.events.len());
    render_top_report(
        Some(&spans.snapshot()),
        &stats,
        &metrics.snapshot(),
        n,
        &mut out,
    );
    out
}

/// The offline `.query`: builds a [`MetaSnapshot`] from the capture's
/// synthesized telemetry (plus a `capture` root symbol holding the
/// header identity) and evaluates the DUEL expression against it.
/// Returns the rendered output and whether the query failed.
fn run_query(cap: &Capture, expr: &str) -> (String, bool) {
    let (spans, events, handle) = synthesize(cap);
    let metrics = wire_metrics(&handle.snapshot());
    let snap = MetaSnapshot {
        spans: spans.snapshot(),
        events,
        metrics: metrics.snapshot(),
        capture: Some(MetaCapture {
            backend: cap.header.backend.clone(),
            scenario: cap.header.scenario.clone(),
            events: cap.events.len() as u64,
        }),
        ..MetaSnapshot::default()
    };
    let mut meta = MetaTarget::new(&snap);
    let (lines, err) = duel_core::oneshot_lines(&mut meta, expr, &Repl::default_options());
    let mut out = String::new();
    for l in lines {
        let _ = writeln!(out, "{l}");
    }
    if let Some(e) = &err {
        let _ = writeln!(out, "{e}");
    }
    (out, err.is_some())
}

/// Converts a capture to Chrome trace-event JSON (loadable in
/// ui.perfetto.dev); a zero-event capture still yields a valid
/// (metadata-only) document.
fn export_perfetto(out: &str, cap: &Capture) {
    let (spans, events, _) = synthesize(cap);
    let total_ns: u64 = cap.events.iter().map(|e| e.ns).sum();
    let json = chrome_trace_json(&spans.snapshot(), &events);
    match std::fs::write(out, &json) {
        Ok(()) => {
            println!(
                "perfetto trace written to {out} ({} events, {} of recorded latency)",
                events.len(),
                fmt_ns(total_ns)
            );
        }
        Err(e) => {
            eprintln!("cannot write `{out}`: {e}");
            std::process::exit(1);
        }
    }
}

/// Renders one capture event in the `.trace dump` format.
fn render(ev: &duel_target::capture::CaptureEvent) -> String {
    TraceEvent {
        seq: ev.seq,
        op: ev.call.trace_op(),
        detail: ev.call.detail(),
        outcome: ev.reply.outcome(),
        nanos: ev.ns,
        ts_ns: 0,
        trace: 0,
        span: 0,
    }
    .render()
}

fn print_timeline(cap: &Capture, n: usize) {
    let skip = cap.events.len().saturating_sub(n);
    if skip > 0 {
        println!("... {skip} earlier event(s) ...");
    }
    for ev in cap.events.iter().skip(skip) {
        println!("{}", render(ev));
    }
}

fn print_summary(path: &str, cap: &Capture) {
    let h = &cap.header;
    println!("capture: {path}");
    println!(
        "  schema v{}, backend `{}`, scenario `{}`",
        h.schema_version, h.backend, h.scenario
    );
    println!(
        "  abi: {}-bit pointers, {}-endian, {} types in snapshot{}",
        h.abi.pointer_bytes * 8,
        match h.abi.endian {
            duel_ctype::Endian::Little => "little",
            duel_ctype::Endian::Big => "big",
        },
        cap.types().kinds.len(),
        if cap.footer_types.is_some() {
            ""
        } else {
            " (no footer: capture was not finalized)"
        }
    );
    let total_ns: u64 = cap.events.iter().map(|e| e.ns).sum();
    println!(
        "  {} events, {} of recorded backend latency",
        cap.events.len(),
        fmt_ns(total_ns)
    );

    let (_, _, handle) = synthesize(cap);
    let stats = handle.snapshot();
    println!("\nper-op stats:");
    for o in stats.ops.iter().filter(|o| o.calls > 0) {
        println!(
            "  {:<13} {:>8} calls {:>6} errors  mean {:>8}  p99 {:>8}",
            o.op.name(),
            o.calls,
            o.errors,
            fmt_ns(o.mean_ns()),
            fmt_ns(o.quantile_ns(0.99))
        );
    }

    // Hot-address table: accesses bucketed by 64-byte line.
    const BUCKET: u64 = 64;
    let mut heat: std::collections::HashMap<u64, (u64, u64)> = std::collections::HashMap::new();
    for ev in &cap.events {
        let (addr, len) = match &ev.call {
            CaptureCall::GetBytes { addr, len } => (*addr, *len),
            CaptureCall::PutBytes { addr, data } => (*addr, data.len() as u64),
            _ => continue,
        };
        let first = addr / BUCKET;
        let last = addr.saturating_add(len.saturating_sub(1)) / BUCKET;
        for b in first..=last {
            let slot = heat.entry(b * BUCKET).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += len.min(BUCKET);
        }
    }
    let mut hot: Vec<(u64, (u64, u64))> = heat.into_iter().collect();
    hot.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
    if !hot.is_empty() {
        println!("\nhot addresses (64-byte lines):");
        for (addr, (touches, bytes)) in hot.iter().take(10) {
            println!("  0x{addr:<10x} {touches:>6} touches {bytes:>8} bytes");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duel_target::json::Json;

    fn empty_capture() -> Capture {
        Capture {
            header: duel_target::capture::CaptureHeader {
                schema_version: 1,
                backend: "sim".into(),
                scenario: "combined".into(),
                abi: duel_ctype::Abi::lp64(),
                types: duel_ctype::TypeTable::new().snapshot(),
            },
            events: Vec::new(),
            footer_types: None,
        }
    }

    fn sample_capture() -> Capture {
        let mut cap = empty_capture();
        for (i, (addr, len, ns)) in [(0x1000u64, 8u64, 400u64), (0x1040, 16, 2600)]
            .iter()
            .enumerate()
        {
            cap.events.push(duel_target::capture::CaptureEvent {
                seq: i as u64,
                call: CaptureCall::GetBytes {
                    addr: *addr,
                    len: *len,
                },
                reply: duel_target::capture::CaptureReply::Bytes(vec![0; *len as usize]),
                ns: *ns,
            });
        }
        cap
    }

    #[test]
    fn zero_event_capture_exports_valid_perfetto_json() {
        let (spans, events, _) = synthesize(&empty_capture());
        let json = chrome_trace_json(&spans.snapshot(), &events);
        let doc = Json::parse(&json).expect("empty-capture chrome trace must parse");
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("traceEvents array missing in {json}");
        };
        let n = events.len();
        // The capture root span plus process/thread metadata only.
        assert!(n >= 1, "expected at least the root span, got {n}");
    }

    #[test]
    fn offline_top_shares_the_live_renderer() {
        let out = render_offline_top("x.jsonl", &sample_capture(), 10);
        assert!(out.contains("wire ops by total latency:"), "{out}");
        assert!(out.contains("get_bytes"), "{out}");
        assert!(out.contains("capture"), "{out}");
        assert!(out.contains("busiest counters:"), "{out}");
        assert!(out.contains("wire.get_bytes.calls"), "{out}");
    }

    #[test]
    fn query_counts_and_filters_capture_events() {
        let cap = sample_capture();
        let (out, failed) = run_query(&cap, "nevents");
        assert!(!failed, "{out}");
        assert!(out.contains('2'), "{out}");
        let (out, failed) = run_query(&cap, "events[..nevents].lat_ns >? 1000");
        assert!(!failed, "{out}");
        assert!(out.contains("2600"), "{out}");
        assert!(!out.contains("400"), "{out}");
        let (out, failed) = run_query(&cap, "capture.scenario");
        assert!(!failed, "{out}");
        assert!(out.contains("combined"), "{out}");
    }

    #[test]
    fn query_reports_parse_errors() {
        let (out, failed) = run_query(&sample_capture(), "][");
        assert!(failed);
        assert!(!out.is_empty());
    }
}
