#![warn(missing_docs)]

//! The REPL engine behind the `duel` binary.
//!
//! Lines starting with `.` are debugger commands (`.help` lists them);
//! anything else is a DUEL expression, evaluated as the paper's
//! `gdb> duel expr`. [`Repl::handle`] processes one line and appends the
//! output to a `String`, which is what makes the command surface
//! testable without a terminal.

use std::collections::HashMap;
use std::fmt::Write as _;

use duel_core::{EvalOptions, EvalStats, Session, SymMode, Value};
use duel_minic::{Debugger, StopReason};
use duel_target::{scenario, CacheConfig, CacheStats, CachedTarget, SimTarget, Target};

pub(crate) enum Backend {
    Sim(Box<CachedTarget<SimTarget>>),
    Minic(Box<CachedTarget<Debugger>>),
}

impl Backend {
    fn target_mut(&mut self) -> &mut dyn Target {
        match self {
            Backend::Sim(t) => &mut **t,
            Backend::Minic(d) => &mut **d,
        }
    }

    fn cache_stats(&self) -> &CacheStats {
        match self {
            Backend::Sim(t) => t.stats(),
            Backend::Minic(d) => d.stats(),
        }
    }

    fn set_cache(&mut self, on: bool) {
        match self {
            Backend::Sim(t) => t.set_enabled(on),
            Backend::Minic(d) => d.set_enabled(on),
        }
    }

    fn cache_config(enabled: bool) -> CacheConfig {
        CacheConfig {
            enabled,
            ..CacheConfig::default()
        }
    }

    fn sim(t: SimTarget, cache: bool) -> Backend {
        Backend::Sim(Box::new(CachedTarget::with_config(
            t,
            Backend::cache_config(cache),
        )))
    }

    fn minic(d: Debugger, cache: bool) -> Backend {
        Backend::Minic(Box::new(CachedTarget::with_config(
            d,
            Backend::cache_config(cache),
        )))
    }
}

/// The REPL engine: owns the debuggee backend, the DUEL aliases, and
/// the evaluation options; `handle` processes one input line and
/// appends its output to a sink, so the whole command surface is unit
/// testable.
pub struct Repl {
    backend: Backend,
    aliases: HashMap<String, Value>,
    options: EvalOptions,
    last_stats: EvalStats,
    cache_enabled: bool,
}

const HELP: &str = "\
DUEL commands:
  <expr>             evaluate a DUEL expression (try: x[..10] >? 5)
  .help              this message
  .scenario NAME     load a built-in debuggee: scan range hash full
                     violation lists tree argv combined
  .load FILE         compile FILE as mini-C and debug it
  .break N           set a breakpoint at line N
  .delete N          remove the breakpoint at line N
  .breaks            list breakpoints
  .run / .cont       run / continue the mini-C program
  .step              step one source line
  .watch EXPR        stop when the DUEL expression's values change
  .frames            show the stopped program's frames
  .ast EXPR          show the AST in the paper's LISP-like notation
  .stats             counters from the last evaluation + target cache
  .aliases           list DUEL aliases (`a := e`, declarations)
  .clear             drop all aliases
  .set trace on|off  log every generator resumption (the paper's eval)
  .set lazy|eager    symbolic-value construction (experiment E4)
  .set threshold N   `->a->a…` compression threshold (default 4)
  .set maxvalues N   value limit per command
  .set maxsteps N    step budget per command (also: --max-steps)
  .set maxdepth N    generator nesting budget (also: --max-depth)
  .set timeout N     per-command deadline in ms, 0 = off (--timeout-ms)
  .set errors tolerant|strict
                     render faults as <error: ...> values, or abort the
                     command at the first fault (default: tolerant)
  .set cache on|off  page-cache + lookup memoization over the debugger
                     wire (default: on; also: --no-cache)
  .quit              exit
";

impl Repl {
    /// Creates a REPL over the combined built-in scenario.
    pub fn new() -> Repl {
        Repl::with_options(Repl::default_options())
    }

    /// Creates a REPL with explicit evaluation options (the binary
    /// feeds the `--max-steps`/`--max-depth`/`--timeout-ms` flags
    /// through here).
    pub fn with_options(options: EvalOptions) -> Repl {
        Repl::with_config(options, true)
    }

    /// Creates a REPL with explicit options and an initial caching
    /// state (`--no-cache` passes `cache_enabled = false`).
    pub fn with_config(options: EvalOptions, cache_enabled: bool) -> Repl {
        Repl {
            backend: Backend::sim(scenario::combined(), cache_enabled),
            aliases: HashMap::new(),
            options,
            last_stats: EvalStats::default(),
            cache_enabled,
        }
    }

    /// The REPL's default options: like [`EvalOptions::default`], but
    /// fault-tolerant — an unreadable element of a stream prints as
    /// `<error: ...>` and the session keeps going, since an interactive
    /// debugging session should not lose the rest of a scan to one bad
    /// pointer.
    pub fn default_options() -> EvalOptions {
        EvalOptions {
            error_values: true,
            ..EvalOptions::default()
        }
    }

    fn eval(&mut self, line: &str, out: &mut String) {
        let session = Session::with_state(
            self.backend.target_mut(),
            std::mem::take(&mut self.aliases),
            self.options.clone(),
        );
        let mut session = session;
        match session.eval_partial(line) {
            Ok((lines, err)) => {
                for l in duel_core::session::render_lines(&lines) {
                    let _ = writeln!(out, "{l}");
                }
                if let Some(e) = err {
                    let _ = writeln!(out, "{e}");
                }
            }
            Err(e) => {
                let _ = writeln!(out, "{e}");
            }
        }
        self.last_stats = session.last_stats();
        for line in session.take_trace() {
            let _ = writeln!(out, "| {line}");
        }
        self.aliases = session.into_aliases();
    }

    fn command(&mut self, line: &str, out: &mut String) -> bool {
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("");
        match cmd {
            ".quit" | ".q" | ".exit" => return false,
            ".help" | ".h" => out.push_str(HELP),
            ".scenario" => {
                let t = match arg {
                    "scan" => Some(scenario::scan_array()),
                    "range" => Some(scenario::range_array()),
                    "hash" => Some(scenario::hash_table_basic()),
                    "full" => Some(scenario::hash_table_full()),
                    "violation" => Some(scenario::hash_table_sorted_violation()),
                    "lists" => Some(scenario::linked_lists()),
                    "tree" => Some(scenario::binary_tree()),
                    "argv" => Some(scenario::argv_strings()),
                    "combined" | "" => Some(scenario::combined()),
                    other => {
                        let _ = writeln!(out, "unknown scenario `{other}`");
                        None
                    }
                };
                if let Some(t) = t {
                    self.backend = Backend::sim(t, self.cache_enabled);
                    self.aliases.clear();
                    let _ = writeln!(out, "scenario loaded; aliases cleared");
                }
            }
            ".load" => match std::fs::read_to_string(arg) {
                Ok(src) => match Debugger::new(&src) {
                    Ok(d) => {
                        self.backend = Backend::minic(d, self.cache_enabled);
                        self.aliases.clear();
                        let _ = writeln!(out, "compiled `{arg}`; set breakpoints and .run");
                    }
                    Err(e) => {
                        let _ = writeln!(out, "compile error: {e}");
                    }
                },
                Err(e) => {
                    let _ = writeln!(out, "cannot read `{arg}`: {e}");
                }
            },
            ".break" | ".delete" | ".breaks" | ".run" | ".cont" | ".step" | ".frames"
            | ".watch" => {
                let rest = line.split_once(' ').map(|x| x.1).unwrap_or("").to_string();
                self.debugger_command(cmd, if cmd == ".watch" { &rest } else { arg }, out)
            }
            ".ast" => {
                let expr = line.split_once(' ').map(|x| x.1).unwrap_or("");
                let mut session = Session::with_state(
                    self.backend.target_mut(),
                    std::mem::take(&mut self.aliases),
                    self.options.clone(),
                );
                match session.parse(expr) {
                    Ok(ast) => {
                        let _ = writeln!(out, "{}", duel_core::to_sexpr(&ast));
                    }
                    Err(e) => {
                        let _ = writeln!(out, "{e}");
                    }
                }
                self.aliases = session.into_aliases();
            }
            ".stats" => {
                let _ = writeln!(
                    out,
                    "values: {}, ticks: {}",
                    self.last_stats.values, self.last_stats.ticks
                );
                let c = self.backend.cache_stats();
                let _ = writeln!(
                    out,
                    "cache: {} ({} page hits, {} misses, {} backend reads, {} bytes over the wire)",
                    if self.cache_enabled { "on" } else { "off" },
                    c.page_hits,
                    c.page_misses,
                    c.backend_reads,
                    c.wire_bytes
                );
                let _ = writeln!(
                    out,
                    "lookups: {} memoized, {} fetched; {} invalidations",
                    c.lookup_hits, c.lookup_misses, c.invalidations
                );
            }
            ".aliases" => {
                let mut names: Vec<&String> = self.aliases.keys().collect();
                names.sort();
                for n in names {
                    let _ = writeln!(out, "{n}");
                }
            }
            ".clear" => {
                self.aliases.clear();
                let _ = writeln!(out, "aliases cleared");
            }
            ".set" => {
                let val = line.split_whitespace().nth(2).unwrap_or("");
                match arg {
                    "trace" => {
                        self.options.trace = val == "on";
                    }
                    "lazy" => self.options.sym_mode = SymMode::Lazy,
                    "eager" => self.options.sym_mode = SymMode::Eager,
                    "threshold" => {
                        if let Ok(n) = val.parse() {
                            self.options.compress_threshold = n;
                        }
                    }
                    "maxvalues" => {
                        if let Ok(n) = val.parse() {
                            self.options.max_values = n;
                        }
                    }
                    "maxsteps" => {
                        if let Ok(n) = val.parse() {
                            self.options.max_ticks = n;
                        }
                    }
                    "maxdepth" => {
                        if let Ok(n) = val.parse() {
                            self.options.max_depth = n;
                        }
                    }
                    "timeout" => {
                        if let Ok(n) = val.parse() {
                            self.options.timeout_ms = n;
                        }
                    }
                    "errors" => {
                        self.options.error_values = val != "strict";
                    }
                    "cache" => {
                        self.cache_enabled = val != "off";
                        self.backend.set_cache(self.cache_enabled);
                    }
                    other => {
                        let _ = writeln!(out, "unknown option `{other}`");
                    }
                }
            }
            other => {
                let _ = writeln!(out, "unknown command `{other}` (try .help)");
            }
        }
        true
    }

    fn debugger_command(&mut self, cmd: &str, arg: &str, out: &mut String) {
        let cache = match &mut self.backend {
            Backend::Minic(d) => d,
            Backend::Sim(_) => {
                let _ = writeln!(out, "no program loaded (use `.load file.c` first)");
                return;
            }
        };
        match cmd {
            ".break" => match arg.parse::<u32>() {
                Ok(n) => {
                    cache.inner_mut().add_breakpoint(n);
                    let _ = writeln!(out, "breakpoint at line {n}");
                }
                Err(_) => {
                    let _ = writeln!(out, "usage: .break LINE");
                }
            },
            ".delete" => {
                if let Ok(n) = arg.parse::<u32>() {
                    cache.inner_mut().remove_breakpoint(n);
                }
            }
            ".breaks" => {
                let _ = writeln!(out, "{:?}", cache.inner_mut().breakpoints());
            }
            ".watch" => {
                if arg.is_empty() {
                    {
                        let _ = writeln!(out, "usage: .watch EXPR");
                    };
                } else {
                    cache.inner_mut().add_watchpoint(arg);
                    let _ = writeln!(out, "watching `{arg}`");
                }
            }
            ".run" | ".cont" => {
                let dbg = cache.inner_mut();
                let r = if cmd == ".run" { dbg.run() } else { dbg.cont() };
                match r {
                    Ok(StopReason::Breakpoint { line }) => {
                        let _ = writeln!(out, "breakpoint hit at line {line}");
                    }
                    Ok(StopReason::Step { line }) => {
                        let _ = writeln!(out, "stopped at line {line}");
                    }
                    Ok(StopReason::Watchpoint { line }) => {
                        let _ = writeln!(out, "watchpoint fired at line {line}");
                    }
                    Ok(StopReason::Exited { code }) => {
                        let _ = writeln!(out, "program exited with code {code}");
                    }
                    Err(e) => {
                        let _ = writeln!(out, "runtime error: {e}");
                    }
                }
                let prog_out = dbg.take_output();
                if !prog_out.is_empty() {
                    out.push_str(&prog_out);
                }
                // The program ran: everything cached at the previous
                // stop is suspect.
                cache.invalidate_all();
            }
            ".step" => {
                match cache.inner_mut().step_line() {
                    Ok(StopReason::Step { line }) => {
                        let _ = writeln!(out, "line {line}");
                    }
                    Ok(StopReason::Exited { code }) => {
                        let _ = writeln!(out, "program exited with code {code}");
                    }
                    Ok(other) => {
                        let _ = writeln!(out, "{other:?}");
                    }
                    Err(e) => {
                        let _ = writeln!(out, "runtime error: {e}");
                    }
                }
                cache.invalidate_all();
            }
            ".frames" => {
                let n = cache.frame_count();
                for i in 0..n {
                    if let Some(f) = cache.frame_info(i) {
                        let line = f.line.map(|l| format!(" at line {l}")).unwrap_or_default();
                        let _ = writeln!(out, "#{i} {}{}", f.function, line);
                    }
                }
            }
            _ => unreachable!("dispatched by caller"),
        }
    }
}

impl Repl {
    /// Processes one input line, appending output; returns `false` when
    /// the user quits.
    pub fn handle(&mut self, line: &str, out: &mut String) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return true;
        }
        if line.starts_with('.') {
            self.command(line, out)
        } else {
            self.eval(line, out);
            true
        }
    }
}

impl Default for Repl {
    fn default() -> Repl {
        Repl::new()
    }
}

/// Usage string for the `duel` binary.
pub const USAGE: &str =
    "usage: duel [--max-steps N] [--max-depth N] [--timeout-ms N] [--no-cache] [program.c]";

/// Parses the binary's command line: resource-budget flags, the
/// `--no-cache` switch (disable the target page cache + lookup
/// memoization), plus an optional mini-C program path. Accepts both
/// `--flag N` and `--flag=N` spellings. Returns `(options, path,
/// cache_enabled)`.
pub fn parse_args(args: &[String]) -> Result<(EvalOptions, Option<String>, bool), String> {
    let mut options = Repl::default_options();
    let mut path = None;
    let mut cache = true;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        match name {
            "--max-steps" | "--max-depth" | "--timeout-ms" => {
                let val = match inline {
                    Some(v) => v,
                    None => {
                        i += 1;
                        args.get(i)
                            .cloned()
                            .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))?
                    }
                };
                let n: u64 = val
                    .parse()
                    .map_err(|_| format!("invalid value `{val}` for {name}\n{USAGE}"))?;
                match name {
                    "--max-steps" => options.max_ticks = n,
                    "--max-depth" => options.max_depth = n,
                    _ => options.timeout_ms = n,
                }
            }
            "--no-cache" => cache = false,
            _ if name.starts_with('-') => {
                return Err(format!("unknown flag `{name}`\n{USAGE}"));
            }
            _ => path = Some(arg.clone()),
        }
        i += 1;
    }
    Ok((options, path, cache))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(lines: &[&str]) -> String {
        let mut r = Repl::new();
        let mut out = String::new();
        for l in lines {
            r.handle(l, &mut out);
        }
        out
    }

    #[test]
    fn evaluates_expressions() {
        let out = run(&["x[1..4,8,12..50] >? 5 <? 10"]);
        assert_eq!(out, "x[3] = 7\nx[18] = 9\nx[47] = 6\n");
    }

    #[test]
    fn aliases_persist_across_lines() {
        let out = run(&["v := 40 + 2 ;", "v * 2"]);
        assert!(out.contains("84"), "{out}");
    }

    #[test]
    fn scenario_switching_clears_aliases() {
        let out = run(&["v := 1 ;", ".scenario tree", "v"]);
        assert!(out.contains("scenario loaded"), "{out}");
        assert!(out.contains("`v` is not defined"), "{out}");
    }

    #[test]
    fn ast_and_stats_commands() {
        let out = run(&[".ast a*5 + *b", "1..3", ".stats"]);
        assert!(
            out.contains("(plus (multiply (name \"a\") (constant 5)) (indirect (name \"b\")))"),
            "{out}"
        );
        assert!(out.contains("values: 3"), "{out}");
    }

    #[test]
    fn debugger_commands_require_a_program() {
        let out = run(&[".run"]);
        assert!(out.contains("no program loaded"), "{out}");
    }

    #[test]
    fn set_options() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".set lazy", &mut out);
        r.handle("x[1..3] >? 0", &mut out);
        // Lazy mode: values only, no symbolic paths.
        assert!(out.contains("101\n102\n"), "{out}");
        r.handle(".set threshold 2", &mut out);
        assert_eq!(r.options.compress_threshold, 2);
    }

    #[test]
    fn quit_returns_false() {
        let mut r = Repl::new();
        let mut out = String::new();
        assert!(!r.handle(".quit", &mut out));
        assert!(r.handle("1+1", &mut out));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let out = run(&["nonesuch", "1 +", ".bogus"]);
        assert!(out.contains("`nonesuch` is not defined"), "{out}");
        assert!(out.contains("syntax error"), "{out}");
        assert!(out.contains("unknown command"), "{out}");
    }

    #[test]
    fn budget_errors_name_the_budget() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".set maxsteps 500", &mut out);
        r.handle("while (1) 1 ;", &mut out);
        assert!(out.contains("step budget of 500"), "{out}");
        out.clear();
        r.handle(".set maxdepth 4", &mut out);
        r.handle("1+(2+(3+(4+(5+6))))", &mut out);
        assert!(out.contains("depth budget of 4"), "{out}");
    }

    #[test]
    fn parse_args_flags_and_path() {
        let args: Vec<String> = ["--max-steps", "1000", "--timeout-ms=250", "prog.c"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (o, p, cache) = parse_args(&args).unwrap();
        assert_eq!(o.max_ticks, 1000);
        assert_eq!(o.timeout_ms, 250);
        assert!(o.error_values, "the REPL defaults to tolerant errors");
        assert_eq!(p.as_deref(), Some("prog.c"));
        assert!(cache, "caching defaults to on");

        let (o, p, cache) = parse_args(&[]).unwrap();
        assert_eq!(o.max_ticks, EvalOptions::default().max_ticks);
        assert!(p.is_none());
        assert!(cache);

        let (_, _, cache) = parse_args(&["--no-cache".to_string()]).unwrap();
        assert!(!cache);
    }

    #[test]
    fn parse_args_rejects_bad_input() {
        let e = parse_args(&["--max-steps".to_string()]).unwrap_err();
        assert!(e.contains("needs a value"), "{e}");
        let e = parse_args(&["--max-depth".to_string(), "x".to_string()]).unwrap_err();
        assert!(e.contains("invalid value"), "{e}");
        let e = parse_args(&["--bogus".to_string()]).unwrap_err();
        assert!(e.contains("unknown flag"), "{e}");
    }

    #[test]
    fn stats_reports_cache_counters() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle("x[..10]", &mut out);
        out.clear();
        r.handle(".stats", &mut out);
        assert!(out.contains("cache: on"), "{out}");
        assert!(out.contains("backend reads"), "{out}");
        r.handle(".set cache off", &mut out);
        out.clear();
        r.handle(".stats", &mut out);
        assert!(out.contains("cache: off"), "{out}");
    }

    #[test]
    fn cached_and_uncached_evaluation_agree() {
        let queries = ["x[1..4,8,12..50] >? 5 <? 10", "#/(head-->next)"];
        let mut cached = Repl::with_config(Repl::default_options(), true);
        let mut plain = Repl::with_config(Repl::default_options(), false);
        for q in queries {
            let (mut a, mut b) = (String::new(), String::new());
            cached.handle(q, &mut a);
            plain.handle(q, &mut b);
            assert_eq!(a, b, "`{q}` must not change under caching");
        }
    }

    #[test]
    fn no_cache_repl_passes_reads_through() {
        let mut r = Repl::with_config(Repl::default_options(), false);
        let mut out = String::new();
        r.handle("x[..10]", &mut out);
        out.clear();
        r.handle(".stats", &mut out);
        assert!(out.contains("cache: off"), "{out}");
        assert!(out.contains("0 page hits"), "{out}");
    }

    #[test]
    fn minic_resume_invalidates_the_cache() {
        // A stepped program mutates memory; the REPL must bump the
        // cache epoch at every stop so DUEL reads stay fresh.
        let src = "int g;\nint main() {\n  g = 1;\n  g = 2;\n  g = 3;\n  return 0;\n}\n";
        let dir = std::env::temp_dir().join("duel-cli-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("steps.c");
        std::fs::write(&path, src).unwrap();
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(&format!(".load {}", path.display()), &mut out);
        assert!(out.contains("compiled"), "{out}");
        r.handle(".break 4", &mut out);
        r.handle(".run", &mut out);
        out.clear();
        r.handle("g", &mut out);
        assert_eq!(out.trim_end(), "1", "{out}");
        r.handle(".step", &mut out);
        out.clear();
        r.handle("g", &mut out);
        assert_eq!(out.trim_end(), "2", "stale cached g after step: {out}");
    }

    #[test]
    fn trace_mode_prints_eval_steps() {
        let out = run(&[".set trace on", "(1..2)+(5,9)"]);
        assert!(out.contains("eval(binary) -> yield 1+5"), "{out}");
        assert!(out.contains("eval(alternate) -> NOVALUE"), "{out}");
    }
}
