#![warn(missing_docs)]

//! The REPL engine behind the `duel` binary.
//!
//! Lines starting with `.` are debugger commands (`.help` lists them);
//! anything else is a DUEL expression, evaluated as the paper's
//! `gdb> duel expr`. [`Repl::handle`] processes one line and appends the
//! output to a `String`, which is what makes the command surface
//! testable without a terminal.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use duel_core::{DuelError, EvalOptions, EvalStats, Session, SymMode, Value};
use duel_minic::{Debugger, StopReason};
use duel_target::{
    chrome_trace_json, folded_stacks, scenario, AsyncTarget, CacheConfig, CacheStats, CachedTarget,
    ChaosHandle, ChaosTarget, CircuitState, FlameWeight, MetaCapture, MetaSnapshot, MetaTarget,
    MetricsRegistry, MetricsSnapshot, PipelineStats, RecordTarget, ReplayMode, ReplayTarget,
    ResyncReport, RetryStats, RetryTarget, SimTarget, SpanContext, SpanSnapshot, SupervisedTarget,
    SupervisorStats, Target, TargetResult, TraceHandle, TraceStats, TraceTarget,
};

/// The REPL's decorator tower: tracing outermost (so its counters see
/// the evaluator's traffic, cache hits included), the backend
/// supervisor next (circuit breaker, degraded stale reads, reconnect —
/// it watches the *retried* failure stream, so one window entry per
/// operation), retry under it, the page cache over the flight recorder,
/// the recorder directly over the backend. Record sits *innermost* so a
/// capture holds the calls that actually reached the backend — cache
/// hits never hollow it out — and it is a pure passthrough until
/// `.record` arms it.
type Tower<T> = TraceTarget<SupervisedTarget<RetryTarget<CachedTarget<RecordTarget<T>>>>>;

pub(crate) enum Backend {
    /// Simulated debuggees carry a chaos gate innermost so `.chaos`
    /// can kill/hang/garble the "wire" under the whole tower, and an
    /// I/O actor ([`AsyncTarget`]) between the recorder and the gate
    /// so `.set pipeline on` can move the wire onto a worker thread.
    /// The chaos handle is cached at construction: once the actor is
    /// live the gate itself is owned by the worker and unreachable
    /// from this thread (the handle is `Arc`-shared, so it still
    /// steers it).
    Sim(Box<Tower<AsyncTarget<ChaosTarget<SimTarget>>>>, ChaosHandle),
    Minic(Box<Tower<Debugger>>),
    Replay(Box<Tower<ReplayTarget>>),
}

impl Backend {
    fn target_mut(&mut self) -> &mut dyn Target {
        match self {
            Backend::Sim(t, _) => &mut **t,
            Backend::Minic(d) => &mut **d,
            Backend::Replay(r) => &mut **r,
        }
    }

    fn trace(&self) -> TraceHandle {
        match self {
            Backend::Sim(t, _) => t.handle(),
            Backend::Minic(d) => d.handle(),
            Backend::Replay(r) => r.handle(),
        }
    }

    /// The causal span context of the tower's trace layer (replaced
    /// together with the backend by `.scenario`/`.load`/`.replay`).
    fn spans(&self) -> SpanContext {
        match self {
            Backend::Sim(t, _) => t.spans(),
            Backend::Minic(d) => d.spans(),
            Backend::Replay(r) => r.spans(),
        }
    }

    fn retry_stats(&self) -> RetryStats {
        match self {
            Backend::Sim(t, _) => t.inner().inner().stats(),
            Backend::Minic(d) => d.inner().inner().stats(),
            Backend::Replay(r) => r.inner().inner().stats(),
        }
    }

    fn cache_stats(&self) -> &CacheStats {
        match self {
            Backend::Sim(t, _) => t.inner().inner().inner().stats(),
            Backend::Minic(d) => d.inner().inner().inner().stats(),
            Backend::Replay(r) => r.inner().inner().inner().stats(),
        }
    }

    fn resident_page_count(&self) -> usize {
        match self {
            Backend::Sim(t, _) => t.inner().inner().inner().resident_page_count(),
            Backend::Minic(d) => d.inner().inner().inner().resident_page_count(),
            Backend::Replay(r) => r.inner().inner().inner().resident_page_count(),
        }
    }

    fn set_cache(&mut self, on: bool) {
        match self {
            Backend::Sim(t, _) => t.inner_mut().inner_mut().inner_mut().set_enabled(on),
            Backend::Minic(d) => d.inner_mut().inner_mut().inner_mut().set_enabled(on),
            Backend::Replay(r) => r.inner_mut().inner_mut().inner_mut().set_enabled(on),
        }
    }

    // ----- supervision (the layer under trace) ---------------------------

    fn circuit_state(&self) -> CircuitState {
        match self {
            Backend::Sim(t, _) => t.inner().state(),
            Backend::Minic(d) => d.inner().state(),
            Backend::Replay(r) => r.inner().state(),
        }
    }

    fn supervise_stats(&self) -> SupervisorStats {
        match self {
            Backend::Sim(t, _) => t.inner().stats(),
            Backend::Minic(d) => d.inner().stats(),
            Backend::Replay(r) => r.inner().stats(),
        }
    }

    fn degrade_enabled(&self) -> bool {
        match self {
            Backend::Sim(t, _) => t.inner().config().degrade,
            Backend::Minic(d) => d.inner().config().degrade,
            Backend::Replay(r) => r.inner().config().degrade,
        }
    }

    fn set_degrade(&mut self, on: bool) {
        match self {
            Backend::Sim(t, _) => t.inner_mut().set_degrade(on),
            Backend::Minic(d) => d.inner_mut().set_degrade(on),
            Backend::Replay(r) => r.inner_mut().set_degrade(on),
        }
    }

    fn health_check(&mut self) -> TargetResult<()> {
        match self {
            Backend::Sim(t, _) => t.inner_mut().health_check(),
            Backend::Minic(d) => d.inner_mut().health_check(),
            Backend::Replay(r) => r.inner_mut().health_check(),
        }
    }

    fn force_reconnect(&mut self) -> TargetResult<ResyncReport> {
        match self {
            Backend::Sim(t, _) => t.inner_mut().force_reconnect(),
            Backend::Minic(d) => d.inner_mut().force_reconnect(),
            Backend::Replay(r) => r.inner_mut().force_reconnect(),
        }
    }

    fn last_resync(&self) -> Option<ResyncReport> {
        match self {
            Backend::Sim(t, _) => t.inner().last_resync().cloned(),
            Backend::Minic(d) => d.inner().last_resync().cloned(),
            Backend::Replay(r) => r.inner().last_resync().cloned(),
        }
    }

    fn last_failure(&self) -> Option<String> {
        match self {
            Backend::Sim(t, _) => t.inner().last_failure().map(str::to_string),
            Backend::Minic(d) => d.inner().last_failure().map(str::to_string),
            Backend::Replay(r) => r.inner().last_failure().map(str::to_string),
        }
    }

    /// Arms (or clears) the per-command wall-clock deadline on the
    /// retry layer, so backoff sleeps can never overshoot the eval
    /// timeout budget by a full backoff ceiling.
    fn set_op_deadline(&mut self, deadline: Option<Instant>) {
        match self {
            Backend::Sim(t, _) => t.inner_mut().inner_mut().set_op_deadline(deadline),
            Backend::Minic(d) => d.inner_mut().inner_mut().set_op_deadline(deadline),
            Backend::Replay(r) => r.inner_mut().inner_mut().set_op_deadline(deadline),
        }
    }

    /// The chaos gate of a simulated backend (`.chaos` commands). The
    /// handle was cloned at construction, so it works whether the gate
    /// lives on this thread (inline) or inside the I/O actor.
    fn chaos(&self) -> Option<ChaosHandle> {
        match self {
            Backend::Sim(_, h) => Some(h.clone()),
            _ => None,
        }
    }

    /// Moves the simulated backend's wire on or off the I/O actor
    /// thread. Returns `false` for backends without an actor layer:
    /// mini-C (the debugger needs direct access for `.run`/`.step`)
    /// and replay (a capture is consulted strictly in order, so an
    /// actor would buy nothing) stay inline.
    fn set_pipeline(&mut self, on: bool) -> bool {
        match self {
            Backend::Sim(t, _) => {
                t.inner_mut()
                    .inner_mut()
                    .inner_mut()
                    .inner_mut()
                    .inner_mut()
                    .set_async(on);
                true
            }
            _ => false,
        }
    }

    /// Live counters of the pipeline layer, when the tower has one.
    fn pipeline_stats(&self) -> Option<PipelineStats> {
        match self {
            Backend::Sim(t, _) => t.pipeline_handle().map(|h| h.stats()),
            Backend::Minic(d) => d.pipeline_handle().map(|h| h.stats()),
            Backend::Replay(r) => r.pipeline_handle().map(|h| h.stats()),
        }
    }

    /// The backend label written into capture headers.
    fn label(&self) -> &'static str {
        match self {
            Backend::Sim(..) => "sim",
            Backend::Minic(_) => "minic",
            Backend::Replay(_) => "replay",
        }
    }

    /// Arms the flight recorder. The page cache is invalidated first so
    /// the capture starts cold: a capture that begins against a warm
    /// cache would be missing the reads a cold replay re-issues.
    fn record_start(&mut self, path: &str, scenario: &str) -> std::io::Result<()> {
        let label = self.label();
        fn go<T: Target>(
            cache: &mut CachedTarget<RecordTarget<T>>,
            path: &str,
            label: &str,
            scenario: &str,
        ) -> std::io::Result<()> {
            cache.invalidate_all();
            cache.inner_mut().start_file(path, label, scenario)
        }
        match self {
            Backend::Sim(t, _) => go(t.inner_mut().inner_mut().inner_mut(), path, label, scenario),
            Backend::Minic(d) => go(d.inner_mut().inner_mut().inner_mut(), path, label, scenario),
            Backend::Replay(r) => go(r.inner_mut().inner_mut().inner_mut(), path, label, scenario),
        }
    }

    /// Finalizes the capture (footer + flush); returns events written.
    fn record_stop(&mut self) -> std::io::Result<u64> {
        match self {
            Backend::Sim(t, _) => t.inner_mut().inner_mut().inner_mut().inner_mut().stop(),
            Backend::Minic(d) => d.inner_mut().inner_mut().inner_mut().inner_mut().stop(),
            Backend::Replay(r) => r.inner_mut().inner_mut().inner_mut().inner_mut().stop(),
        }
    }

    /// (recording?, events written, sticky sink error).
    fn record_info(&self) -> (bool, u64, Option<String>) {
        fn info<T: Target>(r: &RecordTarget<T>) -> (bool, u64, Option<String>) {
            (
                r.is_recording(),
                r.events_recorded(),
                r.last_error().map(str::to_string),
            )
        }
        match self {
            Backend::Sim(t, _) => info(t.inner().inner().inner().inner()),
            Backend::Minic(d) => info(d.inner().inner().inner().inner()),
            Backend::Replay(r) => info(r.inner().inner().inner().inner()),
        }
    }

    /// The replay target, when this backend is a replay session.
    fn replay(&self) -> Option<&ReplayTarget> {
        match self {
            Backend::Replay(r) => Some(r.inner().inner().inner().inner().inner()),
            _ => None,
        }
    }

    fn cache_config(enabled: bool) -> CacheConfig {
        CacheConfig {
            enabled,
            ..CacheConfig::default()
        }
    }

    fn tower<T: Target>(t: T, cache: bool) -> Tower<T> {
        TraceTarget::with_label(
            SupervisedTarget::new(RetryTarget::new(CachedTarget::with_config(
                RecordTarget::new(t),
                Backend::cache_config(cache),
            ))),
            "session",
        )
    }

    fn sim(t: SimTarget, cache: bool) -> Backend {
        let gate = ChaosTarget::new(t);
        let chaos = gate.handle();
        Backend::Sim(
            Box::new(Backend::tower(AsyncTarget::new(gate), cache)),
            chaos,
        )
    }

    fn minic(d: Debugger, cache: bool) -> Backend {
        Backend::Minic(Box::new(Backend::tower(d, cache)))
    }

    fn replay_backend(r: ReplayTarget, cache: bool) -> Backend {
        Backend::Replay(Box::new(Backend::tower(r, cache)))
    }
}

/// The REPL engine: owns the debuggee backend, the DUEL aliases, and
/// the evaluation options; `handle` processes one input line and
/// appends its output to a sink, so the whole command surface is unit
/// testable.
pub struct Repl {
    backend: Backend,
    aliases: HashMap<String, Value>,
    options: EvalOptions,
    last_stats: EvalStats,
    cache_enabled: bool,
    /// Sticky `.trace on` state, reapplied when `.scenario`/`.load`
    /// replace the backend (and with it the trace handle).
    trace_enabled: bool,
    /// Sticky `.set degrade` state, reapplied when the backend (and
    /// with it the supervisor) is replaced.
    degrade_enabled: bool,
    /// Sticky `.set pipeline` state, reapplied on backend swaps.
    /// Backends without an actor layer (mini-C, replay) ignore it and
    /// stay inline; the flag survives so the next `.scenario` starts
    /// pipelined again.
    pipeline_enabled: bool,
    /// Sticky `.trace spans on|off` state, reapplied on backend swaps.
    spans_enabled: bool,
    /// Sticky `.set trace_buf N` ring capacity (trace events and span
    /// records), reapplied on backend swaps. `None` = library default.
    trace_buf: Option<usize>,
    /// Session-lifetime metrics registry: survives `.scenario`/`.load`/
    /// `.replay` (unlike the per-tower trace handle), fed with
    /// watermark deltas after every evaluated command, reset only by
    /// `.trace clear`.
    metrics: MetricsRegistry,
    /// Per-op (calls, errors, total_ns) totals at the previous
    /// watermark, so `feed_metrics` charges only this command's wire
    /// traffic. Cleared on backend swaps (the new handle starts at 0).
    wire_seen: HashMap<&'static str, (u64, u64, u64)>,
    /// Label of the current debuggee (scenario name or program path),
    /// written into capture headers by `.record`.
    scenario_label: String,
}

const HELP: &str = "\
DUEL commands:
  <expr>             evaluate a DUEL expression (try: x[..10] >? 5)
  .help              this message
  .scenario NAME     load a built-in debuggee: scan range hash full
                     violation lists tree argv combined
  .load FILE         compile FILE as mini-C and debug it
  .break N           set a breakpoint at line N
  .delete N          remove the breakpoint at line N
  .breaks            list breakpoints
  .run / .cont       run / continue the mini-C program
  .step              step one source line
  .watch EXPR        stop when the DUEL expression's values change
  .frames            show the stopped program's frames
  .ast EXPR          show the AST in the paper's LISP-like notation
  .stats             full tower counters: last evaluation, cache,
                     retry, supervision, target-call trace, recorder
  .stats json        the same counters plus live metrics as one
                     machine-readable JSON document
  .health            probe the backend; circuit and reconnect status
  .health reconnect  force a reconnect + session resync now
  .chaos CMD         fault-inject the sim backend: kill hang garble
                     revive, heal N, campaign SEED EVENTS SPAN
  .record FILE       start capturing every backend call to FILE
                     (JSONL; finalized by `.record stop` or exit)
  .record stop       finalize the capture; `.record` alone = status
  .replay FILE [strict|permissive]
                     serve the session from a capture instead of a
                     live backend (strict: exact recorded sequence,
                     permissive: new expressions over frozen state)
  .trace on|off      record every target call (latency, outcome)
  .trace spans on|off
                     causal span tracing: attribute every wire event
                     to the evaluator node that caused it
  .trace [dump [N]]  show per-op latency stats / the last N events
  .trace clear       reset trace counters, latency histograms, the
                     event buffer, the span ring, and live metrics
  .trace export FILE write a Chrome trace-event JSON of the span tree
                     and wire events (load in ui.perfetto.dev)
  .trace flame FILE [ns|reads]
                     write folded stacks weighted by wire latency or
                     backend reads (flamegraph.pl / speedscope input)
  .top               live view: hottest AST nodes (by exclusive span
                     time), wire ops, and busiest metric counters
  .query EXPR        evaluate a DUEL expression against a snapshot of
                     the debugger's own telemetry (roots: spans,
                     events, counters, hists, cache, breaker; e.g.
                     `.query events[..nevents].lat_ns >? 1000`)
  .profile EXPR      evaluate EXPR, then show per-node costs (ticks,
                     wire reads), hottest first
  .explain EXPR      evaluate EXPR, then show its AST annotated with
                     per-node costs
  .aliases           list DUEL aliases (`a := e`, declarations)
  .clear             drop all aliases
  .set trace on|off  log every generator resumption (the paper's eval)
  .set lazy|eager    symbolic-value construction (experiment E4)
  .set threshold N   `->a->a…` compression threshold (default 4)
  .set maxvalues N   value limit per command
  .set maxsteps N    step budget per command (also: --max-steps)
  .set maxdepth N    generator nesting budget (also: --max-depth)
  .set timeout N     per-command deadline in ms, 0 = off (--timeout-ms)
  .set errors tolerant|strict
                     render faults as <error: ...> values, or abort the
                     command at the first fault (default: tolerant)
  .set cache on|off  page-cache + lookup memoization over the debugger
                     wire (default: on; also: --no-cache)
  .set degrade on|off
                     while the circuit is open, serve reads from cache
                     tagged <stale> instead of failing (default: on)
  .set prefetch on|off
                     generator-aware prefetch: warm the cache with one
                     vectored read before contiguous scans (`x[a..b]`)
                     and structure walks (default: off)
  .set pipeline on|off
                     asynchronous wire pipeline: run the backend on an
                     I/O actor thread and double-buffer prefetch
                     windows, so window k+1 is on the wire while the
                     evaluator consumes window k (sim backend only;
                     default: off, sticky across `.scenario`)
  .set trace_buf N   capacity of the trace-event and span rings
                     (default 4096 events / 8192 spans; one entry
                     costs ~100-140 bytes, so 8192 spans ≈ 1 MiB)
  .quit              exit
";

/// Renders the hottest-spans / hottest-wire-ops / busiest-counters
/// tables shared by the live `.top` view and `duel-replay --top`.
/// `spans: None` skips the span table (the live view passes `None`
/// when span tracing is off, after printing its own hint); `limit`
/// bounds the span rows (wire ops and counters keep their fixed 6/8
/// budgets so the view stays one screen).
pub fn render_top_report(
    spans: Option<&SpanSnapshot>,
    trace: &TraceStats,
    metrics: &MetricsSnapshot,
    limit: usize,
    out: &mut String,
) {
    if let Some(snap) = spans {
        let agg = snap.aggregate();
        let _ = writeln!(
            out,
            "  {:<10} {:>6} {:>10} {:>10}  node",
            "kind", "count", "self", "total"
        );
        for row in agg.iter().take(limit) {
            let _ = writeln!(
                out,
                "  {:<10} {:>6} {:>10} {:>10}  {}{}",
                row.kind.name(),
                row.count,
                duel_target::trace::fmt_ns(row.self_ns),
                duel_target::trace::fmt_ns(row.total_ns),
                row.name,
                if row.detail.is_empty() {
                    String::new()
                } else {
                    format!(" {}", row.detail)
                }
            );
        }
    }
    let mut ops: Vec<_> = trace.ops.iter().filter(|o| o.calls > 0).collect();
    ops.sort_by_key(|o| std::cmp::Reverse(o.total_ns));
    if !ops.is_empty() {
        let _ = writeln!(out, "  wire ops by total latency:");
        for o in ops.iter().take(6) {
            let _ = writeln!(
                out,
                "    {:<13} {:>8} calls {:>6} errors  total {:>8}  p99 {:>8}",
                o.op.name(),
                o.calls,
                o.errors,
                duel_target::trace::fmt_ns(o.total_ns),
                duel_target::trace::fmt_ns(o.quantile_ns(0.99))
            );
        }
    }
    let mut counters = metrics.counters.clone();
    counters.sort_by_key(|c| std::cmp::Reverse(c.1));
    if counters.is_empty() {
        let _ = writeln!(out, "  no metrics yet (evaluate something first)");
    } else {
        let _ = writeln!(out, "  busiest counters:");
        for (name, v) in counters.iter().take(8) {
            let _ = writeln!(out, "    {name:<28} {v}");
        }
    }
}

impl Repl {
    /// Creates a REPL over the combined built-in scenario.
    pub fn new() -> Repl {
        Repl::with_options(Repl::default_options())
    }

    /// Creates a REPL with explicit evaluation options (the binary
    /// feeds the `--max-steps`/`--max-depth`/`--timeout-ms` flags
    /// through here).
    pub fn with_options(options: EvalOptions) -> Repl {
        Repl::with_config(options, true)
    }

    /// Creates a REPL with explicit options and an initial caching
    /// state (`--no-cache` passes `cache_enabled = false`).
    pub fn with_config(options: EvalOptions, cache_enabled: bool) -> Repl {
        Repl {
            backend: Backend::sim(scenario::combined(), cache_enabled),
            aliases: HashMap::new(),
            options,
            last_stats: EvalStats::default(),
            cache_enabled,
            trace_enabled: false,
            degrade_enabled: true,
            pipeline_enabled: false,
            spans_enabled: false,
            trace_buf: None,
            metrics: MetricsRegistry::new(),
            wire_seen: HashMap::new(),
            scenario_label: "combined".into(),
        }
    }

    /// Reapplies every sticky toggle to a freshly built backend tower
    /// (tracing, span tracing, degrade mode, ring capacities) and
    /// resets the wire watermark — the new trace handle counts from
    /// zero, so stale watermarks would produce negative deltas.
    fn apply_sticky(&mut self) {
        self.backend.trace().set_enabled(self.trace_enabled);
        self.backend.set_degrade(self.degrade_enabled);
        self.backend.set_pipeline(self.pipeline_enabled);
        self.backend.spans().set_enabled(self.spans_enabled);
        if let Some(n) = self.trace_buf {
            self.backend.trace().set_capacity(n);
            self.backend.spans().set_capacity(n);
        }
        self.wire_seen.clear();
    }

    /// The span context of the current tower (`--trace-perfetto`
    /// exports from it at exit; replaced by `.scenario`/`.load`).
    pub fn span_context(&self) -> SpanContext {
        self.backend.spans()
    }

    /// Turns causal span tracing on or off (the `.trace spans on|off`
    /// command; sticky across backend swaps). Spans also require the
    /// event trace to be useful in exports, but are independent of it.
    pub fn set_span_tracing(&mut self, on: bool) {
        self.spans_enabled = on;
        self.backend.spans().set_enabled(on);
    }

    /// The session's live metrics registry (`.top` and `.stats json`
    /// read it; survives backend swaps).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Charges the just-finished command to the always-on metrics
    /// registry: evaluator counters from `last_stats`, wire traffic as
    /// a delta against the previous watermark of the trace handle's
    /// per-op totals.
    fn feed_metrics(&mut self) {
        let s = &self.last_stats;
        let m = &self.metrics;
        m.counter("eval.commands").inc();
        m.counter("eval.values").add(s.values);
        m.counter("eval.ticks").add(s.ticks);
        m.counter("eval.yields").add(s.yields);
        m.counter("eval.expansions").add(s.expansions);
        m.counter("eval.stale_values").add(s.stale_values);
        m.counter("eval.prefetch_calls").add(s.prefetch_calls);
        m.counter("eval.windows_planned").add(s.windows_planned);
        m.counter("eval.windows_inflight").add(s.windows_inflight);
        m.counter("eval.pipeline_overlap_ns")
            .add(s.pipeline_overlap_ns);
        m.histogram("eval.ticks_per_command").observe(s.ticks);
        m.histogram("eval.values_per_command").observe(s.values);
        let snap = self.backend.trace().snapshot();
        let mut wire_ns = 0u64;
        let mut wire_calls = 0u64;
        for o in &snap.ops {
            let prev = self
                .wire_seen
                .insert(o.op.name(), (o.calls, o.errors, o.total_ns))
                .unwrap_or((0, 0, 0));
            let calls = o.calls.saturating_sub(prev.0);
            let errors = o.errors.saturating_sub(prev.1);
            let ns = o.total_ns.saturating_sub(prev.2);
            if calls == 0 && errors == 0 {
                continue;
            }
            m.counter(&format!("wire.{}.calls", o.op.name())).add(calls);
            if errors > 0 {
                m.counter(&format!("wire.{}.errors", o.op.name()))
                    .add(errors);
            }
            m.counter(&format!("wire.{}.ns", o.op.name())).add(ns);
            wire_ns += ns;
            wire_calls += calls;
        }
        if wire_calls > 0 {
            m.histogram("wire.calls_per_command").observe(wire_calls);
            m.histogram("wire.ns_per_command").observe(wire_ns);
        }
    }

    /// The target-call trace handle of the current backend tower (the
    /// `--trace-json` exporter reads it; replaced by `.scenario`/`.load`).
    pub fn trace_handle(&self) -> TraceHandle {
        self.backend.trace()
    }

    /// The chaos gate of the simulated backend (`None` for mini-C and
    /// replay sessions). Lets test harnesses script fault campaigns
    /// against the full tower without going through `.chaos` text
    /// commands.
    pub fn chaos_handle(&self) -> Option<ChaosHandle> {
        self.backend.chaos()
    }

    /// Moves the wire on or off the I/O actor thread (the
    /// `.set pipeline on|off` command; sticky across `.scenario`).
    /// Returns whether the current backend actually has an actor
    /// layer — mini-C and replay sessions stay inline.
    pub fn set_pipeline(&mut self, on: bool) -> bool {
        self.pipeline_enabled = on;
        self.backend.set_pipeline(on)
    }

    /// Turns target-call tracing on or off (the `.trace on|off`
    /// command; sticky across `.scenario`/`.load`).
    pub fn set_tracing(&mut self, on: bool) {
        self.trace_enabled = on;
        self.backend.trace().set_enabled(on);
    }

    /// Exports the trace as a JSON document (the `--trace-json FILE`
    /// flag writes this at exit). The envelope follows the shared
    /// `schema_version`/`name`/`config`/`metrics` convention used by
    /// the bench reports and capture files.
    pub fn trace_json(&self) -> String {
        format!(
            "{{\"schema_version\":1,\"name\":\"duel_trace\",\
             \"config\":{{\"backend\":\"{}\",\"scenario\":\"{}\",\"cache\":{}}},\
             \"metrics\":{{\"layers\":[{}]}}}}",
            self.backend.label(),
            self.scenario_label
                .replace('\\', "\\\\")
                .replace('"', "\\\""),
            self.cache_enabled,
            self.backend.trace().to_json("session")
        )
    }

    /// Resizes the trace-event and span rings (the `--trace-buf N`
    /// flag and `.set trace_buf N`; sticky across backend swaps).
    pub fn set_trace_buf(&mut self, n: usize) {
        self.trace_buf = Some(n);
        self.backend.trace().set_capacity(n);
        self.backend.spans().set_capacity(n);
    }

    /// The Chrome trace-event JSON of the current span tree and wire
    /// events (the `--trace-perfetto FILE` flag writes this at exit;
    /// loadable in ui.perfetto.dev).
    pub fn perfetto_json(&self) -> String {
        chrome_trace_json(
            &self.backend.spans().snapshot(),
            &self.backend.trace().recent_events(usize::MAX),
        )
    }

    /// The `.stats json` document: every tower counter in one
    /// machine-readable dump, using the shared
    /// `schema_version`/`name`/`config`/`metrics` envelope that bench
    /// reports, capture files, and `--trace-json` all follow.
    pub fn stats_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let c = self.backend.cache_stats();
        let r = self.backend.retry_stats();
        let sup = self.backend.supervise_stats();
        let t = self.backend.trace().snapshot();
        let spans = self.backend.spans().snapshot();
        let s = &self.last_stats;
        let mut members = vec![
            format!("\"eval_values\":{}", s.values),
            format!("\"eval_ticks\":{}", s.ticks),
            format!("\"eval_max_depth\":{}", s.max_depth),
            format!("\"eval_expansions\":{}", s.expansions),
            format!("\"eval_yields\":{}", s.yields),
            format!("\"eval_stale_values\":{}", s.stale_values),
            format!("\"eval_trace_id\":{}", s.trace_id),
            format!("\"eval_windows_planned\":{}", s.windows_planned),
            format!("\"eval_windows_inflight\":{}", s.windows_inflight),
            format!("\"eval_pipeline_overlap_ns\":{}", s.pipeline_overlap_ns),
            format!("\"cache_page_hits\":{}", c.page_hits),
            format!("\"cache_page_misses\":{}", c.page_misses),
            format!("\"cache_backend_reads\":{}", c.backend_reads),
            format!("\"cache_wire_bytes\":{}", c.wire_bytes),
            format!("\"retry_operations\":{}", r.operations),
            format!("\"retry_retries\":{}", r.retries),
            format!("\"retry_give_ups\":{}", r.give_ups),
            format!("\"supervise_trips\":{}", sup.trips),
            format!("\"supervise_reconnects\":{}", sup.reconnects),
            format!("\"supervise_fast_fails\":{}", sup.fast_fails),
            format!("\"supervise_stale_reads\":{}", sup.stale_reads),
            format!("\"trace_calls\":{}", t.total_calls()),
            format!("\"trace_errors\":{}", t.total_errors()),
            format!("\"trace_events_held\":{}", t.events_held),
            format!("\"trace_events_dropped\":{}", t.events_dropped),
            format!("\"spans_buffered\":{}", spans.spans.len()),
            format!("\"spans_open\":{}", spans.open.len()),
            format!("\"spans_dropped\":{}", spans.dropped),
        ];
        if let Some(p) = self.backend.pipeline_stats() {
            members.push(format!("\"pipeline_async\":{}", p.async_on));
            members.push(format!("\"pipeline_submits\":{}", p.submits));
            members.push(format!("\"pipeline_completions\":{}", p.completions));
            members.push(format!("\"pipeline_actor_overlap_ns\":{}", p.overlap_ns));
            members.push(format!(
                "\"pipeline_max_queue_depth\":{}",
                p.max_queue_depth
            ));
        }
        let registry = self.metrics.snapshot().to_json_members();
        if !registry.is_empty() {
            members.push(registry);
        }
        format!(
            "{{\"schema_version\":1,\"name\":\"duel_stats\",\
             \"config\":{{\"backend\":\"{}\",\"scenario\":\"{}\",\"cache\":{},\
             \"prefetch\":{},\"pipeline\":{},\"degrade\":{},\"trace\":{},\"spans\":{},\
             \"trace_buf\":{},\"span_buf\":{}}},\
             \"metrics\":{{{}}}}}",
            self.backend.label(),
            esc(&self.scenario_label),
            self.cache_enabled,
            self.options.prefetch,
            self.pipeline_enabled,
            self.degrade_enabled,
            self.trace_enabled,
            self.spans_enabled,
            self.backend.trace().capacity(),
            self.backend.spans().capacity(),
            members.join(",")
        )
    }

    /// Renders the `.top` live view: hottest AST nodes by exclusive
    /// span time, hottest wire ops, and the busiest registry counters.
    /// The tables themselves are sugar over canonical `.query`
    /// meta-queries (documented side by side in docs/LANGUAGE.md);
    /// the shared renderer also serves `duel-replay --top`.
    fn render_top(&self, out: &mut String) {
        let _ = writeln!(out, "top — hottest since `.trace clear`");
        let spans = if self.spans_enabled {
            Some(self.backend.spans().snapshot())
        } else {
            let _ = writeln!(
                out,
                "  (span tracing is off — `.trace spans on` to rank AST nodes)"
            );
            None
        };
        render_top_report(
            spans.as_ref(),
            &self.backend.trace().snapshot(),
            &self.metrics.snapshot(),
            10,
            out,
        );
        let _ = writeln!(
            out,
            "  (each table generalizes to `.query` — try \
             `.query spans[..nspans].self_ns`)"
        );
    }

    /// Freezes every telemetry source of the session into one
    /// [`MetaSnapshot`]: the span and wire-event rings, the live
    /// metrics registry, cache/retry/supervision counters, and the
    /// replayed capture's identity when the session is offline. The
    /// snapshot is a copy — `.query` evaluates against it without
    /// touching the debuggee or the tower.
    pub fn meta_snapshot(&self) -> MetaSnapshot {
        MetaSnapshot {
            spans: self.backend.spans().snapshot(),
            events: self.backend.trace().recent_events(usize::MAX),
            metrics: self.metrics.snapshot(),
            cache: self.backend.cache_stats().clone(),
            resident_pages: self.backend.resident_page_count() as u64,
            retry: self.backend.retry_stats(),
            supervise: self.backend.supervise_stats(),
            circuit: self.backend.circuit_state(),
            capture: self.backend.replay().map(|r| MetaCapture {
                backend: r.backend_label().to_string(),
                scenario: r.scenario_label().to_string(),
                events: r.events_total() as u64,
            }),
        }
    }

    /// The `.query EXPR` body: one-shot DUEL evaluation against a
    /// fresh [`MetaTarget`] built from [`Repl::meta_snapshot`].
    /// Deliberately bypasses `feed_metrics` and the op deadline — a
    /// meta-query must perturb neither the metrics it inspects nor
    /// the debuggee tower.
    fn meta_query(&mut self, expr: &str, out: &mut String) {
        let snap = self.meta_snapshot();
        let mut meta = MetaTarget::new(&snap);
        let (lines, err) = duel_core::oneshot_lines(&mut meta, expr, &self.options);
        for l in lines {
            let _ = writeln!(out, "{l}");
        }
        if let Some(e) = err {
            let _ = writeln!(out, "{e}");
        }
    }

    /// The REPL's default options: like [`EvalOptions::default`], but
    /// fault-tolerant — an unreadable element of a stream prints as
    /// `<error: ...>` and the session keeps going, since an interactive
    /// debugging session should not lose the rest of a scan to one bad
    /// pointer.
    pub fn default_options() -> EvalOptions {
        EvalOptions {
            error_values: true,
            ..EvalOptions::default()
        }
    }

    /// The wall-clock deadline for the next command, derived from
    /// `.set timeout`; armed on the retry layer so backoff sleeps are
    /// clamped against the same budget the evaluator enforces.
    fn arm_op_deadline(&mut self) {
        let deadline = if self.options.timeout_ms > 0 {
            Some(Instant::now() + Duration::from_millis(self.options.timeout_ms))
        } else {
            None
        };
        self.backend.set_op_deadline(deadline);
    }

    fn eval(&mut self, line: &str, out: &mut String) {
        self.arm_op_deadline();
        let session = Session::with_state(
            self.backend.target_mut(),
            std::mem::take(&mut self.aliases),
            self.options.clone(),
        );
        let mut session = session;
        match session.eval_partial(line) {
            Ok((lines, err)) => {
                for l in duel_core::session::render_lines(&lines) {
                    let _ = writeln!(out, "{l}");
                }
                if let Some(e) = err {
                    let _ = writeln!(out, "{e}");
                }
            }
            Err(e) => {
                let _ = writeln!(out, "{e}");
            }
        }
        self.last_stats = session.last_stats();
        for line in session.take_trace() {
            let _ = writeln!(out, "| {line}");
        }
        self.aliases = session.into_aliases();
        self.backend.set_op_deadline(None);
        self.feed_metrics();
    }

    /// Shared body of `.profile` (cost table) and `.explain` (annotated
    /// AST tree): evaluates under the profiler, prints the values, then
    /// the per-node costs.
    fn profile(&mut self, explain: bool, expr: &str, out: &mut String) {
        self.arm_op_deadline();
        let mut session = Session::with_state(
            self.backend.target_mut(),
            std::mem::take(&mut self.aliases),
            self.options.clone(),
        );
        match session.profile(expr) {
            Ok((lines, err, report)) => {
                for l in duel_core::session::render_lines(&lines) {
                    let _ = writeln!(out, "{l}");
                }
                if let Some(e) = err {
                    let _ = writeln!(out, "{e}");
                }
                if explain {
                    out.push_str(&report.render_tree());
                } else {
                    out.push_str(&report.render_table(12));
                }
            }
            Err(e) => {
                let _ = writeln!(out, "{e}");
            }
        }
        self.last_stats = session.last_stats();
        self.aliases = session.into_aliases();
        self.backend.set_op_deadline(None);
        self.feed_metrics();
    }

    /// Finalizes an in-flight recording before the backend (and with it
    /// the armed `RecordTarget`) is replaced, and tells the user.
    fn note_recording_dropped(&mut self, out: &mut String) {
        if self.backend.record_info().0 {
            match self.backend.record_stop() {
                Ok(n) => {
                    let _ = writeln!(out, "recording finalized ({n} events): backend replaced");
                }
                Err(e) => {
                    let _ = writeln!(out, "recording lost: {e}");
                }
            }
        }
    }

    fn command(&mut self, line: &str, out: &mut String) -> bool {
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("");
        match cmd {
            ".quit" | ".q" | ".exit" => return false,
            ".help" | ".h" => out.push_str(HELP),
            ".scenario" => {
                let t = match arg {
                    "scan" => Some(scenario::scan_array()),
                    "range" => Some(scenario::range_array()),
                    "hash" => Some(scenario::hash_table_basic()),
                    "full" => Some(scenario::hash_table_full()),
                    "violation" => Some(scenario::hash_table_sorted_violation()),
                    "lists" => Some(scenario::linked_lists()),
                    "tree" => Some(scenario::binary_tree()),
                    "argv" => Some(scenario::argv_strings()),
                    "combined" | "" => Some(scenario::combined()),
                    other => {
                        let _ = writeln!(out, "unknown scenario `{other}`");
                        None
                    }
                };
                if let Some(t) = t {
                    self.note_recording_dropped(out);
                    self.backend = Backend::sim(t, self.cache_enabled);
                    self.apply_sticky();
                    self.aliases.clear();
                    self.scenario_label = if arg.is_empty() { "combined" } else { arg }.to_string();
                    let _ = writeln!(out, "scenario loaded; aliases cleared");
                }
            }
            ".load" => match std::fs::read_to_string(arg) {
                Ok(src) => match Debugger::new(&src) {
                    Ok(d) => {
                        self.note_recording_dropped(out);
                        self.backend = Backend::minic(d, self.cache_enabled);
                        self.apply_sticky();
                        self.aliases.clear();
                        self.scenario_label = arg.to_string();
                        let _ = writeln!(out, "compiled `{arg}`; set breakpoints and .run");
                    }
                    Err(e) => {
                        let _ = writeln!(out, "compile error: {e}");
                    }
                },
                Err(e) => {
                    let _ = writeln!(out, "cannot read `{arg}`: {e}");
                }
            },
            ".break" | ".delete" | ".breaks" | ".run" | ".cont" | ".step" | ".frames"
            | ".watch" => {
                let rest = line.split_once(' ').map(|x| x.1).unwrap_or("").to_string();
                self.debugger_command(cmd, if cmd == ".watch" { &rest } else { arg }, out)
            }
            ".ast" => {
                let expr = line.split_once(' ').map(|x| x.1).unwrap_or("");
                let mut session = Session::with_state(
                    self.backend.target_mut(),
                    std::mem::take(&mut self.aliases),
                    self.options.clone(),
                );
                match session.parse(expr) {
                    Ok(ast) => {
                        let _ = writeln!(out, "{}", duel_core::to_sexpr(&ast));
                    }
                    Err(e) => {
                        let _ = writeln!(out, "{e}");
                    }
                }
                self.aliases = session.into_aliases();
            }
            ".top" => self.render_top(out),
            ".query" => {
                let expr = line.split_once(' ').map(|x| x.1).unwrap_or("").trim();
                if expr.is_empty() {
                    let _ = writeln!(
                        out,
                        "usage: .query EXPR — DUEL over the debugger's own telemetry\n\
                         roots: spans[..nspans] events[..nevents] counters[..ncounters]\n\
                         \x20      hists[..nhists] cache breaker (see docs/LANGUAGE.md)"
                    );
                } else {
                    self.meta_query(expr, out);
                }
            }
            ".stats" if arg == "json" => {
                let _ = writeln!(out, "{}", self.stats_json());
            }
            ".stats" => {
                let _ = writeln!(
                    out,
                    "eval: {} values, {} ticks, depth {}, {} expansions, {} yields{}",
                    self.last_stats.values,
                    self.last_stats.ticks,
                    self.last_stats.max_depth,
                    self.last_stats.expansions,
                    self.last_stats.yields,
                    if self.last_stats.stale_values > 0 {
                        format!(", {} stale", self.last_stats.stale_values)
                    } else {
                        String::new()
                    }
                );
                let c = self.backend.cache_stats();
                let _ = writeln!(
                    out,
                    "cache: {} ({} page hits, {} misses, {} backend reads, {} bytes over the wire)",
                    if self.cache_enabled { "on" } else { "off" },
                    c.page_hits,
                    c.page_misses,
                    c.backend_reads,
                    c.wire_bytes
                );
                let _ = writeln!(
                    out,
                    "lookups: {} memoized, {} fetched; {} invalidations",
                    c.lookup_hits, c.lookup_misses, c.invalidations
                );
                let _ = writeln!(
                    out,
                    "prefetch: {} ({} warm-ups, {} ranges warmed; {} vectored turns on the wire)",
                    if self.options.prefetch { "on" } else { "off" },
                    self.last_stats.prefetch_calls,
                    self.last_stats.prefetch_ranges,
                    self.backend.trace().calls(duel_target::TraceOp::MultiRead)
                );
                match self.backend.pipeline_stats() {
                    Some(p) => {
                        let _ = writeln!(
                            out,
                            "pipeline: {} ({} windows planned, {} submitted ahead, \
                             overlap {}; actor: {} submits, {} completions, depth\u{2264}{})",
                            if p.async_on { "on" } else { "off" },
                            self.last_stats.windows_planned,
                            self.last_stats.windows_inflight,
                            duel_target::trace::fmt_ns(self.last_stats.pipeline_overlap_ns),
                            p.submits,
                            p.completions,
                            p.max_queue_depth
                        );
                    }
                    None => {
                        let _ =
                            writeln!(out, "pipeline: unavailable (this backend has no I/O actor)");
                    }
                }
                let r = self.backend.retry_stats();
                let _ = writeln!(
                    out,
                    "retry: {} operations, {} retries, {} give-ups, {} backoff",
                    r.operations,
                    r.retries,
                    r.give_ups,
                    duel_target::trace::fmt_ns(r.backoff_ns)
                );
                let s = self.backend.supervise_stats();
                let _ = writeln!(
                    out,
                    "supervise: circuit {}; {} ops, {} failures, {} trips, {} reconnects, \
                     {} fast-fails, {} stale reads; degrade {}",
                    self.backend.circuit_state().name(),
                    s.operations,
                    s.failures,
                    s.trips,
                    s.reconnects,
                    s.fast_fails,
                    s.stale_reads,
                    if self.backend.degrade_enabled() {
                        "on"
                    } else {
                        "off"
                    }
                );
                let h = self.backend.trace();
                let t = h.snapshot();
                let _ = writeln!(
                    out,
                    "trace: {} ({} calls recorded, {} errors, {} events buffered, {} dropped)",
                    if h.is_enabled() { "on" } else { "off" },
                    t.total_calls(),
                    t.total_errors(),
                    t.events_held,
                    t.events_dropped
                );
                let (rec_on, rec_events, rec_err) = self.backend.record_info();
                match self.backend.replay() {
                    Some(r) => {
                        let _ = writeln!(
                            out,
                            "replay: {:?}, {}/{} events consumed{}",
                            r.mode(),
                            r.events_consumed(),
                            r.events_total(),
                            match r.divergence() {
                                Some(d) => format!("; DIVERGED at event {}", d.at),
                                None => String::new(),
                            }
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "record: {}{}",
                            if rec_on {
                                format!("on ({rec_events} events captured)")
                            } else {
                                "off".to_string()
                            },
                            rec_err.map(|e| format!(" [{e}]")).unwrap_or_default()
                        );
                    }
                }
            }
            ".health" => match arg {
                "reconnect" => match self.backend.force_reconnect() {
                    Ok(r) => {
                        let _ = writeln!(out, "reconnected; {}", r.render());
                    }
                    Err(e) => {
                        let _ = writeln!(out, "reconnect failed: {e}");
                    }
                },
                "" => {
                    let probe = self.backend.health_check();
                    let state = self.backend.circuit_state();
                    match probe {
                        Ok(()) => {
                            let _ = writeln!(out, "backend healthy; circuit {}", state.name());
                        }
                        Err(e) => {
                            let _ = writeln!(
                                out,
                                "backend unhealthy: {e}; circuit {}",
                                self.backend.circuit_state().name()
                            );
                        }
                    }
                    let s = self.backend.supervise_stats();
                    let _ = writeln!(
                        out,
                        "probes: {} ({} failed); trips: {}; reconnects: {} ({} failed)",
                        s.probes, s.probe_failures, s.trips, s.reconnects, s.reconnect_failures
                    );
                    if let Some(f) = self.backend.last_failure() {
                        let _ = writeln!(out, "last failure: {f}");
                    }
                    if let Some(r) = self.backend.last_resync() {
                        let _ = writeln!(out, "last {}", r.render());
                    }
                }
                other => {
                    let _ = writeln!(out, "usage: .health [reconnect] (got `{other}`)");
                }
            },
            ".chaos" => match self.backend.chaos() {
                None => {
                    let _ = writeln!(out, "chaos: only the simulated backend has a chaos gate");
                }
                Some(h) => match arg {
                    "" => {
                        let _ = writeln!(
                            out,
                            "chaos: mode {}, {} ops gated, {} faults injected",
                            h.mode().name(),
                            h.ops(),
                            h.injected()
                        );
                    }
                    "kill" => {
                        h.kill();
                        let _ = writeln!(out, "chaos: backend killed");
                    }
                    "hang" => {
                        h.hang();
                        let _ = writeln!(out, "chaos: backend hung");
                    }
                    "garble" => {
                        h.garble();
                        let _ = writeln!(out, "chaos: backend garbling replies");
                    }
                    "revive" => {
                        h.revive();
                        let _ = writeln!(out, "chaos: backend revived");
                    }
                    "heal" => match line.split_whitespace().nth(2).and_then(|v| v.parse().ok()) {
                        Some(n) => {
                            h.heal_after(n);
                            let _ = writeln!(out, "chaos: healing after {n} more ops");
                        }
                        None => {
                            let _ = writeln!(out, "usage: .chaos heal N");
                        }
                    },
                    "campaign" => {
                        let mut nums = line
                            .split_whitespace()
                            .skip(2)
                            .map(|v| v.parse::<u64>().ok());
                        match (
                            nums.next().flatten(),
                            nums.next().flatten(),
                            nums.next().flatten(),
                        ) {
                            (Some(seed), Some(events), Some(span)) => {
                                let script = h.campaign(seed, events as usize, span);
                                let _ = writeln!(
                                    out,
                                    "chaos: campaign of {} events over {span} ops (seed {seed})",
                                    script.len()
                                );
                                for e in script {
                                    let _ = writeln!(out, "  op {:>6}: {:?}", e.at_op, e.action);
                                }
                            }
                            _ => {
                                let _ = writeln!(out, "usage: .chaos campaign SEED EVENTS SPAN");
                            }
                        }
                    }
                    other => {
                        let _ = writeln!(
                            out,
                            "usage: .chaos [kill|hang|garble|revive|heal N|\
                             campaign SEED EVENTS SPAN] (got `{other}`)"
                        );
                    }
                },
            },
            ".trace" => {
                let h = self.backend.trace();
                match arg {
                    "on" => {
                        self.set_tracing(true);
                        let _ = writeln!(out, "tracing on");
                    }
                    "off" => {
                        self.set_tracing(false);
                        let _ = writeln!(out, "tracing off");
                    }
                    "clear" => {
                        // One reset story: counters, latency histograms,
                        // the event ring, the span ring, and the live
                        // metrics registry all clear together — no view
                        // may keep serving pre-clear latency buckets.
                        h.clear();
                        self.backend.spans().clear();
                        self.metrics.clear();
                        self.wire_seen.clear();
                        let _ = writeln!(out, "trace cleared");
                    }
                    "spans" => {
                        match line.split_whitespace().nth(2) {
                            Some("on") => {
                                self.set_span_tracing(true);
                                let _ = writeln!(out, "span tracing on");
                            }
                            Some("off") => {
                                self.set_span_tracing(false);
                                let _ = writeln!(out, "span tracing off");
                            }
                            _ => {
                                let s = self.backend.spans().snapshot();
                                let _ = writeln!(
                                    out,
                                    "span tracing {}; {} spans buffered, {} open, {} dropped",
                                    if self.spans_enabled { "on" } else { "off" },
                                    s.spans.len(),
                                    s.open.len(),
                                    s.dropped
                                );
                            }
                        };
                    }
                    "export" => {
                        let file = line.split_whitespace().nth(2).unwrap_or("");
                        if file.is_empty() {
                            let _ = writeln!(out, "usage: .trace export FILE");
                        } else {
                            let snap = self.backend.spans().snapshot();
                            let events = h.recent_events(usize::MAX);
                            let json = chrome_trace_json(&snap, &events);
                            match std::fs::write(file, json) {
                                Ok(()) => {
                                    let _ = writeln!(
                                        out,
                                        "trace exported to `{file}` ({} spans, {} events; \
                                         load in ui.perfetto.dev)",
                                        snap.len(),
                                        events.len()
                                    );
                                }
                                Err(e) => {
                                    let _ = writeln!(out, "cannot write `{file}`: {e}");
                                }
                            }
                        }
                    }
                    "flame" => {
                        let file = line.split_whitespace().nth(2).unwrap_or("");
                        let weight = match line.split_whitespace().nth(3) {
                            None | Some("ns") => Some(FlameWeight::WireNs),
                            Some("reads") => Some(FlameWeight::WireReads),
                            Some(other) => {
                                let _ =
                                    writeln!(out, "unknown flame weight `{other}` (ns or reads)");
                                None
                            }
                        };
                        if file.is_empty() {
                            let _ = writeln!(out, "usage: .trace flame FILE [ns|reads]");
                        } else if let Some(weight) = weight {
                            let snap = self.backend.spans().snapshot();
                            let events = h.recent_events(usize::MAX);
                            let folded = folded_stacks(&snap, &events, weight);
                            match std::fs::write(file, &folded) {
                                Ok(()) => {
                                    let _ = writeln!(
                                        out,
                                        "folded stacks written to `{file}` ({} lines; \
                                         feed to flamegraph.pl or speedscope)",
                                        folded.lines().count()
                                    );
                                }
                                Err(e) => {
                                    let _ = writeln!(out, "cannot write `{file}`: {e}");
                                }
                            }
                        }
                    }
                    "dump" => {
                        let n = line
                            .split_whitespace()
                            .nth(2)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(20);
                        let events = h.recent_events(n);
                        if events.is_empty() {
                            let _ = writeln!(
                                out,
                                "no events recorded{}",
                                if h.is_enabled() {
                                    ""
                                } else {
                                    " (tracing is off)"
                                }
                            );
                        }
                        for e in events {
                            let _ = writeln!(out, "{}", e.render());
                        }
                    }
                    "" => {
                        let t = h.snapshot();
                        let _ = writeln!(
                            out,
                            "tracing {}; {} calls recorded, {} events buffered",
                            if h.is_enabled() { "on" } else { "off" },
                            t.total_calls(),
                            t.events_held
                        );
                        for o in t.ops.iter().filter(|o| o.calls > 0) {
                            let _ = writeln!(
                                out,
                                "  {:<13} {:>8} calls {:>6} errors  mean {:>8}  p99 {:>8}",
                                o.op.name(),
                                o.calls,
                                o.errors,
                                duel_target::trace::fmt_ns(o.mean_ns()),
                                duel_target::trace::fmt_ns(o.quantile_ns(0.99))
                            );
                        }
                    }
                    other => {
                        let _ = writeln!(
                            out,
                            "usage: .trace [on|off|spans on|off|dump [N]|clear|\
                             export FILE|flame FILE [ns|reads]] (got `{other}`)"
                        );
                    }
                }
            }
            ".record" => match arg {
                "" => {
                    let (on, events, err) = self.backend.record_info();
                    if let Some(e) = err {
                        let _ = writeln!(out, "recording stopped: {e}");
                    } else if on {
                        let _ = writeln!(out, "recording ({events} events captured)");
                    } else {
                        let _ = writeln!(out, "not recording (use `.record FILE`)");
                    }
                }
                "stop" => match self.backend.record_stop() {
                    Ok(0) => {
                        let _ = writeln!(out, "not recording");
                    }
                    Ok(n) => {
                        let _ = writeln!(out, "capture finalized ({n} events)");
                    }
                    Err(e) => {
                        let _ = writeln!(out, "cannot finalize capture: {e}");
                    }
                },
                path => {
                    let scenario = self.scenario_label.clone();
                    match self.backend.record_start(path, &scenario) {
                        Ok(()) => {
                            let _ = writeln!(out, "recording to `{path}`");
                        }
                        Err(e) => {
                            let _ = writeln!(out, "cannot record to `{path}`: {e}");
                        }
                    }
                }
            },
            ".replay" => {
                if arg.is_empty() {
                    match self.backend.replay() {
                        None => {
                            let _ = writeln!(out, "usage: .replay FILE [strict|permissive]");
                        }
                        Some(r) => {
                            let _ = writeln!(
                                out,
                                "replaying `{}` capture of scenario `{}` ({:?}, {}/{} events consumed)",
                                r.backend_label(),
                                r.scenario_label(),
                                r.mode(),
                                r.events_consumed(),
                                r.events_total()
                            );
                            if let Some(d) = r.divergence() {
                                let _ = writeln!(out, "{}", d.render());
                            }
                        }
                    }
                } else {
                    let mode = match line.split_whitespace().nth(2) {
                        None | Some("strict") => Some(ReplayMode::Strict),
                        Some("permissive") => Some(ReplayMode::Permissive),
                        Some(other) => {
                            let _ = writeln!(
                                out,
                                "unknown replay mode `{other}` (strict or permissive)"
                            );
                            None
                        }
                    };
                    if let Some(mode) = mode {
                        match ReplayTarget::load(arg, mode) {
                            Ok(r) => {
                                self.note_recording_dropped(out);
                                let total = r.events_total();
                                self.backend = Backend::replay_backend(r, self.cache_enabled);
                                self.apply_sticky();
                                self.aliases.clear();
                                let _ = writeln!(
                                    out,
                                    "replaying `{arg}` ({total} events, {mode:?}); aliases cleared"
                                );
                            }
                            Err(e) => {
                                let _ = writeln!(out, "cannot replay `{arg}`: {e}");
                            }
                        }
                    }
                }
            }
            ".profile" | ".explain" => {
                let expr = line.split_once(' ').map(|x| x.1).unwrap_or("").trim();
                if expr.is_empty() {
                    let _ = writeln!(out, "usage: {cmd} EXPR");
                } else {
                    self.profile(cmd == ".explain", expr, out);
                }
            }
            ".aliases" => {
                let mut names: Vec<&String> = self.aliases.keys().collect();
                names.sort();
                for n in names {
                    let _ = writeln!(out, "{n}");
                }
            }
            ".clear" => {
                self.aliases.clear();
                let _ = writeln!(out, "aliases cleared");
            }
            ".set" => {
                let val = line.split_whitespace().nth(2).unwrap_or("");
                match arg {
                    "trace" => {
                        self.options.trace = val == "on";
                    }
                    "lazy" => self.options.sym_mode = SymMode::Lazy,
                    "eager" => self.options.sym_mode = SymMode::Eager,
                    "threshold" => {
                        if let Ok(n) = val.parse() {
                            self.options.compress_threshold = n;
                        }
                    }
                    "maxvalues" => {
                        if let Ok(n) = val.parse() {
                            self.options.max_values = n;
                        }
                    }
                    "maxsteps" => {
                        if let Ok(n) = val.parse() {
                            self.options.max_ticks = n;
                        }
                    }
                    "maxdepth" => {
                        if let Ok(n) = val.parse() {
                            self.options.max_depth = n;
                        }
                    }
                    "timeout" => {
                        if let Ok(n) = val.parse() {
                            self.options.timeout_ms = n;
                        }
                    }
                    "errors" => {
                        self.options.error_values = val != "strict";
                    }
                    "cache" => {
                        self.cache_enabled = val != "off";
                        self.backend.set_cache(self.cache_enabled);
                    }
                    "degrade" => {
                        self.degrade_enabled = val != "off";
                        self.backend.set_degrade(self.degrade_enabled);
                    }
                    "prefetch" => {
                        self.options.prefetch = val == "on";
                    }
                    "pipeline" => {
                        let on = val == "on";
                        self.pipeline_enabled = on;
                        if self.backend.set_pipeline(on) {
                            let _ = writeln!(
                                out,
                                "pipeline {}: the wire now runs {}",
                                if on { "on" } else { "off" },
                                if on {
                                    "on the I/O actor thread"
                                } else {
                                    "inline on the session thread"
                                }
                            );
                        } else {
                            let _ = writeln!(
                                out,
                                "pipeline {} (sticky): this backend has no I/O actor and \
                                 stays inline; the setting applies at the next `.scenario`",
                                if on { "on" } else { "off" }
                            );
                        }
                    }
                    "trace_buf" => match val.parse::<usize>() {
                        Ok(n) if n > 0 => {
                            self.trace_buf = Some(n);
                            self.backend.trace().set_capacity(n);
                            self.backend.spans().set_capacity(n);
                            let _ = writeln!(
                                out,
                                "trace and span rings resized to {n} entries \
                                 (~{} KiB each at worst)",
                                n.saturating_mul(140) / 1024
                            );
                        }
                        _ => {
                            let _ = writeln!(out, "usage: .set trace_buf N (N > 0)");
                        }
                    },
                    other => {
                        let _ = writeln!(out, "unknown option `{other}`");
                    }
                }
            }
            other => {
                let _ = writeln!(out, "unknown command `{other}` (try .help)");
            }
        }
        true
    }

    fn debugger_command(&mut self, cmd: &str, arg: &str, out: &mut String) {
        let tower = match &mut self.backend {
            Backend::Minic(d) => d,
            Backend::Sim(..) | Backend::Replay(_) => {
                let _ = writeln!(out, "no program loaded (use `.load file.c` first)");
                return;
            }
        };
        // Peel trace, supervision, and retry; the cache layer wraps the
        // recorder (which wraps the debugger) and owns invalidation.
        let cache = tower.inner_mut().inner_mut().inner_mut();
        match cmd {
            ".break" => match arg.parse::<u32>() {
                Ok(n) => {
                    cache.inner_mut().inner_mut().add_breakpoint(n);
                    let _ = writeln!(out, "breakpoint at line {n}");
                }
                Err(_) => {
                    let _ = writeln!(out, "usage: .break LINE");
                }
            },
            ".delete" => {
                if let Ok(n) = arg.parse::<u32>() {
                    cache.inner_mut().inner_mut().remove_breakpoint(n);
                }
            }
            ".breaks" => {
                let _ = writeln!(out, "{:?}", cache.inner_mut().inner_mut().breakpoints());
            }
            ".watch" => {
                if arg.is_empty() {
                    {
                        let _ = writeln!(out, "usage: .watch EXPR");
                    };
                } else {
                    cache.inner_mut().inner_mut().add_watchpoint(arg);
                    let _ = writeln!(out, "watching `{arg}`");
                }
            }
            ".run" | ".cont" => {
                let dbg = cache.inner_mut().inner_mut();
                let r = if cmd == ".run" { dbg.run() } else { dbg.cont() };
                match r {
                    Ok(StopReason::Breakpoint { line }) => {
                        let _ = writeln!(out, "breakpoint hit at line {line}");
                    }
                    Ok(StopReason::Step { line }) => {
                        let _ = writeln!(out, "stopped at line {line}");
                    }
                    Ok(StopReason::Watchpoint { line }) => {
                        let _ = writeln!(out, "watchpoint fired at line {line}");
                    }
                    Ok(StopReason::Exited { code }) => {
                        let _ = writeln!(out, "program exited with code {code}");
                    }
                    Err(e) => {
                        let _ = writeln!(out, "runtime error: {e}");
                    }
                }
                let prog_out = dbg.take_output();
                if !prog_out.is_empty() {
                    out.push_str(&prog_out);
                }
                // The program ran: everything cached at the previous
                // stop is suspect.
                cache.invalidate_all();
            }
            ".step" => {
                match cache.inner_mut().inner_mut().step_line() {
                    Ok(StopReason::Step { line }) => {
                        let _ = writeln!(out, "line {line}");
                    }
                    Ok(StopReason::Exited { code }) => {
                        let _ = writeln!(out, "program exited with code {code}");
                    }
                    Ok(other) => {
                        let _ = writeln!(out, "{other:?}");
                    }
                    Err(e) => {
                        let _ = writeln!(out, "runtime error: {e}");
                    }
                }
                cache.invalidate_all();
            }
            ".frames" => {
                let n = cache.frame_count();
                for i in 0..n {
                    if let Some(f) = cache.frame_info(i) {
                        let line = f.line.map(|l| format!(" at line {l}")).unwrap_or_default();
                        let _ = writeln!(out, "#{i} {}{}", f.function, line);
                    }
                }
            }
            _ => unreachable!("dispatched by caller"),
        }
    }
}

impl Repl {
    /// Processes one input line, appending output; returns `false` when
    /// the user quits.
    ///
    /// The line is processed under panic isolation: a bug anywhere in
    /// the evaluator or a command handler costs that one command — it
    /// is reported as an internal error and the session keeps accepting
    /// input — rather than tearing down the whole debugging session
    /// (and the debuggee's state with it).
    pub fn handle(&mut self, line: &str, out: &mut String) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return true;
        }
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if line.starts_with('.') {
                self.command(line, out)
            } else {
                self.eval(line, out);
                true
            }
        }));
        match unwound {
            Ok(keep_going) => keep_going,
            Err(payload) => {
                let _ = writeln!(out, "{}", DuelError::Internal(panic_text(payload.as_ref())));
                true
            }
        }
    }
}

/// Extracts the human-readable message from a panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "evaluator panicked".to_string()
    }
}

impl Default for Repl {
    fn default() -> Repl {
        Repl::new()
    }
}

/// Usage string for the `duel` binary.
pub const USAGE: &str = "usage: duel [--max-steps N] [--max-depth N] [--timeout-ms N] \
     [--no-cache] [--trace-json FILE] [--trace-perfetto FILE] [--trace-buf N] \
     [--record FILE] [--replay FILE] [program.c]";

/// What [`parse_args`] extracted from the command line.
#[derive(Debug)]
pub struct CliArgs {
    /// Evaluation options assembled from the budget flags.
    pub options: EvalOptions,
    /// The mini-C program to `.load` at startup, if given.
    pub path: Option<String>,
    /// Whether the target page cache starts enabled (`--no-cache`).
    pub cache: bool,
    /// Where to export the target-call trace at exit
    /// (`--trace-json FILE`; also turns tracing on from the start).
    pub trace_json: Option<String>,
    /// Where to export the causal span trace as Chrome trace-event
    /// JSON at exit (`--trace-perfetto FILE`; turns tracing *and* span
    /// tracing on from the start).
    pub trace_perfetto: Option<String>,
    /// Capacity override for the trace-event and span rings
    /// (`--trace-buf N`).
    pub trace_buf: Option<usize>,
    /// Capture file to start recording to immediately (`--record FILE`).
    pub record: Option<String>,
    /// Capture file to replay instead of a live backend
    /// (`--replay FILE`, strict mode).
    pub replay: Option<String>,
}

/// Parses the binary's command line: resource-budget flags, the
/// `--no-cache` switch (disable the target page cache + lookup
/// memoization), the `--trace-json FILE` trace export, plus an optional
/// mini-C program path. Accepts both `--flag N` and `--flag=N`
/// spellings.
pub fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut options = Repl::default_options();
    let mut path = None;
    let mut cache = true;
    let mut trace_json = None;
    let mut trace_perfetto = None;
    let mut trace_buf = None;
    let mut record = None;
    let mut replay = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        match name {
            "--max-steps" | "--max-depth" | "--timeout-ms" | "--trace-json"
            | "--trace-perfetto" | "--trace-buf" | "--record" | "--replay" => {
                let val = match inline {
                    Some(v) => v,
                    None => {
                        i += 1;
                        args.get(i)
                            .cloned()
                            .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))?
                    }
                };
                if name == "--trace-json" {
                    trace_json = Some(val);
                } else if name == "--trace-perfetto" {
                    trace_perfetto = Some(val);
                } else if name == "--record" {
                    record = Some(val);
                } else if name == "--replay" {
                    replay = Some(val);
                } else {
                    let n: u64 = val
                        .parse()
                        .map_err(|_| format!("invalid value `{val}` for {name}\n{USAGE}"))?;
                    match name {
                        "--max-steps" => options.max_ticks = n,
                        "--max-depth" => options.max_depth = n,
                        "--trace-buf" => {
                            if n == 0 {
                                return Err(format!("--trace-buf needs N > 0\n{USAGE}"));
                            }
                            trace_buf = Some(n as usize);
                        }
                        _ => options.timeout_ms = n,
                    }
                }
            }
            "--no-cache" => cache = false,
            _ if name.starts_with('-') => {
                return Err(format!("unknown flag `{name}`\n{USAGE}"));
            }
            _ => path = Some(arg.clone()),
        }
        i += 1;
    }
    Ok(CliArgs {
        options,
        path,
        cache,
        trace_json,
        trace_perfetto,
        trace_buf,
        record,
        replay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(lines: &[&str]) -> String {
        let mut r = Repl::new();
        let mut out = String::new();
        for l in lines {
            r.handle(l, &mut out);
        }
        out
    }

    #[test]
    fn evaluates_expressions() {
        let out = run(&["x[1..4,8,12..50] >? 5 <? 10"]);
        assert_eq!(out, "x[3] = 7\nx[18] = 9\nx[47] = 6\n");
    }

    #[test]
    fn pipeline_mode_renders_byte_identical_output() {
        let script = [
            ".set prefetch on",
            "x[..64]",
            "x[1..4,8,12..50] >? 5 <? 10",
            "tree-->(left,right)->data",
        ];
        let baseline = run(&script);
        let mut piped = vec![".set pipeline on"];
        piped.extend_from_slice(&script);
        let out = run(&piped);
        assert!(out.starts_with("pipeline on"), "{out}");
        let (_, rest) = out.split_once('\n').unwrap();
        assert_eq!(rest, baseline);
    }

    #[test]
    fn pipeline_is_sticky_across_scenarios_and_shows_in_stats() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".set pipeline on", &mut out);
        r.handle(".scenario scan", &mut out);
        out.clear();
        r.handle(".stats", &mut out);
        assert!(out.contains("pipeline: on"), "{out}");
        out.clear();
        r.handle(".set pipeline off", &mut out);
        r.handle(".stats", &mut out);
        assert!(out.contains("pipeline: off"), "{out}");
    }

    #[test]
    fn pipeline_overlaps_windows_and_reports_them() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".set pipeline on", &mut out);
        r.handle(".set prefetch on", &mut out);
        out.clear();
        r.handle("x[..64]", &mut out);
        assert!(out.contains("x[63]"), "{out}");
        out.clear();
        r.handle(".stats json", &mut out);
        assert!(out.contains("\"pipeline\":true"), "{out}");
        assert!(out.contains("\"pipeline_async\":true"), "{out}");
        // At least the first window went through the actor.
        let submits = out
            .split("\"pipeline_submits\":")
            .nth(1)
            .and_then(|s| s.split(&[',', '}'][..]).next())
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap();
        assert!(submits >= 1, "{out}");
    }

    #[test]
    fn chaos_gate_stays_reachable_while_pipelined() {
        // Once the actor owns the gate, `.chaos` steers it through the
        // Arc-shared handle cached at construction: status must observe
        // ops flowing on the worker thread, and kill/revive must still
        // take effect (the supervisor may auto-heal a killed backend,
        // so only reachability is asserted, not a lasting outage).
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".set pipeline on", &mut out);
        r.handle("x[..4]", &mut out);
        out.clear();
        r.handle(".chaos", &mut out);
        let ops: u64 = out
            .split(", ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        assert!(ops > 0, "gate should see worker-thread ops: {out}");
        out.clear();
        r.handle(".chaos kill", &mut out);
        assert!(out.contains("backend killed"), "{out}");
        r.handle(".chaos revive", &mut out);
        out.clear();
        r.handle("x[0]", &mut out);
        // Same rendering as the inline tower after a kill/revive cycle
        // (the byte-identical test covers full parity).
        assert!(out.contains("100") && !out.contains("error"), "{out}");
    }

    #[test]
    fn replay_backend_reports_pipeline_unavailable() {
        let dir = std::env::temp_dir().join(format!("duel_pipe_replay_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("cap.jsonl");
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(&format!(".record {}", file.display()), &mut out);
        r.handle("x[..4]", &mut out);
        r.handle(".record stop", &mut out);
        r.handle(&format!(".replay {}", file.display()), &mut out);
        out.clear();
        r.handle(".set pipeline on", &mut out);
        assert!(out.contains("no I/O actor"), "{out}");
        out.clear();
        r.handle(".stats", &mut out);
        assert!(out.contains("pipeline: unavailable"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_without_expr_prints_usage() {
        let out = run(&[".query"]);
        assert!(out.contains("usage: .query EXPR"), "{out}");
        assert!(out.contains("spans[..nspans]"), "{out}");
    }

    #[test]
    fn query_reads_live_counters_and_cache() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle("x[..5]", &mut out);
        out.clear();
        r.handle(
            ".query counters[..ncounters].(if (value > 0) name)",
            &mut out,
        );
        assert!(out.contains("eval.values"), "{out}");
        out.clear();
        r.handle(".query cache.backend_reads", &mut out);
        let n: u64 = out.trim().parse().expect("scalar query output");
        assert_eq!(n, r.meta_snapshot().cache.backend_reads, "{out}");
    }

    #[test]
    fn query_spans_and_events_match_the_rings() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".trace on", &mut out);
        r.handle(".trace spans on", &mut out);
        r.handle("x[..8] >? 5", &mut out);
        let snap = r.meta_snapshot();
        assert!(!snap.events.is_empty());
        assert!(!snap.spans.spans.is_empty());
        out.clear();
        r.handle(".query nevents", &mut out);
        assert_eq!(
            out.trim().parse::<usize>().expect("nevents"),
            snap.events.len(),
            "{out}"
        );
        out.clear();
        r.handle(".query #/(spans[..nspans].id)", &mut out);
        assert_eq!(
            out.trim().parse::<usize>().expect("span count"),
            snap.spans.spans.len() + snap.spans.open.len(),
            "{out}"
        );
    }

    #[test]
    fn query_is_isolated_from_the_debuggee_and_the_wire() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".trace on", &mut out);
        r.handle("x[..5]", &mut out);
        let calls_before = r.trace_handle().snapshot().total_calls();
        let counters_before = r.metrics().snapshot().counters;
        out.clear();
        r.handle(".query counters[..ncounters].value", &mut out);
        r.handle(".query events[..nevents].lat_ns >? 0", &mut out);
        assert_eq!(
            r.trace_handle().snapshot().total_calls(),
            calls_before,
            "meta-queries must not touch the debuggee wire"
        );
        assert_eq!(
            r.metrics().snapshot().counters,
            counters_before,
            "meta-queries must not feed the metrics they inspect"
        );
        // The debuggee still evaluates identically afterwards.
        out.clear();
        r.handle("x[1..4,8,12..50] >? 5 <? 10", &mut out);
        assert_eq!(out, "x[3] = 7\nx[18] = 9\nx[47] = 6\n");
    }

    #[test]
    fn query_reports_errors_without_breaking_the_session() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".query ][", &mut out);
        assert!(!out.trim().is_empty(), "parse error should be reported");
        out.clear();
        r.handle(".query no_such_symbol", &mut out);
        assert!(!out.trim().is_empty(), "{out}");
        out.clear();
        r.handle("x[0]", &mut out);
        assert!(out.contains("100"), "{out}");
    }

    #[test]
    fn trace_export_on_an_empty_ring_writes_valid_json() {
        // Regression (satellite of the meta-target PR): exporting
        // before any span or event is recorded must produce a valid
        // metadata-only Chrome trace document.
        let dir = std::env::temp_dir().join(format!("duel_empty_export_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("empty.json");
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(&format!(".trace export {}", file.display()), &mut out);
        assert!(out.contains("trace exported"), "{out}");
        let text = std::fs::read_to_string(&file).unwrap();
        let doc = duel_target::json::Json::parse(&text).expect("empty export parses");
        assert!(doc.get("traceEvents").is_some(), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aliases_persist_across_lines() {
        let out = run(&["v := 40 + 2 ;", "v * 2"]);
        assert!(out.contains("84"), "{out}");
    }

    #[test]
    fn scenario_switching_clears_aliases() {
        let out = run(&["v := 1 ;", ".scenario tree", "v"]);
        assert!(out.contains("scenario loaded"), "{out}");
        assert!(out.contains("`v` is not defined"), "{out}");
    }

    #[test]
    fn ast_and_stats_commands() {
        let out = run(&[".ast a*5 + *b", "1..3", ".stats"]);
        assert!(
            out.contains("(plus (multiply (name \"a\") (constant 5)) (indirect (name \"b\")))"),
            "{out}"
        );
        assert!(out.contains("eval: 3 values"), "{out}");
    }

    #[test]
    fn debugger_commands_require_a_program() {
        let out = run(&[".run"]);
        assert!(out.contains("no program loaded"), "{out}");
    }

    #[test]
    fn set_options() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".set lazy", &mut out);
        r.handle("x[1..3] >? 0", &mut out);
        // Lazy mode: values only, no symbolic paths.
        assert!(out.contains("101\n102\n"), "{out}");
        r.handle(".set threshold 2", &mut out);
        assert_eq!(r.options.compress_threshold, 2);
    }

    #[test]
    fn quit_returns_false() {
        let mut r = Repl::new();
        let mut out = String::new();
        assert!(!r.handle(".quit", &mut out));
        assert!(r.handle("1+1", &mut out));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let out = run(&["nonesuch", "1 +", ".bogus"]);
        assert!(out.contains("`nonesuch` is not defined"), "{out}");
        assert!(out.contains("syntax error"), "{out}");
        assert!(out.contains("unknown command"), "{out}");
    }

    #[test]
    fn budget_errors_name_the_budget() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".set maxsteps 500", &mut out);
        r.handle("while (1) 1 ;", &mut out);
        assert!(out.contains("step budget of 500"), "{out}");
        out.clear();
        r.handle(".set maxdepth 4", &mut out);
        r.handle("1+(2+(3+(4+(5+6))))", &mut out);
        assert!(out.contains("depth budget of 4"), "{out}");
    }

    #[test]
    fn parse_args_flags_and_path() {
        let args: Vec<String> = ["--max-steps", "1000", "--timeout-ms=250", "prog.c"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let a = parse_args(&args).unwrap();
        assert_eq!(a.options.max_ticks, 1000);
        assert_eq!(a.options.timeout_ms, 250);
        assert!(
            a.options.error_values,
            "the REPL defaults to tolerant errors"
        );
        assert_eq!(a.path.as_deref(), Some("prog.c"));
        assert!(a.cache, "caching defaults to on");
        assert!(a.trace_json.is_none());

        let a = parse_args(&[]).unwrap();
        assert_eq!(a.options.max_ticks, EvalOptions::default().max_ticks);
        assert!(a.path.is_none());
        assert!(a.cache);

        let a = parse_args(&["--no-cache".to_string()]).unwrap();
        assert!(!a.cache);

        let a = parse_args(&["--trace-json=out.json".to_string()]).unwrap();
        assert_eq!(a.trace_json.as_deref(), Some("out.json"));
    }

    #[test]
    fn parse_args_rejects_bad_input() {
        let e = parse_args(&["--max-steps".to_string()]).unwrap_err();
        assert!(e.contains("needs a value"), "{e}");
        let e = parse_args(&["--max-depth".to_string(), "x".to_string()]).unwrap_err();
        assert!(e.contains("invalid value"), "{e}");
        let e = parse_args(&["--bogus".to_string()]).unwrap_err();
        assert!(e.contains("unknown flag"), "{e}");
        let e = parse_args(&["--trace-json".to_string()]).unwrap_err();
        assert!(e.contains("needs a value"), "{e}");
    }

    #[test]
    fn trace_command_records_target_calls() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".trace on", &mut out);
        r.handle("x[..5]", &mut out);
        out.clear();
        r.handle(".trace", &mut out);
        assert!(out.contains("tracing on"), "{out}");
        assert!(out.contains("get_bytes"), "{out}");
        out.clear();
        r.handle(".trace dump 3", &mut out);
        assert!(out.contains("ok"), "{out}");
        r.handle(".trace clear", &mut out);
        out.clear();
        r.handle(".trace", &mut out);
        assert!(out.contains("0 calls recorded"), "{out}");
        // Off again: no recording.
        r.handle(".trace off", &mut out);
        r.handle("x[..5]", &mut out);
        out.clear();
        r.handle(".trace", &mut out);
        assert!(out.contains("tracing off"), "{out}");
        assert!(out.contains("0 calls recorded"), "{out}");
    }

    #[test]
    fn tracing_survives_scenario_switch() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".trace on", &mut out);
        r.handle(".scenario scan", &mut out);
        assert!(r.trace_handle().is_enabled());
        r.handle("x[..5]", &mut out);
        out.clear();
        r.handle(".trace", &mut out);
        assert!(out.contains("get_bytes"), "{out}");
    }

    #[test]
    fn profile_shows_cost_table_and_full_attribution() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".scenario scan", &mut out);
        out.clear();
        r.handle(".profile x[..10] >? 5", &mut out);
        // Values first, then the table, hottest node first.
        assert!(out.contains("x[3] = 7"), "{out}");
        assert!(out.contains("self-ticks"), "{out}");
        assert!(out.contains("(display)"), "{out}");
        assert!(
            out.contains("attributed: 100.0% of ticks, 100.0% of reads"),
            "{out}"
        );
        // Profiling must not leave tracing enabled behind.
        assert!(!r.trace_handle().is_enabled());
    }

    #[test]
    fn explain_shows_annotated_tree() {
        let out = run(&[".explain x[..3]"]);
        assert!(out.contains("x[..3] (index)"), "{out}");
        // The index node's children are indented below it.
        assert!(out.contains("\n  x (name)"), "{out}");
        assert!(out.contains("..3 (to)"), "{out}");
    }

    #[test]
    fn stats_reports_all_tower_layers() {
        let out = run(&["x[..10]", ".stats"]);
        assert!(out.contains("eval: 10 values"), "{out}");
        assert!(out.contains("depth "), "{out}");
        assert!(out.contains("yields"), "{out}");
        assert!(out.contains("cache: on"), "{out}");
        assert!(out.contains("retry: "), "{out}");
        assert!(out.contains("supervise: circuit closed"), "{out}");
        assert!(out.contains("degrade on"), "{out}");
        assert!(out.contains("trace: off"), "{out}");
    }

    #[test]
    fn trace_json_export_has_schema_header() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.set_tracing(true);
        r.handle("x[..5]", &mut out);
        let json = r.trace_json();
        assert!(json.starts_with("{\"schema_version\":1,"), "{json}");
        assert!(json.contains("\"name\":\"duel_trace\""), "{json}");
        // Shared envelope convention: config and metrics blocks, like
        // bench reports and capture files.
        assert!(
            json.contains("\"config\":{\"backend\":\"sim\",\"scenario\":\"combined\""),
            "{json}"
        );
        assert!(json.contains("\"metrics\":{\"layers\":["), "{json}");
        assert!(json.contains("\"label\":\"session\""), "{json}");
        assert!(json.contains("\"op\":\"get_bytes\""), "{json}");
    }

    #[test]
    fn stats_reports_cache_counters() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle("x[..10]", &mut out);
        out.clear();
        r.handle(".stats", &mut out);
        assert!(out.contains("cache: on"), "{out}");
        assert!(out.contains("backend reads"), "{out}");
        r.handle(".set cache off", &mut out);
        out.clear();
        r.handle(".stats", &mut out);
        assert!(out.contains("cache: off"), "{out}");
    }

    #[test]
    fn cached_and_uncached_evaluation_agree() {
        let queries = ["x[1..4,8,12..50] >? 5 <? 10", "#/(head-->next)"];
        let mut cached = Repl::with_config(Repl::default_options(), true);
        let mut plain = Repl::with_config(Repl::default_options(), false);
        for q in queries {
            let (mut a, mut b) = (String::new(), String::new());
            cached.handle(q, &mut a);
            plain.handle(q, &mut b);
            assert_eq!(a, b, "`{q}` must not change under caching");
        }
    }

    #[test]
    fn no_cache_repl_passes_reads_through() {
        let mut r = Repl::with_config(Repl::default_options(), false);
        let mut out = String::new();
        r.handle("x[..10]", &mut out);
        out.clear();
        r.handle(".stats", &mut out);
        assert!(out.contains("cache: off"), "{out}");
        assert!(out.contains("0 page hits"), "{out}");
    }

    #[test]
    fn minic_resume_invalidates_the_cache() {
        // A stepped program mutates memory; the REPL must bump the
        // cache epoch at every stop so DUEL reads stay fresh.
        let src = "int g;\nint main() {\n  g = 1;\n  g = 2;\n  g = 3;\n  return 0;\n}\n";
        let dir = std::env::temp_dir().join("duel-cli-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("steps.c");
        std::fs::write(&path, src).unwrap();
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(&format!(".load {}", path.display()), &mut out);
        assert!(out.contains("compiled"), "{out}");
        r.handle(".break 4", &mut out);
        r.handle(".run", &mut out);
        out.clear();
        r.handle("g", &mut out);
        assert_eq!(out.trim_end(), "1", "{out}");
        r.handle(".step", &mut out);
        out.clear();
        r.handle("g", &mut out);
        assert_eq!(out.trim_end(), "2", "stale cached g after step: {out}");
    }

    #[test]
    fn trace_mode_prints_eval_steps() {
        let out = run(&[".set trace on", "(1..2)+(5,9)"]);
        assert!(out.contains("eval(binary) -> yield 1+5"), "{out}");
        assert!(out.contains("eval(alternate) -> NOVALUE"), "{out}");
    }

    #[test]
    fn trace_dump_honours_the_count_argument() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".trace on", &mut out);
        r.handle("x[..10]", &mut out);
        out.clear();
        r.handle(".trace dump 2", &mut out);
        assert_eq!(out.lines().count(), 2, "{out}");
        let full = {
            let mut full = String::new();
            r.handle(".trace dump", &mut full);
            full
        };
        assert!(full.lines().count() > 2, "{full}");
        // `dump N` is exactly the tail of the default dump.
        assert!(full.ends_with(&out), "{full:?} vs {out:?}");
    }

    #[test]
    fn record_then_replay_roundtrips_through_the_repl() {
        let dir = std::env::temp_dir().join("duel-cli-capture-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("session-{}.jsonl", std::process::id()));
        let path = path.display().to_string();
        let queries = ["x[1..4,8,12..50] >? 5 <? 10", "#/(head-->next)"];

        // Record a live session.
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(&format!(".record {path}"), &mut out);
        assert!(out.contains(&format!("recording to `{path}`")), "{out}");
        let mut live = String::new();
        for q in queries {
            r.handle(q, &mut live);
        }
        out.clear();
        r.handle(".record stop", &mut out);
        assert!(out.contains("capture finalized"), "{out}");

        // Replay it in a fresh REPL with no simulator state carried
        // over: output must be byte-identical, capture fully consumed.
        let mut r = Repl::new();
        out.clear();
        r.handle(&format!(".replay {path}"), &mut out);
        assert!(out.contains("replaying"), "{out}");
        let mut replayed = String::new();
        for q in queries {
            r.handle(q, &mut replayed);
        }
        assert_eq!(live, replayed);
        out.clear();
        r.handle(".replay", &mut out);
        assert!(out.contains("capture of scenario `combined`"), "{out}");
        assert!(!out.contains("divergence"), "{out}");
        let consumed: Vec<&str> = out
            .split_whitespace()
            .find(|w| w.contains('/'))
            .map(|w| w.split('/').collect())
            .unwrap_or_default();
        assert_eq!(consumed.len(), 2, "{out}");
        assert_eq!(consumed[0], consumed[1], "all events consumed: {out}");
        std::fs::remove_file(&path).ok();
    }

    /// Kills the chaos gate and drives three consecutive failed health
    /// probes, which is the deterministic way to trip the breaker
    /// (`trip_consecutive` = 3 in the default supervisor config).
    fn kill_and_trip(r: &mut Repl, out: &mut String) {
        r.handle(".chaos kill", out);
        assert!(out.contains("chaos: backend killed"), "{out}");
        for _ in 0..3 {
            r.handle(".health", out);
        }
        assert!(out.contains("backend unhealthy"), "{out}");
        assert!(out.contains("circuit open"), "{out}");
    }

    #[test]
    fn health_reports_a_live_backend() {
        let out = run(&[".health"]);
        assert!(out.contains("backend healthy; circuit closed"), "{out}");
        assert!(out.contains("probes: 1 (0 failed)"), "{out}");
        assert!(out.contains("trips: 0"), "{out}");
    }

    #[test]
    fn open_circuit_serves_cached_reads_stale() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle("x[..3]", &mut out); // warm the page cache
        kill_and_trip(&mut r, &mut out);
        out.clear();
        r.handle("x[..3]", &mut out);
        assert!(out.contains("x[0] = 100 <stale>"), "{out}");
        assert!(out.contains("x[2] = 102 <stale>"), "{out}");
        out.clear();
        r.handle(".stats", &mut out);
        assert!(out.contains("supervise: circuit open"), "{out}");
        assert!(out.contains("stale reads"), "{out}");
        assert!(out.contains("stale\n") || out.contains(" stale"), "{out}");
    }

    #[test]
    fn health_reconnect_recovers_after_revive() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle("x[..3]", &mut out);
        let fresh = out.clone();
        kill_and_trip(&mut r, &mut out);
        out.clear();
        r.handle(".chaos revive", &mut out);
        assert!(out.contains("chaos: backend revived"), "{out}");
        out.clear();
        r.handle(".health reconnect", &mut out);
        assert!(out.contains("reconnected; resync:"), "{out}");
        // Post-recovery output is byte-identical to the pre-kill run.
        out.clear();
        r.handle("x[..3]", &mut out);
        assert_eq!(out, fresh, "post-resync output must match");
        assert!(!out.contains("<stale>"), "{out}");
        out.clear();
        r.handle(".health", &mut out);
        assert!(out.contains("backend healthy; circuit closed"), "{out}");
        assert!(out.contains("reconnects: 1"), "{out}");
    }

    #[test]
    fn open_circuit_fails_writes_fast() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle("x[..3]", &mut out);
        kill_and_trip(&mut r, &mut out);
        out.clear();
        r.handle("x[0] = 5 ;", &mut out);
        assert!(out.contains("circuit open"), "{out}");
    }

    #[test]
    fn degrade_off_fails_reads_fast() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle("x[..3]", &mut out);
        kill_and_trip(&mut r, &mut out);
        r.handle(".set degrade off", &mut out);
        out.clear();
        r.handle("x[..3]", &mut out);
        assert!(out.contains("circuit open"), "{out}");
        assert!(!out.contains("<stale>"), "{out}");
        // Back on: stale service resumes.
        r.handle(".set degrade on", &mut out);
        out.clear();
        r.handle("x[..3]", &mut out);
        assert!(out.contains("<stale>"), "{out}");
    }

    #[test]
    fn chaos_status_and_campaign_are_deterministic() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".chaos", &mut out);
        assert!(out.contains("chaos: mode live"), "{out}");
        out.clear();
        r.handle(".chaos campaign 42 3 1000", &mut out);
        assert!(out.contains("chaos: campaign of 3 events"), "{out}");
        let again = {
            let mut s = String::new();
            r.handle(".chaos campaign 42 3 1000", &mut s);
            s
        };
        assert_eq!(out, again, "campaigns are seed-deterministic");
    }

    #[test]
    fn chaos_heal_restores_service_after_n_ops() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle("x[..3]", &mut out);
        out.clear();
        r.handle(".chaos kill", &mut out);
        r.handle(".chaos heal 1", &mut out);
        assert!(out.contains("healing after 1 more ops"), "{out}");
        // The healed gate makes the next health probe succeed again.
        r.handle(".health", &mut out);
        out.clear();
        r.handle(".health", &mut out);
        assert!(out.contains("backend healthy"), "{out}");
    }

    #[test]
    fn degrade_state_survives_scenario_switch() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".set degrade off", &mut out);
        r.handle(".scenario scan", &mut out);
        assert!(!r.backend.degrade_enabled(), "degrade must stay off");
        out.clear();
        r.handle(".stats", &mut out);
        assert!(out.contains("degrade off"), "{out}");
    }

    // ---- causal span tracing --------------------------------------------

    #[test]
    fn span_export_loads_as_chrome_trace_json() {
        let dir = std::env::temp_dir().join("duel-cli-span-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.json", std::process::id()));
        let path = path.display().to_string();
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".trace on", &mut out);
        r.handle(".trace spans on", &mut out);
        r.handle("x[..10] >? 5", &mut out);
        out.clear();
        r.handle(&format!(".trace export {path}"), &mut out);
        assert!(out.contains("trace exported"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        let v = duel_target::json::Json::parse(&json).expect("perfetto export parses");
        let events = v.get("traceEvents").and_then(|e| e.items()).unwrap();
        assert!(events.len() > 10, "spans + wire events expected");
        assert!(json.contains("\"cat\":\"root\""), "{json}");
        assert!(json.contains("\"cat\":\"node\""), "{json}");
        assert!(json.contains("\"cat\":\"wire-event\""), "{json}");
        std::fs::remove_file(&path).ok();

        // Every buffered wire event chains to a live eval root.
        let snap = r.span_context().snapshot();
        let events = r.trace_handle().recent_events(usize::MAX);
        let (ok, total) = duel_target::attribution_coverage(&snap, &events);
        assert!(total > 0);
        assert_eq!(ok, total, "all wire events must have a rooted ancestry");
    }

    #[test]
    fn flame_command_writes_folded_stacks() {
        let dir = std::env::temp_dir().join("duel-cli-span-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("flame-{}.txt", std::process::id()));
        let path = path.display().to_string();
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".trace on", &mut out);
        r.handle(".trace spans on", &mut out);
        r.handle("x[..5]", &mut out);
        out.clear();
        r.handle(&format!(".trace flame {path} reads"), &mut out);
        assert!(out.contains("folded stacks written"), "{out}");
        let folded = std::fs::read_to_string(&path).unwrap();
        let line = folded.lines().next().unwrap();
        // `frame;frame;...;op weight`
        assert!(line.contains(';'), "{line}");
        assert!(
            line.starts_with("eval "),
            "stacks root at the eval span: {line}"
        );
        let weight: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(weight >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn top_ranks_nodes_ops_and_counters() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".top", &mut out);
        assert!(out.contains("span tracing is off"), "{out}");
        r.handle(".trace on", &mut out);
        r.handle(".trace spans on", &mut out);
        r.handle("x[..10]", &mut out);
        out.clear();
        r.handle(".top", &mut out);
        assert!(out.contains("eval"), "{out}");
        assert!(
            out.contains("index"),
            "hottest nodes include the index: {out}"
        );
        assert!(out.contains("wire ops by total latency"), "{out}");
        assert!(out.contains("get_bytes"), "{out}");
        assert!(out.contains("busiest counters"), "{out}");
        assert!(out.contains("eval.values"), "{out}");
    }

    #[test]
    fn stats_json_uses_the_shared_envelope() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle("x[..5]", &mut out);
        out.clear();
        r.handle(".stats json", &mut out);
        let v = duel_target::json::Json::parse(out.trim()).expect("stats json parses");
        assert_eq!(
            v.get("schema_version").and_then(|x| x.as_u64()),
            Some(1),
            "{out}"
        );
        assert_eq!(
            v.get("name").and_then(|x| x.as_str()),
            Some("duel_stats"),
            "{out}"
        );
        let cfg = v.get("config").expect("config block");
        assert_eq!(cfg.get("backend").and_then(|x| x.as_str()), Some("sim"));
        let m = v.get("metrics").expect("metrics block");
        assert_eq!(m.get("eval_values").and_then(|x| x.as_u64()), Some(5));
        // The always-on registry feeds the same document.
        assert_eq!(m.get("eval.commands").and_then(|x| x.as_u64()), Some(1));
    }

    #[test]
    fn trace_buf_resizes_both_rings_and_survives_swaps() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".set trace_buf 64", &mut out);
        assert!(out.contains("resized to 64"), "{out}");
        assert_eq!(r.trace_handle().capacity(), 64);
        assert_eq!(r.span_context().capacity(), 64);
        r.handle(".scenario scan", &mut out);
        assert_eq!(r.trace_handle().capacity(), 64, "sticky across swap");
        assert_eq!(r.span_context().capacity(), 64, "sticky across swap");
        // The ring stays bounded: more events than capacity drop oldest.
        r.handle(".trace on", &mut out);
        r.handle(".trace spans on", &mut out);
        r.handle("x[..60]", &mut out);
        let snap = r.span_context().snapshot();
        assert!(snap.spans.len() <= 64, "{}", snap.spans.len());
    }

    #[test]
    fn trace_clear_resets_counters_histograms_rings_and_metrics() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".trace on", &mut out);
        r.handle(".trace spans on", &mut out);
        r.handle("x[..10]", &mut out);
        // Everything is hot.
        assert!(r.trace_handle().snapshot().total_calls() > 0);
        assert!(!r.span_context().snapshot().spans.is_empty());
        assert!(!r.metrics().snapshot().counters.is_empty());
        r.handle(".trace clear", &mut out);
        let t = r.trace_handle().snapshot();
        assert_eq!(t.total_calls(), 0);
        assert_eq!(t.events_held, 0);
        // No stale latency buckets may survive the clear: the per-op
        // histograms must be all-zero, not just the counters.
        for o in &t.ops {
            assert!(
                o.hist.iter().all(|&b| b == 0),
                "stale latency buckets for {} after .trace clear",
                o.op.name()
            );
            assert_eq!(o.total_ns, 0);
        }
        let s = r.span_context().snapshot();
        assert!(s.spans.is_empty() && s.open.is_empty() && s.dropped == 0);
        let m = r.metrics().snapshot();
        assert!(m.counters.is_empty() && m.histograms.is_empty());
    }

    #[test]
    fn span_state_survives_scenario_switch_and_swap_resets_counters() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle(".trace on", &mut out);
        r.handle(".trace spans on", &mut out);
        r.handle("x[..10]", &mut out);
        r.handle(".scenario scan", &mut out);
        // Sticky enablement on the fresh tower...
        assert!(r.span_context().is_enabled());
        assert!(r.trace_handle().is_enabled());
        // ...but the fresh tower starts with empty counters, rings, and
        // histograms (no stale buckets from the old backend).
        let t = r.trace_handle().snapshot();
        assert_eq!(t.total_calls(), 0);
        for o in &t.ops {
            assert!(o.hist.iter().all(|&b| b == 0));
        }
        assert!(r.span_context().snapshot().spans.is_empty());
        // Metrics deliberately persist (session-lifetime), and the
        // watermark reset means the next command charges only its own
        // traffic rather than a negative delta.
        let before = r
            .metrics()
            .snapshot()
            .counter("wire.get_bytes.calls")
            .unwrap_or(0);
        out.clear();
        r.handle("x[..10]", &mut out);
        let after = r
            .metrics()
            .snapshot()
            .counter("wire.get_bytes.calls")
            .unwrap_or(0);
        assert!(after >= before, "no negative wire deltas after a swap");
    }

    #[test]
    fn eval_stats_carry_the_trace_id() {
        let mut r = Repl::new();
        let mut out = String::new();
        r.handle("x[..3]", &mut out);
        assert_eq!(r.last_stats.trace_id, 0, "no trace id while spans are off");
        r.handle(".trace spans on", &mut out);
        r.handle("x[..3]", &mut out);
        let first = r.last_stats.trace_id;
        assert!(first >= 1, "span-traced evals get a trace id");
        r.handle("x[..3]", &mut out);
        assert_eq!(r.last_stats.trace_id, first + 1, "each eval is one trace");
    }
}
