//! The DUEL REPL binary.
//!
//! ```sh
//! duel                 # explore a built-in scenario
//! duel program.c       # debug a mini-C program
//! duel --max-steps 100000 --timeout-ms 2000 program.c
//! ```

use std::io::{BufRead, Write};

use duel_cli::{parse_args, Repl, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let parsed = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut repl = Repl::with_config(parsed.options, parsed.cache);
    if parsed.trace_json.is_some() {
        repl.set_tracing(true);
    }
    if parsed.trace_perfetto.is_some() {
        // Perfetto export needs both the wire events and the causal
        // span tree, so it implies both kinds of tracing.
        repl.set_tracing(true);
        repl.set_span_tracing(true);
    }
    if let Some(n) = parsed.trace_buf {
        repl.set_trace_buf(n);
    }
    let mut out = String::new();
    if let Some(path) = &parsed.replay {
        repl.handle(&format!(".replay {path}"), &mut out);
        print!("{out}");
        out.clear();
    }
    if let Some(path) = parsed.path {
        repl.handle(&format!(".load {path}"), &mut out);
        print!("{out}");
        out.clear();
    } else if parsed.replay.is_none() {
        println!("DUEL — a very high-level debugging language (USENIX '93).");
        println!("Built-in scenario loaded: x, hash, L, head, root, argv, s.");
        println!("Try: x[1..4,8,12..50] >? 5 <? 10   (or .help)\n");
    }
    if let Some(path) = &parsed.record {
        repl.handle(&format!(".record {path}"), &mut out);
        print!("{out}");
        out.clear();
    }
    let stdin = std::io::stdin();
    loop {
        print!("duel> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let more = repl.handle(&line, &mut out);
        print!("{out}");
        out.clear();
        if !more {
            break;
        }
    }
    if parsed.record.is_some() {
        // Finalize explicitly so the footer lands before we report;
        // dropping the Repl would also finalize, but silently.
        repl.handle(".record stop", &mut out);
        print!("{out}");
        out.clear();
    }
    if let Some(path) = parsed.trace_json {
        if let Err(e) = std::fs::write(&path, repl.trace_json()) {
            eprintln!("cannot write trace to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("trace written to {path}");
    }
    if let Some(path) = parsed.trace_perfetto {
        if let Err(e) = std::fs::write(&path, repl.perfetto_json()) {
            eprintln!("cannot write perfetto trace to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("perfetto trace written to {path} (load in ui.perfetto.dev)");
    }
}
