//! Translation-unit compilation: type definitions, global
//! materialization, and function lowering.

use std::collections::HashMap;

use duel_ctype::{Abi, Field, Prim, TypeId, TypeKind};
use duel_target::SimTarget;

use crate::{
    ast::{CBase, CBinOp, CDeriv, CExpr, CInit, CItem, CUnOp, CUnit},
    codegen::Codegen,
    ir::IrFunction,
    parse::parse,
    CompileError, CompileResult,
};

/// A compiled mini-C program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All functions.
    pub functions: Vec<IrFunction>,
    /// Function name → index.
    pub by_name: HashMap<String, usize>,
    /// Global name → type (also registered in the target).
    pub globals: HashMap<String, TypeId>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&IrFunction> {
        self.by_name.get(name).map(|&i| &self.functions[i])
    }
}

/// Resolves a base + derivations against the target's type table.
pub(crate) fn resolve_ty(
    t: &mut SimTarget,
    base: &CBase,
    derivs: &[CDeriv],
    line: u32,
) -> CompileResult<TypeId> {
    let tt = &mut t.core.types;
    let mut ty = match base {
        CBase::Void => tt.void(),
        CBase::Prim(p) => tt.prim(*p),
        CBase::Struct(tag) => tt.declare_struct(tag).1,
        CBase::Union(tag) => tt.declare_union(tag).1,
        CBase::Enum(tag) => {
            if tag.is_empty() {
                tt.prim(Prim::Int)
            } else if let Some(eid) = tt.enum_tag(tag) {
                let def = tt.enum_def(eid).clone();
                tt.define_enum(Some(tag), def.enumerators).1
            } else {
                return Err(CompileError {
                    line,
                    message: format!("unknown enum `{tag}`"),
                });
            }
        }
        CBase::Typedef(name) => match tt.typedef(name) {
            Some(t) => t,
            None => {
                return Err(CompileError {
                    line,
                    message: format!("unknown type `{name}`"),
                })
            }
        },
    };
    // Pointer stars apply first; array dimensions apply innermost-first
    // (`int m[3][4]` is an array of 3 arrays of 4 ints).
    for d in derivs.iter().filter(|d| matches!(d, CDeriv::Ptr)) {
        let _ = d;
        ty = t.core.types.pointer(ty);
    }
    for d in derivs.iter().rev() {
        if let CDeriv::Array(n) = d {
            ty = t.core.types.array(ty, Some(*n));
        }
    }
    Ok(ty)
}

/// A compile-time constant.
#[derive(Clone, Copy, Debug)]
enum CV {
    I(i64),
    F(f64),
}

impl CV {
    fn as_i(self) -> i64 {
        match self {
            CV::I(v) => v,
            CV::F(f) => f as i64,
        }
    }

    fn as_f(self) -> f64 {
        match self {
            CV::I(v) => v as f64,
            CV::F(f) => f,
        }
    }
}

fn const_eval(t: &mut SimTarget, e: &CExpr) -> CompileResult<CV> {
    let err = |m: &str| CompileError {
        line: 0,
        message: m.to_string(),
    };
    Ok(match e {
        CExpr::Int(v) => CV::I(*v),
        CExpr::Char(c) => CV::I(*c as i64),
        CExpr::Float(f) => CV::F(*f),
        CExpr::Str(s) => {
            let addr = t.core.intern_cstring(s).map_err(|e| err(&e.to_string()))?;
            CV::I(addr as i64)
        }
        CExpr::Ident(name) => match t.core.types.enumerator(name) {
            Some((_, v)) => CV::I(v),
            None => return Err(err(&format!("`{name}` is not a constant"))),
        },
        CExpr::Un(CUnOp::Neg, inner) => match const_eval(t, inner)? {
            CV::I(v) => CV::I(-v),
            CV::F(f) => CV::F(-f),
        },
        CExpr::Un(CUnOp::BitNot, inner) => CV::I(!const_eval(t, inner)?.as_i()),
        CExpr::Un(CUnOp::Not, inner) => CV::I((const_eval(t, inner)?.as_i() == 0) as i64),
        CExpr::Un(CUnOp::Pos, inner) => const_eval(t, inner)?,
        CExpr::Bin(op, a, b) => {
            let a = const_eval(t, a)?;
            let b = const_eval(t, b)?;
            if matches!(a, CV::F(_)) || matches!(b, CV::F(_)) {
                let (x, y) = (a.as_f(), b.as_f());
                match op {
                    CBinOp::Add => CV::F(x + y),
                    CBinOp::Sub => CV::F(x - y),
                    CBinOp::Mul => CV::F(x * y),
                    CBinOp::Div => CV::F(x / y),
                    _ => return Err(err("unsupported constant float operation")),
                }
            } else {
                let (x, y) = (a.as_i(), b.as_i());
                let v = match op {
                    CBinOp::Add => x.wrapping_add(y),
                    CBinOp::Sub => x.wrapping_sub(y),
                    CBinOp::Mul => x.wrapping_mul(y),
                    CBinOp::Div => {
                        if y == 0 {
                            return Err(err("division by zero in constant"));
                        }
                        x / y
                    }
                    CBinOp::Rem => {
                        if y == 0 {
                            return Err(err("division by zero in constant"));
                        }
                        x % y
                    }
                    CBinOp::Shl => x << (y & 63),
                    CBinOp::Shr => x >> (y & 63),
                    CBinOp::And => x & y,
                    CBinOp::Or => x | y,
                    CBinOp::Xor => x ^ y,
                    CBinOp::Lt => (x < y) as i64,
                    CBinOp::Le => (x <= y) as i64,
                    CBinOp::Gt => (x > y) as i64,
                    CBinOp::Ge => (x >= y) as i64,
                    CBinOp::Eq => (x == y) as i64,
                    CBinOp::Ne => (x != y) as i64,
                    CBinOp::LogAnd => ((x != 0) && (y != 0)) as i64,
                    CBinOp::LogOr => ((x != 0) || (y != 0)) as i64,
                };
                CV::I(v)
            }
        }
        CExpr::SizeofT(tn) => {
            let ty = resolve_ty(t, &tn.base, &tn.derivs, 0)?;
            let n = t
                .core
                .types
                .size_of(ty, &t.core.abi)
                .map_err(|e| err(&e.to_string()))?;
            CV::I(n as i64)
        }
        CExpr::Cast(_, inner) => const_eval(t, inner)?,
        other => return Err(err(&format!("not a constant expression: {other:?}"))),
    })
}

fn write_scalar(t: &mut SimTarget, addr: u64, ty: TypeId, cv: CV) -> CompileResult<()> {
    let err = |m: String| CompileError {
        line: 0,
        message: m,
    };
    match t.core.types.kind(ty).clone() {
        TypeKind::Prim(p) if p.is_float() => {
            let size = p.size(&t.core.abi) as usize;
            let raw = if size == 4 {
                (cv.as_f() as f32).to_bits() as u64
            } else {
                cv.as_f().to_bits()
            };
            t.core
                .write_uint(addr, raw, size)
                .map_err(|e| err(e.to_string()))
        }
        TypeKind::Prim(p) => {
            let size = p.size(&t.core.abi) as usize;
            t.core
                .write_uint(addr, cv.as_i() as u64, size)
                .map_err(|e| err(e.to_string()))
        }
        TypeKind::Enum(_) => t
            .core
            .write_uint(addr, cv.as_i() as u64, 4)
            .map_err(|e| err(e.to_string())),
        TypeKind::Pointer(_) => t
            .core
            .write_ptr(addr, cv.as_i() as u64)
            .map_err(|e| err(e.to_string())),
        other => Err(err(format!("cannot initialize a value of type {other:?}"))),
    }
}

fn write_init(t: &mut SimTarget, addr: u64, ty: TypeId, init: &CInit) -> CompileResult<()> {
    let err = |m: String| CompileError {
        line: 0,
        message: m,
    };
    match init {
        CInit::Scalar(e) => {
            // `char s[N] = "…"` writes the bytes.
            if let (CExpr::Str(s), TypeKind::Array { elem, .. }) =
                (e, t.core.types.kind(ty).clone())
            {
                if matches!(
                    t.core.types.kind(elem),
                    TypeKind::Prim(Prim::Char | Prim::SChar | Prim::UChar)
                ) {
                    t.core
                        .mem
                        .write(addr, s.as_bytes())
                        .map_err(|e| err(e.to_string()))?;
                    t.core
                        .mem
                        .write(addr + s.len() as u64, &[0])
                        .map_err(|e| err(e.to_string()))?;
                    return Ok(());
                }
            }
            let cv = const_eval(t, e)?;
            write_scalar(t, addr, ty, cv)
        }
        CInit::List(items) => match t.core.types.kind(ty).clone() {
            TypeKind::Array { elem, len } => {
                let esize = t
                    .core
                    .types
                    .size_of(elem, &t.core.abi)
                    .map_err(|e| err(e.to_string()))?;
                let max = len.unwrap_or(items.len() as u64);
                for (i, item) in items.iter().enumerate() {
                    if (i as u64) >= max {
                        return Err(err("too many initializers".to_string()));
                    }
                    write_init(t, addr + i as u64 * esize, elem, item)?;
                }
                Ok(())
            }
            TypeKind::Struct(rid) => {
                let layout = t
                    .core
                    .types
                    .record_layout(rid, &t.core.abi)
                    .map_err(|e| err(e.to_string()))?;
                let fields: Vec<(TypeId, u64)> = {
                    let rec = t.core.types.record(rid);
                    rec.fields
                        .iter()
                        .zip(layout.fields.iter())
                        .map(|(f, fl)| (f.ty, fl.offset))
                        .collect()
                };
                for (item, (fty, off)) in items.iter().zip(fields.iter()) {
                    write_init(t, addr + off, *fty, item)?;
                }
                Ok(())
            }
            other => Err(err(format!(
                "brace initializer needs an array or struct, got \
                 {other:?}"
            ))),
        },
    }
}

/// Compiles mini-C source into a program plus the target holding its
/// globals (types registered, memory initialized).
pub fn compile(src: &str) -> CompileResult<(Program, SimTarget)> {
    let unit = parse(src)?;
    let mut t = SimTarget::new(Abi::lp64());
    compile_into(&unit, &mut t).map(|p| (p, t))
}

/// Compiles a parsed unit into an existing target.
pub fn compile_into(unit: &CUnit, t: &mut SimTarget) -> CompileResult<Program> {
    // Pass 1: declare all record tags (forward references).
    for item in &unit.items {
        if let CItem::Record { is_union, tag, .. } = item {
            if *is_union {
                t.core.types.declare_union(tag);
            } else {
                t.core.types.declare_struct(tag);
            }
        }
    }
    // Pass 2: define records, enums, typedefs in order.
    for item in &unit.items {
        match item {
            CItem::Record {
                is_union,
                tag,
                fields,
            } => {
                let mut fs = Vec::new();
                for f in fields {
                    let ty = resolve_ty(t, &f.base, &f.decl.derivs, 0)?;
                    fs.push(match f.bits {
                        Some(w) => Field::bitfield(&f.decl.name, ty, w),
                        None => Field::new(&f.decl.name, ty),
                    });
                }
                let rid = if *is_union {
                    t.core.types.declare_union(tag).0
                } else {
                    t.core.types.declare_struct(tag).0
                };
                t.core.types.define_record(rid, fs);
            }
            CItem::Enum { tag, enumerators } => {
                let mut out = Vec::new();
                let mut next = 0i64;
                for (name, v) in enumerators {
                    let val = match v {
                        Some(e) => const_eval(t, e)?.as_i(),
                        None => next,
                    };
                    next = val + 1;
                    out.push((name.clone(), val));
                }
                t.core.types.define_enum(tag.as_deref(), out);
            }
            CItem::Typedef { base, decl } => {
                let ty = resolve_ty(t, base, &decl.derivs, 0)?;
                t.core.types.define_typedef(&decl.name, ty);
            }
            _ => {}
        }
    }
    // Pass 3: globals.
    let mut globals: HashMap<String, TypeId> = HashMap::new();
    for item in &unit.items {
        if let CItem::Globals { base, decls } = item {
            for (d, init) in decls {
                let ty = resolve_ty(t, base, &d.derivs, 0)?;
                let addr = t
                    .core
                    .define_global(&d.name, ty)
                    .map_err(|e| CompileError {
                        line: 0,
                        message: e.to_string(),
                    })?;
                globals.insert(d.name.clone(), ty);
                if let Some(init) = init {
                    write_init(t, addr, ty, init)?;
                }
            }
        }
    }
    // Pass 4: function signatures.
    let mut funcs: HashMap<String, (TypeId, Vec<TypeId>)> = HashMap::new();
    for item in &unit.items {
        if let CItem::Function {
            ret_base,
            ret_derivs,
            name,
            params,
            ..
        } = item
        {
            let ret = resolve_ty(t, ret_base, ret_derivs, 0)?;
            let mut ps = Vec::new();
            for p in params {
                ps.push(resolve_ty(t, &p.base, &p.decl.derivs, 0)?);
            }
            funcs.insert(name.clone(), (ret, ps));
        }
    }
    // Pass 5: lower bodies.
    let mut functions = Vec::new();
    let mut by_name = HashMap::new();
    for item in &unit.items {
        if let CItem::Function {
            ret_base,
            ret_derivs,
            name,
            params,
            body,
            line,
        } = item
        {
            let ret = resolve_ty(t, ret_base, ret_derivs, *line)?;
            let cg = Codegen::new(t, &globals, &funcs);
            let f = cg.finish(params, body, ret, name, *line)?;
            by_name.insert(name.clone(), functions.len());
            functions.push(f);
        }
    }
    Ok(Program {
        functions,
        by_name,
        globals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use duel_target::Target;

    #[test]
    fn globals_materialize_with_initializers() {
        let (p, mut t) =
            compile("int x[3] = {10, 20, 30}; int y = 6*7; char *s = \"hi\";").unwrap();
        assert!(p.globals.contains_key("x"));
        let x = t.get_variable("x").unwrap();
        assert_eq!(t.core.read_int(x.addr + 4).unwrap(), 20);
        let y = t.get_variable("y").unwrap();
        assert_eq!(t.core.read_int(y.addr).unwrap(), 42);
        let s = t.get_variable("s").unwrap();
        let sp = t.core.read_uint(s.addr, 8).unwrap();
        assert_eq!(t.core.mem.read_cstring(sp, 8).unwrap(), "hi");
    }

    #[test]
    fn enums_and_consts() {
        let (_, mut t) = compile(
            "enum color { RED, GREEN = 5, BLUE };\
             int c = BLUE;",
        )
        .unwrap();
        let c = t.get_variable("c").unwrap();
        assert_eq!(t.core.read_int(c.addr).unwrap(), 6);
    }

    #[test]
    fn struct_global_with_initializer() {
        let (_, mut t) = compile(
            "struct pt { int x; int y; };\
             struct pt origin = {3, 4};",
        )
        .unwrap();
        let o = t.get_variable("origin").unwrap();
        assert_eq!(t.core.read_int(o.addr).unwrap(), 3);
        assert_eq!(t.core.read_int(o.addr + 4).unwrap(), 4);
    }

    #[test]
    fn char_array_string_initializer() {
        let (_, mut t) = compile("char msg[16] = \"hello\";").unwrap();
        let m = t.get_variable("msg").unwrap();
        assert_eq!(t.core.mem.read_cstring(m.addr, 16).unwrap(), "hello");
    }

    #[test]
    fn functions_are_collected() {
        let (p, _) = compile(
            "int add(int a, int b) { return a + b; }\
             int main() { return add(2, 3); }",
        )
        .unwrap();
        assert!(p.function("add").is_some());
        assert!(p.function("main").is_some());
        assert_eq!(p.function("add").unwrap().params.len(), 2);
    }

    #[test]
    fn unknown_type_errors() {
        assert!(compile("foo x;").is_err());
        assert!(compile("enum nope e;").is_err());
    }
}
