//! The mini-C recursive-descent parser.

use duel_ctype::Prim;

use crate::{
    ast::{
        CBase, CBinOp, CDeclarator, CDeriv, CExpr, CField, CInit, CItem, CParam, CStmt, CTypeName,
        CUnOp, CUnit,
    },
    lex::{lex, CTok, Lexed},
    CompileError, CompileResult,
};

const TYPE_KEYWORDS: &[&str] = &[
    "void", "char", "short", "int", "long", "float", "double", "unsigned", "signed", "struct",
    "union", "enum",
];

const KEYWORDS: &[&str] = &[
    "void", "char", "short", "int", "long", "float", "double", "unsigned", "signed", "struct",
    "union", "enum", "typedef", "if", "else", "while", "for", "do", "return", "break", "continue",
    "sizeof", "static", "extern",
];

/// Parses a translation unit.
pub fn parse(src: &str) -> CompileResult<CUnit> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        typedefs: Vec::new(),
        depth: 0,
    };
    p.unit()
}

struct Parser {
    toks: Vec<Lexed>,
    pos: usize,
    typedefs: Vec<String>,
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &CTok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn peek2(&self) -> &CTok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }

    fn bump(&mut self) -> CTok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, m: impl Into<String>) -> CompileResult<T> {
        Err(CompileError {
            line: self.line(),
            message: m.into(),
        })
    }

    fn eat(&mut self, p: &str) -> bool {
        if self.peek().is(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: &str) -> bool {
        if self.peek().is_kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: &str) -> CompileResult<()> {
        if self.eat(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek().describe()))
        }
    }

    fn ident(&mut self) -> CompileResult<String> {
        match self.bump() {
            CTok::Ident(n) if !KEYWORDS.contains(&n.as_str()) => Ok(n),
            other => self.err(format!(
                "expected an identifier, found {}",
                other.describe()
            )),
        }
    }

    fn at_type(&self) -> bool {
        match self.peek() {
            CTok::Ident(s) => {
                TYPE_KEYWORDS.contains(&s.as_str()) || self.typedefs.iter().any(|t| t == s)
            }
            _ => false,
        }
    }

    // ----- top level ------------------------------------------------------

    fn unit(&mut self) -> CompileResult<CUnit> {
        let mut items = Vec::new();
        while self.peek() != &CTok::Eof {
            // Storage classes are accepted and ignored.
            while self.eat_kw("static") || self.eat_kw("extern") {}
            if self.eat_kw("typedef") {
                let base = self.base_type(&mut items)?;
                let decl = self.declarator()?;
                self.expect(";")?;
                self.typedefs.push(decl.name.clone());
                items.push(CItem::Typedef { base, decl });
                continue;
            }
            let line = self.line();
            let base = self.base_type(&mut items)?;
            // A bare `struct s { … };` definition.
            if self.eat(";") {
                continue;
            }
            let first = self.declarator()?;
            if self.peek().is("(") {
                // A function definition.
                self.bump();
                let params = self.params()?;
                self.expect(")")?;
                // Tolerate prototypes.
                if self.eat(";") {
                    continue;
                }
                self.expect("{")?;
                let mut body = Vec::new();
                while !self.peek().is("}") {
                    body.push(self.stmt()?);
                }
                self.expect("}")?;
                items.push(CItem::Function {
                    ret_base: base,
                    ret_derivs: first.derivs,
                    name: first.name,
                    params,
                    body,
                    line,
                });
                continue;
            }
            // Globals.
            let mut decls = Vec::new();
            let init = if self.eat("=") {
                Some(self.initializer()?)
            } else {
                None
            };
            decls.push((first, init));
            while self.eat(",") {
                let d = self.declarator()?;
                let init = if self.eat("=") {
                    Some(self.initializer()?)
                } else {
                    None
                };
                decls.push((d, init));
            }
            self.expect(";")?;
            items.push(CItem::Globals { base, decls });
        }
        Ok(CUnit { items })
    }

    fn params(&mut self) -> CompileResult<Vec<CParam>> {
        let mut out = Vec::new();
        if self.peek().is(")") {
            return Ok(out);
        }
        if self.peek().is_kw("void") && self.peek2().is(")") {
            self.bump();
            return Ok(out);
        }
        loop {
            if self.eat("...") {
                // Varargs accepted (native functions handle them).
                break;
            }
            let mut dummy = Vec::new();
            let base = self.base_type(&mut dummy)?;
            if !dummy.is_empty() {
                return self.err("cannot define a type inside a parameter list");
            }
            let decl = self.declarator()?;
            out.push(CParam { base, decl });
            if !self.eat(",") {
                break;
            }
        }
        Ok(out)
    }

    /// Parses a base type. Inline struct/union/enum *definitions* are
    /// appended to `defs` as items so codegen sees them first.
    fn base_type(&mut self, defs: &mut Vec<CItem>) -> CompileResult<CBase> {
        if self.eat_kw("struct") {
            return self.record_rest(false, defs);
        }
        if self.eat_kw("union") {
            return self.record_rest(true, defs);
        }
        if self.eat_kw("enum") {
            let tag = match self.peek() {
                CTok::Ident(n) if !KEYWORDS.contains(&n.as_str()) => {
                    let n = n.clone();
                    self.bump();
                    Some(n)
                }
                _ => None,
            };
            if self.eat("{") {
                let mut enumerators = Vec::new();
                while !self.peek().is("}") {
                    let name = self.ident()?;
                    let v = if self.eat("=") {
                        Some(self.assign_expr()?)
                    } else {
                        None
                    };
                    enumerators.push((name, v));
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect("}")?;
                defs.push(CItem::Enum {
                    tag: tag.clone(),
                    enumerators,
                });
            }
            return Ok(CBase::Enum(tag.unwrap_or_default()));
        }
        if self.eat_kw("void") {
            return Ok(CBase::Void);
        }
        // Integer keyword soup.
        let mut signed: Option<bool> = None;
        let mut longs = 0u8;
        let mut base: Option<&str> = None;
        let mut any = false;
        loop {
            if self.eat_kw("signed") {
                signed = Some(true);
            } else if self.eat_kw("unsigned") {
                signed = Some(false);
            } else if self.eat_kw("long") {
                longs += 1;
            } else if self.eat_kw("short") {
                base = Some("short");
            } else if self.eat_kw("char") {
                base = Some("char");
            } else if self.eat_kw("int") {
                if base.is_none() {
                    base = Some("int");
                }
            } else if self.eat_kw("float") {
                base = Some("float");
            } else if self.eat_kw("double") {
                base = Some("double");
            } else {
                break;
            }
            any = true;
        }
        if !any {
            if let CTok::Ident(n) = self.peek() {
                if self.typedefs.iter().any(|t| t == n) {
                    let n = n.clone();
                    self.bump();
                    return Ok(CBase::Typedef(n));
                }
            }
            return self.err(format!("expected a type, found {}", self.peek().describe()));
        }
        let unsigned = signed == Some(false);
        let prim = match (base, longs) {
            (Some("char"), _) => {
                if unsigned {
                    Prim::UChar
                } else if signed == Some(true) {
                    Prim::SChar
                } else {
                    Prim::Char
                }
            }
            (Some("short"), _) => {
                if unsigned {
                    Prim::UShort
                } else {
                    Prim::Short
                }
            }
            (Some("float"), _) => Prim::Float,
            (Some("double"), _) => Prim::Double,
            (_, 0) => {
                if unsigned {
                    Prim::UInt
                } else {
                    Prim::Int
                }
            }
            (_, 1) => {
                if unsigned {
                    Prim::ULong
                } else {
                    Prim::Long
                }
            }
            _ => {
                if unsigned {
                    Prim::ULongLong
                } else {
                    Prim::LongLong
                }
            }
        };
        Ok(CBase::Prim(prim))
    }

    fn record_rest(&mut self, is_union: bool, defs: &mut Vec<CItem>) -> CompileResult<CBase> {
        let tag = self.ident()?;
        if self.eat("{") {
            let mut fields = Vec::new();
            while !self.peek().is("}") {
                let mut inner = Vec::new();
                let base = self.base_type(&mut inner)?;
                defs.extend(inner);
                loop {
                    let decl = self.declarator()?;
                    let bits = if self.eat(":") {
                        match self.bump() {
                            CTok::Int(v) => Some(v as u8),
                            other => {
                                return self.err(format!(
                                    "bitfield width must be an integer, \
                                     found {}",
                                    other.describe()
                                ))
                            }
                        }
                    } else {
                        None
                    };
                    fields.push(CField {
                        base: base.clone(),
                        decl,
                        bits,
                    });
                    if !self.eat(",") {
                        break;
                    }
                }
                self.expect(";")?;
            }
            self.expect("}")?;
            defs.push(CItem::Record {
                is_union,
                tag: tag.clone(),
                fields,
            });
        }
        Ok(if is_union {
            CBase::Union(tag)
        } else {
            CBase::Struct(tag)
        })
    }

    fn declarator(&mut self) -> CompileResult<CDeclarator> {
        let mut derivs = Vec::new();
        while self.eat("*") {
            derivs.push(CDeriv::Ptr);
        }
        let name = self.ident()?;
        while self.eat("[") {
            let n = match self.bump() {
                CTok::Int(v) if v >= 0 => v as u64,
                other => {
                    return self.err(format!(
                        "array length must be a constant, found {}",
                        other.describe()
                    ))
                }
            };
            self.expect("]")?;
            derivs.push(CDeriv::Array(n));
        }
        Ok(CDeclarator { name, derivs })
    }

    fn type_name(&mut self) -> CompileResult<CTypeName> {
        let mut dummy = Vec::new();
        let base = self.base_type(&mut dummy)?;
        if !dummy.is_empty() {
            return self.err("cannot define a type here");
        }
        let mut derivs = Vec::new();
        while self.eat("*") {
            derivs.push(CDeriv::Ptr);
        }
        while self.eat("[") {
            let n = match self.bump() {
                CTok::Int(v) if v >= 0 => v as u64,
                other => {
                    return self.err(format!(
                        "array length must be a constant, found {}",
                        other.describe()
                    ))
                }
            };
            self.expect("]")?;
            derivs.push(CDeriv::Array(n));
        }
        Ok(CTypeName { base, derivs })
    }

    fn initializer(&mut self) -> CompileResult<CInit> {
        if self.eat("{") {
            let mut list = Vec::new();
            while !self.peek().is("}") {
                list.push(self.initializer()?);
                if !self.eat(",") {
                    break;
                }
            }
            self.expect("}")?;
            Ok(CInit::List(list))
        } else {
            Ok(CInit::Scalar(self.assign_expr()?))
        }
    }

    // ----- statements -------------------------------------------------------

    fn stmt(&mut self) -> CompileResult<CStmt> {
        let line = self.line();
        if self.eat(";") {
            return Ok(CStmt::Empty);
        }
        if self.eat("{") {
            let mut body = Vec::new();
            while !self.peek().is("}") {
                body.push(self.stmt()?);
            }
            self.expect("}")?;
            return Ok(CStmt::Block(body));
        }
        if self.eat_kw("if") {
            self.expect("(")?;
            let cond = self.expr()?;
            self.expect(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_kw("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(CStmt::If {
                cond,
                then,
                els,
                line,
            });
        }
        if self.eat_kw("while") {
            self.expect("(")?;
            let cond = self.expr()?;
            self.expect(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(CStmt::While { cond, body, line });
        }
        if self.eat_kw("do") {
            let body = Box::new(self.stmt()?);
            if !self.eat_kw("while") {
                return self.err("expected `while` after `do` body");
            }
            self.expect("(")?;
            let cond = self.expr()?;
            self.expect(")")?;
            self.expect(";")?;
            return Ok(CStmt::DoWhile { body, cond, line });
        }
        if self.eat_kw("for") {
            self.expect("(")?;
            let init = if self.peek().is(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(";")?;
            let cond = if self.peek().is(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(";")?;
            let step = if self.peek().is(")") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(CStmt::For {
                init,
                cond,
                step,
                body,
                line,
            });
        }
        if self.eat_kw("switch") {
            self.expect("(")?;
            let scrutinee = self.expr()?;
            self.expect(")")?;
            self.expect("{")?;
            let mut arms: Vec<(Option<CExpr>, Vec<CStmt>)> = Vec::new();
            while !self.peek().is("}") {
                let label = if self.eat_kw("case") {
                    let e = self.assign_expr()?;
                    self.expect(":")?;
                    Some(e)
                } else if self.eat_kw("default") {
                    self.expect(":")?;
                    None
                } else if arms.is_empty() {
                    return self.err("expected `case` or `default` in switch");
                } else {
                    // A statement belonging to the previous arm.
                    let stmt = self.stmt()?;
                    arms.last_mut().expect("non-empty").1.push(stmt);
                    continue;
                };
                arms.push((label, Vec::new()));
            }
            self.expect("}")?;
            return Ok(CStmt::Switch {
                scrutinee,
                arms,
                line,
            });
        }
        if self.eat_kw("return") {
            let expr = if self.peek().is(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(";")?;
            return Ok(CStmt::Return { expr, line });
        }
        if self.eat_kw("break") {
            self.expect(";")?;
            return Ok(CStmt::Break { line });
        }
        if self.eat_kw("continue") {
            self.expect(";")?;
            return Ok(CStmt::Continue { line });
        }
        if self.at_type() {
            let mut defs = Vec::new();
            let base = self.base_type(&mut defs)?;
            if !defs.is_empty() {
                return self.err("type definitions are only allowed at file scope");
            }
            let mut decls = Vec::new();
            loop {
                let d = self.declarator()?;
                let init = if self.eat("=") {
                    Some(self.assign_expr()?)
                } else {
                    None
                };
                decls.push((d, init));
                if !self.eat(",") {
                    break;
                }
            }
            self.expect(";")?;
            return Ok(CStmt::Decl { base, decls, line });
        }
        let expr = self.expr()?;
        self.expect(";")?;
        Ok(CStmt::Expr { expr, line })
    }

    // ----- expressions --------------------------------------------------------

    fn expr(&mut self) -> CompileResult<CExpr> {
        let mut e = self.assign_expr()?;
        while self.eat(",") {
            let r = self.assign_expr()?;
            e = CExpr::Comma(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn assign_expr(&mut self) -> CompileResult<CExpr> {
        self.depth += 1;
        if self.depth > 128 {
            self.depth -= 1;
            return self.err("expression nests more than 128 levels deep");
        }
        let r = self.assign_expr_inner();
        self.depth -= 1;
        r
    }

    fn assign_expr_inner(&mut self) -> CompileResult<CExpr> {
        let lhs = self.cond_expr()?;
        let op = match self.peek() {
            CTok::Punct("=") => None,
            CTok::Punct("+=") => Some(CBinOp::Add),
            CTok::Punct("-=") => Some(CBinOp::Sub),
            CTok::Punct("*=") => Some(CBinOp::Mul),
            CTok::Punct("/=") => Some(CBinOp::Div),
            CTok::Punct("%=") => Some(CBinOp::Rem),
            CTok::Punct("&=") => Some(CBinOp::And),
            CTok::Punct("|=") => Some(CBinOp::Or),
            CTok::Punct("^=") => Some(CBinOp::Xor),
            CTok::Punct("<<=") => Some(CBinOp::Shl),
            CTok::Punct(">>=") => Some(CBinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assign_expr()?;
        Ok(CExpr::Assign(op, Box::new(lhs), Box::new(rhs)))
    }

    fn cond_expr(&mut self) -> CompileResult<CExpr> {
        let c = self.bin_expr(0)?;
        if self.eat("?") {
            let a = self.expr()?;
            self.expect(":")?;
            let b = self.cond_expr()?;
            return Ok(CExpr::Cond(Box::new(c), Box::new(a), Box::new(b)));
        }
        Ok(c)
    }

    /// Binary operators via precedence climbing; `min` is the minimum
    /// precedence level (0 = `||`).
    fn bin_expr(&mut self, min: u8) -> CompileResult<CExpr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                CTok::Punct("||") => (CBinOp::LogOr, 0),
                CTok::Punct("&&") => (CBinOp::LogAnd, 1),
                CTok::Punct("|") => (CBinOp::Or, 2),
                CTok::Punct("^") => (CBinOp::Xor, 3),
                CTok::Punct("&") => (CBinOp::And, 4),
                CTok::Punct("==") => (CBinOp::Eq, 5),
                CTok::Punct("!=") => (CBinOp::Ne, 5),
                CTok::Punct("<") => (CBinOp::Lt, 6),
                CTok::Punct("<=") => (CBinOp::Le, 6),
                CTok::Punct(">") => (CBinOp::Gt, 6),
                CTok::Punct(">=") => (CBinOp::Ge, 6),
                CTok::Punct("<<") => (CBinOp::Shl, 7),
                CTok::Punct(">>") => (CBinOp::Shr, 7),
                CTok::Punct("+") => (CBinOp::Add, 8),
                CTok::Punct("-") => (CBinOp::Sub, 8),
                CTok::Punct("*") => (CBinOp::Mul, 9),
                CTok::Punct("/") => (CBinOp::Div, 9),
                CTok::Punct("%") => (CBinOp::Rem, 9),
                _ => break,
            };
            if prec < min {
                break;
            }
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = CExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> CompileResult<CExpr> {
        if self.eat("-") {
            return Ok(CExpr::Un(CUnOp::Neg, Box::new(self.unary_expr()?)));
        }
        if self.eat("+") {
            return Ok(CExpr::Un(CUnOp::Pos, Box::new(self.unary_expr()?)));
        }
        if self.eat("!") {
            return Ok(CExpr::Un(CUnOp::Not, Box::new(self.unary_expr()?)));
        }
        if self.eat("~") {
            return Ok(CExpr::Un(CUnOp::BitNot, Box::new(self.unary_expr()?)));
        }
        if self.eat("*") {
            return Ok(CExpr::Un(CUnOp::Deref, Box::new(self.unary_expr()?)));
        }
        if self.eat("&") {
            return Ok(CExpr::Un(CUnOp::Addr, Box::new(self.unary_expr()?)));
        }
        if self.eat("++") {
            return Ok(CExpr::PreIncDec {
                inc: true,
                expr: Box::new(self.unary_expr()?),
            });
        }
        if self.eat("--") {
            return Ok(CExpr::PreIncDec {
                inc: false,
                expr: Box::new(self.unary_expr()?),
            });
        }
        if self.peek().is_kw("sizeof") {
            self.bump();
            if self.peek().is("(") && self.type_ahead() {
                self.bump();
                let t = self.type_name()?;
                self.expect(")")?;
                return Ok(CExpr::SizeofT(t));
            }
            return Ok(CExpr::SizeofE(Box::new(self.unary_expr()?)));
        }
        if self.peek().is("(") && self.type_ahead() {
            self.bump();
            let t = self.type_name()?;
            self.expect(")")?;
            return Ok(CExpr::Cast(t, Box::new(self.unary_expr()?)));
        }
        self.postfix_expr()
    }

    /// Is `(` followed by a type name?
    fn type_ahead(&self) -> bool {
        match self.peek2() {
            CTok::Ident(s) => {
                TYPE_KEYWORDS.contains(&s.as_str()) || self.typedefs.iter().any(|t| t == s)
            }
            _ => false,
        }
    }

    fn postfix_expr(&mut self) -> CompileResult<CExpr> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat("[") {
                let idx = self.expr()?;
                self.expect("]")?;
                e = CExpr::Index(Box::new(e), Box::new(idx));
            } else if self.eat(".") {
                let name = self.ident()?;
                e = CExpr::Member {
                    base: Box::new(e),
                    name,
                    arrow: false,
                };
            } else if self.eat("->") {
                let name = self.ident()?;
                e = CExpr::Member {
                    base: Box::new(e),
                    name,
                    arrow: true,
                };
            } else if self.eat("++") {
                e = CExpr::PostIncDec {
                    inc: true,
                    expr: Box::new(e),
                };
            } else if self.eat("--") {
                e = CExpr::PostIncDec {
                    inc: false,
                    expr: Box::new(e),
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> CompileResult<CExpr> {
        match self.bump() {
            CTok::Int(v) => Ok(CExpr::Int(v)),
            CTok::Float(v) => Ok(CExpr::Float(v)),
            CTok::Char(c) => Ok(CExpr::Char(c)),
            CTok::Str(s) => Ok(CExpr::Str(s)),
            CTok::Punct("(") => {
                let e = self.expr()?;
                self.expect(")")?;
                Ok(e)
            }
            CTok::Ident(name) => {
                if KEYWORDS.contains(&name.as_str()) {
                    return self.err(format!("`{name}` cannot appear in an expression"));
                }
                if self.eat("(") {
                    let mut args = Vec::new();
                    if !self.peek().is(")") {
                        loop {
                            args.push(self.assign_expr()?);
                            if !self.eat(",") {
                                break;
                            }
                        }
                    }
                    self.expect(")")?;
                    Ok(CExpr::Call(name, args))
                } else {
                    Ok(CExpr::Ident(name))
                }
            }
            other => self.err(format!(
                "expected an expression, found {}",
                other.describe()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_symbol_table_program() {
        let src = r#"
            struct symbol { char *name; int scope; struct symbol *next; };
            struct symbol *hash[1024];
            int nsyms = 0;
            int main(void) {
                int i;
                for (i = 0; i < 1024; i++)
                    hash[i] = 0;
                return nsyms;
            }
        "#;
        let u = parse(src).unwrap();
        assert_eq!(u.items.len(), 4);
        assert!(matches!(u.items[0], CItem::Record { .. }));
        assert!(matches!(u.items[1], CItem::Globals { .. }));
        assert!(matches!(u.items[3], CItem::Function { .. }));
    }

    #[test]
    fn typedefs_enable_casts() {
        let src = r#"
            typedef struct node { int v; struct node *next; } Node;
            Node *head;
            int main() { head = (Node *)malloc(sizeof(Node)); return 0; }
        "#;
        let u = parse(src).unwrap();
        assert!(matches!(&u.items[1], CItem::Typedef { .. }));
    }

    #[test]
    fn expression_precedence() {
        let u = parse("int main(){ return 2+3*4 << 1; }").unwrap();
        match &u.items[0] {
            CItem::Function { body, .. } => match &body[0] {
                CStmt::Return {
                    expr: Some(CExpr::Bin(CBinOp::Shl, _, _)),
                    ..
                } => {}
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn statements_parse() {
        let src = r#"
            int main() {
                int i, n = 10;
                do { n--; } while (n > 0);
                while (i < 3) i++;
                if (n) return 1; else return 0;
            }
        "#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn globals_with_initializers() {
        let u = parse("int x[3] = {1, 2, 3}; char *s = \"hi\";").unwrap();
        match &u.items[0] {
            CItem::Globals { decls, .. } => {
                assert!(matches!(decls[0].1, Some(CInit::List(_))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bitfields_in_structs() {
        let u = parse("struct f { unsigned a : 3; unsigned b : 5; };").unwrap();
        match &u.items[0] {
            CItem::Record { fields, .. } => {
                assert_eq!(fields[0].bits, Some(3));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_lines() {
        let e = parse("int main() {\n  return $;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
