//! Typed bytecode generation.
//!
//! Code generation doubles as the semantic pass: every expression is
//! typed against the shared [`duel_ctype::TypeTable`] as it is lowered,
//! so layout (field offsets, pointer scaling) is baked into the
//! bytecode while names remain symbolic for the debugger.

use std::collections::HashMap;

use duel_ctype::{convert, Prim, TypeId, TypeKind};
use duel_target::SimTarget;

use crate::{
    ast::{CBase, CBinOp, CDeriv, CExpr, CParam, CStmt, CUnOp},
    ir::{Cmp, Instr, IrFunction},
    CompileError, CompileResult,
};

/// A resolved place: object type plus bitfield placement, if any.
#[derive(Clone, Copy, Debug)]
pub struct PlaceTy {
    /// The object type.
    pub ty: TypeId,
    /// `(unit_size, bit_off, width)` for bitfield members.
    pub bits: Option<(u8, u8, u8)>,
}

struct LocalInfo {
    runtime: String,
    ty: TypeId,
}

/// Per-function code generator.
pub struct Codegen<'a> {
    /// The target whose type table and memory are being populated.
    pub t: &'a mut SimTarget,
    /// Known globals: name → type.
    pub globals: &'a HashMap<String, TypeId>,
    /// Known program functions: name → (ret, params).
    pub funcs: &'a HashMap<String, (TypeId, Vec<TypeId>)>,
    scopes: Vec<HashMap<String, LocalInfo>>,
    locals: Vec<(String, TypeId)>,
    code: Vec<Instr>,
    breaks: Vec<Vec<usize>>,
    continues: Vec<Vec<usize>>,
    shadow_counter: u32,
    line: u32,
}

impl<'a> Codegen<'a> {
    /// Creates a generator for one function.
    pub fn new(
        t: &'a mut SimTarget,
        globals: &'a HashMap<String, TypeId>,
        funcs: &'a HashMap<String, (TypeId, Vec<TypeId>)>,
    ) -> Codegen<'a> {
        Codegen {
            t,
            globals,
            funcs,
            scopes: vec![HashMap::new()],
            locals: Vec::new(),
            code: Vec::new(),
            breaks: Vec::new(),
            continues: Vec::new(),
            shadow_counter: 0,
            line: 0,
        }
    }

    fn err<T>(&self, m: impl Into<String>) -> CompileResult<T> {
        Err(CompileError {
            line: self.line,
            message: m.into(),
        })
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    fn patch(&mut self, at: usize, target: usize) {
        match &mut self.code[at] {
            Instr::Jmp(t) | Instr::Jz(t) | Instr::Jnz(t) => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    // ----- types -------------------------------------------------------

    /// Resolves a base + derivations to a type id.
    pub fn resolve(&mut self, base: &CBase, derivs: &[CDeriv]) -> CompileResult<TypeId> {
        let tt = &mut self.t.core.types;
        let mut ty = match base {
            CBase::Void => tt.void(),
            CBase::Prim(p) => tt.prim(*p),
            CBase::Struct(tag) => tt.declare_struct(tag).1,
            CBase::Union(tag) => tt.declare_union(tag).1,
            CBase::Enum(tag) => {
                if tag.is_empty() {
                    tt.prim(Prim::Int)
                } else if let Some(eid) = tt.enum_tag(tag) {
                    let def = tt.enum_def(eid).clone();
                    tt.define_enum(Some(tag), def.enumerators).1
                } else {
                    return self.err(format!("unknown enum `{tag}`"));
                }
            }
            CBase::Typedef(name) => match tt.typedef(name) {
                Some(t) => t,
                None => return self.err(format!("unknown type `{name}`")),
            },
        };
        // Pointer stars first, then array dimensions innermost-first
        // (`int m[3][4]` is an array of 3 arrays of 4 ints).
        for d in derivs.iter().filter(|d| matches!(d, CDeriv::Ptr)) {
            let _ = d;
            ty = self.t.core.types.pointer(ty);
        }
        for d in derivs.iter().rev() {
            if let CDeriv::Array(n) = d {
                ty = self.t.core.types.array(ty, Some(*n));
            }
        }
        Ok(ty)
    }

    fn kind(&self, ty: TypeId) -> TypeKind {
        self.t.core.types.kind(ty).clone()
    }

    fn size_of(&self, ty: TypeId) -> CompileResult<u64> {
        self.t
            .core
            .types
            .size_of(ty, &self.t.core.abi)
            .map_err(|e| CompileError {
                line: self.line,
                message: e.to_string(),
            })
    }

    fn int_ty(&mut self) -> TypeId {
        self.t.core.types.prim(Prim::Int)
    }

    fn is_float(&self, ty: TypeId) -> bool {
        matches!(self.kind(ty), TypeKind::Prim(p) if p.is_float())
    }

    fn is_ptr_like(&self, ty: TypeId) -> bool {
        matches!(self.kind(ty), TypeKind::Pointer(_) | TypeKind::Array { .. })
    }

    fn pointee_or_elem(&self, ty: TypeId) -> Option<TypeId> {
        match self.kind(ty) {
            TypeKind::Pointer(p) => Some(p),
            TypeKind::Array { elem, .. } => Some(elem),
            _ => None,
        }
    }

    fn prim_of(&self, ty: TypeId) -> Option<Prim> {
        match self.kind(ty) {
            TypeKind::Prim(p) => Some(p),
            TypeKind::Enum(_) => Some(Prim::Int),
            _ => None,
        }
    }

    fn int_size_signed(&self, ty: TypeId) -> (u8, bool) {
        match self.prim_of(ty) {
            Some(p) => (
                p.size(&self.t.core.abi) as u8,
                p.is_signed(&self.t.core.abi),
            ),
            None => (self.t.core.abi.pointer_bytes as u8, false),
        }
    }

    // ----- scopes -------------------------------------------------------

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    /// Declares a local, handling shadowing via unique runtime names.
    pub fn declare_local(&mut self, name: &str, ty: TypeId) -> String {
        let taken = self.locals.iter().any(|(n, _)| n == name);
        let runtime = if taken {
            self.shadow_counter += 1;
            format!("{name}@{}", self.shadow_counter)
        } else {
            name.to_string()
        };
        self.locals.push((runtime.clone(), ty));
        self.scopes.last_mut().expect("scope").insert(
            name.to_string(),
            LocalInfo {
                runtime: runtime.clone(),
                ty,
            },
        );
        runtime
    }

    fn lookup_local(&self, name: &str) -> Option<(&str, TypeId)> {
        for s in self.scopes.iter().rev() {
            if let Some(info) = s.get(name) {
                return Some((&info.runtime, info.ty));
            }
        }
        None
    }

    // ----- lvalues -------------------------------------------------------

    /// Emits code pushing the address of `e`; returns the place type.
    pub fn lvalue(&mut self, e: &CExpr) -> CompileResult<PlaceTy> {
        match e {
            CExpr::Ident(name) => {
                if let Some((rt, ty)) = self.lookup_local(name) {
                    let rt = rt.to_string();
                    self.emit(Instr::AddrLocal(rt));
                    return Ok(PlaceTy { ty, bits: None });
                }
                if let Some(&ty) = self.globals.get(name) {
                    self.emit(Instr::AddrGlobal(name.clone()));
                    return Ok(PlaceTy { ty, bits: None });
                }
                self.err(format!("`{name}` is not a variable"))
            }
            CExpr::Un(CUnOp::Deref, inner) => {
                let ty = self.rvalue(inner)?;
                match self.pointee_or_elem(ty) {
                    Some(p) => Ok(PlaceTy { ty: p, bits: None }),
                    None => self.err("cannot dereference a non-pointer"),
                }
            }
            CExpr::Index(base, idx) => {
                let bty = self.rvalue(base)?;
                let elem = match self.pointee_or_elem(bty) {
                    Some(e) => e,
                    None => return self.err("`[]` needs an array or pointer"),
                };
                let ity = self.rvalue(idx)?;
                if self.is_float(ity) {
                    return self.err("array index must be an integer");
                }
                let esize = self.size_of(elem)?;
                self.emit(Instr::PtrAdd { esize });
                Ok(PlaceTy {
                    ty: elem,
                    bits: None,
                })
            }
            CExpr::Member { base, name, arrow } => {
                let bty = if *arrow {
                    let t = self.rvalue(base)?;
                    match self.pointee_or_elem(t) {
                        Some(p) => p,
                        None => return self.err("`->` needs a pointer to a struct"),
                    }
                } else {
                    self.lvalue(base)?.ty
                };
                let (rid, _) = match self.t.core.types.as_record(bty) {
                    Some(r) => r,
                    None => return self.err(format!("`.{name}` needs a struct or union")),
                };
                let (idx, fty) = {
                    let rec = self.t.core.types.record(rid);
                    match rec.field_index(name) {
                        Some(i) => (i, rec.fields[i].ty),
                        None => return self.err(format!("no field `{name}`")),
                    }
                };
                let fl = self
                    .t
                    .core
                    .types
                    .field_layout(rid, idx, &self.t.core.abi)
                    .map_err(|e| CompileError {
                        line: self.line,
                        message: e.to_string(),
                    })?;
                if fl.offset != 0 {
                    self.emit(Instr::PushI(fl.offset as i64));
                    self.emit(Instr::AddI);
                }
                let bits = match (fl.bit_offset, fl.bit_width) {
                    (Some(o), Some(w)) => Some((fl.size as u8, o, w)),
                    _ => None,
                };
                Ok(PlaceTy { ty: fty, bits })
            }
            other => self.err(format!("not an lvalue: {other:?}")),
        }
    }

    fn emit_load(&mut self, p: PlaceTy) -> CompileResult<TypeId> {
        if let Some((size, off, width)) = p.bits {
            let (_, signed) = self.int_size_signed(p.ty);
            self.emit(Instr::LoadBits {
                size,
                off,
                width,
                signed,
            });
            return Ok(p.ty);
        }
        match self.kind(p.ty) {
            TypeKind::Prim(pr) => {
                let size = pr.size(&self.t.core.abi) as u8;
                if pr.is_float() {
                    self.emit(Instr::Load {
                        size,
                        signed: false,
                        float: true,
                    });
                } else {
                    self.emit(Instr::Load {
                        size,
                        signed: pr.is_signed(&self.t.core.abi),
                        float: false,
                    });
                }
                Ok(p.ty)
            }
            TypeKind::Enum(_) => {
                self.emit(Instr::Load {
                    size: 4,
                    signed: true,
                    float: false,
                });
                Ok(p.ty)
            }
            TypeKind::Pointer(_) => {
                self.emit(Instr::Load {
                    size: self.t.core.abi.pointer_bytes as u8,
                    signed: false,
                    float: false,
                });
                Ok(p.ty)
            }
            // Arrays decay: the address *is* the value.
            TypeKind::Array { .. } => Ok(p.ty),
            _ => self.err("cannot load a value of this type"),
        }
    }

    fn emit_store(&mut self, p: PlaceTy) -> CompileResult<()> {
        if let Some((size, off, width)) = p.bits {
            self.emit(Instr::StoreBits { size, off, width });
            return Ok(());
        }
        match self.kind(p.ty) {
            TypeKind::Prim(pr) => {
                let size = pr.size(&self.t.core.abi) as u8;
                self.emit(Instr::Store {
                    size,
                    float: pr.is_float(),
                });
                Ok(())
            }
            TypeKind::Enum(_) => {
                self.emit(Instr::Store {
                    size: 4,
                    float: false,
                });
                Ok(())
            }
            TypeKind::Pointer(_) => {
                self.emit(Instr::Store {
                    size: self.t.core.abi.pointer_bytes as u8,
                    float: false,
                });
                Ok(())
            }
            _ => self.err("cannot assign a value of this type"),
        }
    }

    /// Emits a conversion from `from` to `to` on the value at top of
    /// stack.
    fn convert_to(&mut self, from: TypeId, to: TypeId) {
        let ffloat = self.is_float(from);
        let tfloat = self.is_float(to);
        match (ffloat, tfloat) {
            (false, true) => {
                self.emit(Instr::I2F);
            }
            (true, false) => {
                self.emit(Instr::F2I);
                let (size, signed) = self.int_size_signed(to);
                self.emit(Instr::Trunc { size, signed });
            }
            (false, false) => {
                if !self.is_ptr_like(to) {
                    let (size, signed) = self.int_size_signed(to);
                    if size < 8 || !signed {
                        self.emit(Instr::Trunc { size, signed });
                    }
                }
            }
            (true, true) => {}
        }
    }

    // ----- rvalues --------------------------------------------------------

    /// Emits code pushing the value of `e`; returns its type.
    pub fn rvalue(&mut self, e: &CExpr) -> CompileResult<TypeId> {
        match e {
            CExpr::Int(v) => {
                self.emit(Instr::PushI(*v));
                Ok(self.int_ty())
            }
            CExpr::Char(c) => {
                self.emit(Instr::PushI(*c as i64));
                Ok(self.int_ty())
            }
            CExpr::Float(v) => {
                self.emit(Instr::PushF(*v));
                Ok(self.t.core.types.prim(Prim::Double))
            }
            CExpr::Str(s) => {
                let addr = self.t.core.intern_cstring(s).map_err(|e| CompileError {
                    line: self.line,
                    message: e.to_string(),
                })?;
                self.emit(Instr::PushI(addr as i64));
                let ch = self.t.core.types.prim(Prim::Char);
                Ok(self.t.core.types.pointer(ch))
            }
            CExpr::Ident(name) => {
                // Enumerators are constants.
                if self.lookup_local(name).is_none() && !self.globals.contains_key(name) {
                    if let Some((_, v)) = self.t.core.types.enumerator(name) {
                        self.emit(Instr::PushI(v));
                        return Ok(self.int_ty());
                    }
                }
                let p = self.lvalue(e)?;
                self.emit_load(p)
            }
            CExpr::Un(op, inner) => self.unary(*op, inner),
            CExpr::Bin(op, a, b) => self.binary(*op, a, b),
            CExpr::Assign(op, l, r) => self.assign(*op, l, r),
            CExpr::Cond(c, a, b) => {
                let cty = self.rvalue(c)?;
                let _ = cty;
                let jz = self.emit(Instr::Jz(0));
                let t1 = self.rvalue(a)?;
                let jend = self.emit(Instr::Jmp(0));
                let here = self.here();
                self.patch(jz, here);
                let t2 = self.rvalue(b)?;
                let end = self.here();
                self.patch(jend, end);
                // Unify loosely: prefer the pointer/float branch type.
                Ok(if self.is_float(t1) || self.is_ptr_like(t1) {
                    t1
                } else {
                    t2
                })
            }
            CExpr::Call(name, args) => self.call(name, args),
            CExpr::Index(..) | CExpr::Member { .. } => {
                let p = self.lvalue(e)?;
                self.emit_load(p)
            }
            CExpr::Cast(tn, inner) => {
                let to = self.resolve(&tn.base, &tn.derivs)?;
                if matches!(self.kind(to), TypeKind::Void) {
                    // Evaluate for effect, push 0.
                    let t = self.rvalue(inner)?;
                    if self.is_float(t) {
                        self.emit(Instr::F2I);
                    }
                    self.emit(Instr::Pop);
                    self.emit(Instr::PushI(0));
                    return Ok(to);
                }
                let from = self.rvalue(inner)?;
                self.convert_to(from, to);
                Ok(to)
            }
            CExpr::SizeofT(tn) => {
                let ty = self.resolve(&tn.base, &tn.derivs)?;
                let n = self.size_of(ty)?;
                self.emit(Instr::PushI(n as i64));
                Ok(self.t.core.types.prim(Prim::ULong))
            }
            CExpr::SizeofE(inner) => {
                // Type only; no code emitted for the operand.
                let save = self.code.len();
                let ty = self.rvalue(inner)?;
                self.code.truncate(save);
                let n = self.size_of(ty)?;
                self.emit(Instr::PushI(n as i64));
                Ok(self.t.core.types.prim(Prim::ULong))
            }
            CExpr::PreIncDec { inc, expr } => self.incdec(*inc, true, expr),
            CExpr::PostIncDec { inc, expr } => self.incdec(*inc, false, expr),
            CExpr::Comma(a, b) => {
                let t = self.rvalue(a)?;
                let _ = t;
                self.emit(Instr::Pop);
                self.rvalue(b)
            }
        }
    }

    fn unary(&mut self, op: CUnOp, inner: &CExpr) -> CompileResult<TypeId> {
        match op {
            CUnOp::Addr => {
                let p = self.lvalue(inner)?;
                if p.bits.is_some() {
                    return self.err("cannot take &bitfield");
                }
                Ok(self.t.core.types.pointer(p.ty))
            }
            CUnOp::Deref => {
                let p = self.lvalue(&CExpr::Un(CUnOp::Deref, Box::new(inner.clone())))?;
                self.emit_load(p)
            }
            CUnOp::Neg => {
                let t = self.rvalue(inner)?;
                if self.is_float(t) {
                    self.emit(Instr::NegF);
                    Ok(t)
                } else {
                    self.emit(Instr::NegI);
                    let promoted = self.promote(t);
                    let (size, signed) = self.int_size_signed(promoted);
                    self.emit(Instr::Trunc { size, signed });
                    Ok(promoted)
                }
            }
            CUnOp::Pos => self.rvalue(inner),
            CUnOp::Not => {
                let t = self.rvalue(inner)?;
                if self.is_float(t) {
                    self.emit(Instr::PushF(0.0));
                    self.emit(Instr::CmpF { op: Cmp::Eq });
                } else {
                    self.emit(Instr::LogNotI);
                }
                Ok(self.int_ty())
            }
            CUnOp::BitNot => {
                let t = self.rvalue(inner)?;
                if self.is_float(t) {
                    return self.err("`~` needs an integer");
                }
                self.emit(Instr::NotI);
                let promoted = self.promote(t);
                let (size, signed) = self.int_size_signed(promoted);
                self.emit(Instr::Trunc { size, signed });
                Ok(promoted)
            }
        }
    }

    fn promote(&mut self, ty: TypeId) -> TypeId {
        match self.prim_of(ty) {
            Some(p) => {
                let pp = convert::integer_promote(p);
                self.t.core.types.prim(pp)
            }
            None => ty,
        }
    }

    fn binary(&mut self, op: CBinOp, a: &CExpr, b: &CExpr) -> CompileResult<TypeId> {
        use CBinOp::*;
        match op {
            LogAnd => {
                let _ = self.rvalue(a)?;
                let jz = self.emit(Instr::Jz(0));
                let _ = self.rvalue(b)?;
                self.emit(Instr::PushI(0));
                self.emit(Instr::CmpI {
                    op: Cmp::Ne,
                    signed: true,
                });
                let jend = self.emit(Instr::Jmp(0));
                let here = self.here();
                self.patch(jz, here);
                self.emit(Instr::PushI(0));
                let end = self.here();
                self.patch(jend, end);
                return Ok(self.int_ty());
            }
            LogOr => {
                let _ = self.rvalue(a)?;
                let jnz = self.emit(Instr::Jnz(0));
                let _ = self.rvalue(b)?;
                self.emit(Instr::PushI(0));
                self.emit(Instr::CmpI {
                    op: Cmp::Ne,
                    signed: true,
                });
                let jend = self.emit(Instr::Jmp(0));
                let here = self.here();
                self.patch(jnz, here);
                self.emit(Instr::PushI(1));
                let end = self.here();
                self.patch(jend, end);
                return Ok(self.int_ty());
            }
            _ => {}
        }
        let ta = self.rvalue(a)?;
        let tb = self.rvalue(b)?;
        // Pointer arithmetic.
        let pa = self.is_ptr_like(ta);
        let pb = self.is_ptr_like(tb);
        if pa || pb {
            return self.pointer_binary(op, ta, tb);
        }
        // Arithmetic conversions.
        let (prim_a, prim_b) = match (self.prim_of(ta), self.prim_of(tb)) {
            (Some(x), Some(y)) => (x, y),
            _ => return self.err("invalid operands"),
        };
        let common = convert::usual_arithmetic(prim_a, prim_b, &self.t.core.abi);
        if common.is_float() {
            if !prim_b.is_float() {
                self.emit(Instr::I2F);
            }
            if !prim_a.is_float() {
                self.emit(Instr::Swap);
                self.emit(Instr::I2F);
                self.emit(Instr::Swap);
            }
            let cmp = |c| Instr::CmpF { op: c };
            let instr = match op {
                Add => Instr::AddF,
                Sub => Instr::SubF,
                Mul => Instr::MulF,
                Div => Instr::DivF,
                Lt => cmp(Cmp::Lt),
                Le => cmp(Cmp::Le),
                Gt => cmp(Cmp::Gt),
                Ge => cmp(Cmp::Ge),
                Eq => cmp(Cmp::Eq),
                Ne => cmp(Cmp::Ne),
                _ => return self.err("invalid float operation"),
            };
            let is_cmp = matches!(instr, Instr::CmpF { .. });
            self.emit(instr);
            return Ok(if is_cmp {
                self.int_ty()
            } else {
                self.t.core.types.prim(common)
            });
        }
        let signed = common.is_signed(&self.t.core.abi);
        let size = common.size(&self.t.core.abi) as u8;
        let cmp = |c| Instr::CmpI { op: c, signed };
        let (instr, is_cmp) = match op {
            Add => (Instr::AddI, false),
            Sub => (Instr::SubI, false),
            Mul => (Instr::MulI, false),
            Div => (Instr::DivI { signed }, false),
            Rem => (Instr::RemI { signed }, false),
            Shl => (Instr::ShlI, false),
            Shr => (Instr::ShrI { signed }, false),
            And => (Instr::AndI, false),
            Or => (Instr::OrI, false),
            Xor => (Instr::XorI, false),
            Lt => (cmp(Cmp::Lt), true),
            Le => (cmp(Cmp::Le), true),
            Gt => (cmp(Cmp::Gt), true),
            Ge => (cmp(Cmp::Ge), true),
            Eq => (cmp(Cmp::Eq), true),
            Ne => (cmp(Cmp::Ne), true),
            LogAnd | LogOr => unreachable!("handled above"),
        };
        self.emit(instr);
        if is_cmp {
            return Ok(self.int_ty());
        }
        self.emit(Instr::Trunc { size, signed });
        Ok(self.t.core.types.prim(common))
    }

    fn pointer_binary(&mut self, op: CBinOp, ta: TypeId, tb: TypeId) -> CompileResult<TypeId> {
        use CBinOp::*;
        let pa = self.is_ptr_like(ta);
        let pb = self.is_ptr_like(tb);
        match op {
            Add if pa && !pb => {
                let elem = self.pointee_or_elem(ta).unwrap();
                let esize = self.size_of(elem)?;
                self.emit(Instr::PtrAdd { esize });
                Ok(self.decayed(ta))
            }
            Add if pb && !pa => {
                self.emit(Instr::Swap);
                let elem = self.pointee_or_elem(tb).unwrap();
                let esize = self.size_of(elem)?;
                self.emit(Instr::PtrAdd { esize });
                Ok(self.decayed(tb))
            }
            Sub if pa && !pb => {
                self.emit(Instr::NegI);
                let elem = self.pointee_or_elem(ta).unwrap();
                let esize = self.size_of(elem)?;
                self.emit(Instr::PtrAdd { esize });
                Ok(self.decayed(ta))
            }
            Sub if pa && pb => {
                let elem = self.pointee_or_elem(ta).unwrap();
                let esize = self.size_of(elem)?.max(1);
                self.emit(Instr::PtrDiff { esize });
                Ok(self.int_ty())
            }
            Lt | Le | Gt | Ge | Eq | Ne => {
                self.emit(Instr::CmpI {
                    op: match op {
                        Lt => Cmp::Lt,
                        Le => Cmp::Le,
                        Gt => Cmp::Gt,
                        Ge => Cmp::Ge,
                        Eq => Cmp::Eq,
                        _ => Cmp::Ne,
                    },
                    signed: false,
                });
                Ok(self.int_ty())
            }
            _ => self.err("invalid pointer operation"),
        }
    }

    fn decayed(&mut self, ty: TypeId) -> TypeId {
        match self.kind(ty) {
            TypeKind::Array { elem, .. } => self.t.core.types.pointer(elem),
            _ => ty,
        }
    }

    fn assign(&mut self, op: Option<CBinOp>, l: &CExpr, r: &CExpr) -> CompileResult<TypeId> {
        let p = self.lvalue(l)?;
        match op {
            None => {
                let rt = self.rvalue(r)?;
                self.convert_assign(rt, p);
                self.emit_store(p)?;
                Ok(p.ty)
            }
            Some(op) => {
                // [addr] → [addr addr] → [addr old] → [addr old rhs]
                self.emit(Instr::Dup);
                let old_ty = self.emit_load(p)?;
                let rt = self.rvalue(r)?;
                // Reuse the scalar binary machinery on the two stacked
                // values: it emits the operation for [old, rhs].
                let res_ty = self.apply_compound(op, old_ty, rt)?;
                self.convert_assign(res_ty, p);
                self.emit_store(p)?;
                Ok(p.ty)
            }
        }
    }

    /// Emits the operation for a compound assignment whose operands are
    /// already stacked (`[… old rhs]`).
    fn apply_compound(&mut self, op: CBinOp, ta: TypeId, tb: TypeId) -> CompileResult<TypeId> {
        if self.is_ptr_like(ta) {
            return self.pointer_binary(op, ta, tb);
        }
        let (prim_a, prim_b) = match (self.prim_of(ta), self.prim_of(tb)) {
            (Some(x), Some(y)) => (x, y),
            _ => return self.err("invalid operands"),
        };
        let common = convert::usual_arithmetic(prim_a, prim_b, &self.t.core.abi);
        if common.is_float() {
            if !prim_b.is_float() {
                self.emit(Instr::I2F);
            }
            if !prim_a.is_float() {
                self.emit(Instr::Swap);
                self.emit(Instr::I2F);
                self.emit(Instr::Swap);
            }
            let instr = match op {
                CBinOp::Add => Instr::AddF,
                CBinOp::Sub => Instr::SubF,
                CBinOp::Mul => Instr::MulF,
                CBinOp::Div => Instr::DivF,
                _ => return self.err("invalid float operation"),
            };
            self.emit(instr);
            return Ok(self.t.core.types.prim(common));
        }
        let signed = common.is_signed(&self.t.core.abi);
        let size = common.size(&self.t.core.abi) as u8;
        let instr = match op {
            CBinOp::Add => Instr::AddI,
            CBinOp::Sub => Instr::SubI,
            CBinOp::Mul => Instr::MulI,
            CBinOp::Div => Instr::DivI { signed },
            CBinOp::Rem => Instr::RemI { signed },
            CBinOp::Shl => Instr::ShlI,
            CBinOp::Shr => Instr::ShrI { signed },
            CBinOp::And => Instr::AndI,
            CBinOp::Or => Instr::OrI,
            CBinOp::Xor => Instr::XorI,
            _ => return self.err("invalid compound assignment"),
        };
        self.emit(instr);
        self.emit(Instr::Trunc { size, signed });
        Ok(self.t.core.types.prim(common))
    }

    fn convert_assign(&mut self, from: TypeId, to: PlaceTy) {
        if to.bits.is_some() {
            if self.is_float(from) {
                self.emit(Instr::F2I);
            }
            return;
        }
        self.convert_to(from, to.ty);
    }

    fn incdec(&mut self, inc: bool, pre: bool, e: &CExpr) -> CompileResult<TypeId> {
        let p = self.lvalue(e)?;
        self.emit(Instr::Dup);
        let ty = self.emit_load(p)?;
        // [addr old]
        if pre {
            self.step_one(inc, p, ty)?;
            // [addr new]
            self.emit_store(p)?;
            Ok(ty)
        } else {
            // [addr old] → [addr old old]
            self.emit(Instr::Dup);
            self.step_one(inc, p, ty)?;
            // [addr old new] → [old new addr] → [old addr new]
            self.emit(Instr::Rot3);
            self.emit(Instr::Swap);
            self.emit_store(p)?;
            // [old new'] — drop the stored copy.
            self.emit(Instr::Pop);
            Ok(ty)
        }
    }

    fn step_one(&mut self, inc: bool, p: PlaceTy, ty: TypeId) -> CompileResult<()> {
        if let Some(elem) = self.pointee_or_elem(ty) {
            let esize = self.size_of(elem)?;
            self.emit(Instr::PushI(if inc { 1 } else { -1 }));
            self.emit(Instr::PtrAdd { esize });
            return Ok(());
        }
        if self.is_float(ty) {
            self.emit(Instr::PushF(1.0));
            self.emit(if inc { Instr::AddF } else { Instr::SubF });
            return Ok(());
        }
        self.emit(Instr::PushI(1));
        self.emit(if inc { Instr::AddI } else { Instr::SubI });
        let (size, signed) = self.int_size_signed(p.ty);
        self.emit(Instr::Trunc { size, signed });
        Ok(())
    }

    fn call(&mut self, name: &str, args: &[CExpr]) -> CompileResult<TypeId> {
        let known = self.funcs.get(name).cloned();
        let mut arg_tys = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            let t = self.rvalue(a)?;
            let t = self.decayed(t);
            if let Some((_, params)) = &known {
                if let Some(&pt) = params.get(i) {
                    self.convert_to(t, pt);
                    arg_tys.push(pt);
                    continue;
                }
            }
            arg_tys.push(t);
        }
        let ret = match &known {
            Some((r, _)) => *r,
            None => self.native_ret(name),
        };
        self.emit(Instr::Call {
            name: name.to_string(),
            args: arg_tys,
            ret,
        });
        Ok(ret)
    }

    /// Return types of the well-known native functions; unknown
    /// functions get C89's implicit `int`.
    fn native_ret(&mut self, name: &str) -> TypeId {
        let tt = &mut self.t.core.types;
        match name {
            "malloc" => {
                let v = tt.void();
                tt.pointer(v)
            }
            _ => tt.prim(Prim::Int),
        }
    }

    // ----- statements --------------------------------------------------------

    /// Lowers a statement.
    pub fn stmt(&mut self, s: &CStmt) -> CompileResult<()> {
        match s {
            CStmt::Empty => Ok(()),
            CStmt::Expr { expr, line } => {
                self.line = *line;
                self.emit(Instr::Line(*line));
                let t = self.rvalue(expr)?;
                let _ = t;
                self.emit(Instr::Pop);
                Ok(())
            }
            CStmt::Decl { base, decls, line } => {
                self.line = *line;
                self.emit(Instr::Line(*line));
                for (d, init) in decls {
                    let ty = self.resolve(base, &d.derivs)?;
                    let rt = self.declare_local(&d.name, ty);
                    if let Some(e) = init {
                        let p = PlaceTy { ty, bits: None };
                        self.emit(Instr::AddrLocal(rt));
                        let rtty = self.rvalue(e)?;
                        self.convert_to(rtty, ty);
                        self.emit_store(p)?;
                        self.emit(Instr::Pop);
                    }
                }
                Ok(())
            }
            CStmt::Block(body) => {
                self.push_scope();
                for s in body {
                    self.stmt(s)?;
                }
                self.pop_scope();
                Ok(())
            }
            CStmt::If {
                cond,
                then,
                els,
                line,
            } => {
                self.line = *line;
                self.emit(Instr::Line(*line));
                self.rvalue(cond)?;
                let jz = self.emit(Instr::Jz(0));
                self.stmt(then)?;
                match els {
                    Some(e) => {
                        let jend = self.emit(Instr::Jmp(0));
                        let here = self.here();
                        self.patch(jz, here);
                        self.stmt(e)?;
                        let end = self.here();
                        self.patch(jend, end);
                    }
                    None => {
                        let here = self.here();
                        self.patch(jz, here);
                    }
                }
                Ok(())
            }
            CStmt::While { cond, body, line } => {
                let top = self.here();
                self.line = *line;
                self.emit(Instr::Line(*line));
                self.rvalue(cond)?;
                let jz = self.emit(Instr::Jz(0));
                self.breaks.push(Vec::new());
                self.continues.push(Vec::new());
                self.stmt(body)?;
                let cont = top;
                self.emit(Instr::Jmp(top));
                let end = self.here();
                self.patch(jz, end);
                self.fix_loop(end, cont);
                Ok(())
            }
            CStmt::DoWhile { body, cond, line } => {
                let top = self.here();
                self.breaks.push(Vec::new());
                self.continues.push(Vec::new());
                self.stmt(body)?;
                let cont = self.here();
                self.line = *line;
                self.emit(Instr::Line(*line));
                self.rvalue(cond)?;
                self.emit(Instr::Jnz(top));
                let end = self.here();
                self.fix_loop(end, cont);
                Ok(())
            }
            CStmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                self.line = *line;
                self.emit(Instr::Line(*line));
                if let Some(e) = init {
                    self.rvalue(e)?;
                    self.emit(Instr::Pop);
                }
                let top = self.here();
                let jz = match cond {
                    Some(e) => {
                        self.emit(Instr::Line(*line));
                        self.rvalue(e)?;
                        Some(self.emit(Instr::Jz(0)))
                    }
                    None => None,
                };
                self.breaks.push(Vec::new());
                self.continues.push(Vec::new());
                self.stmt(body)?;
                let cont = self.here();
                if let Some(e) = step {
                    self.rvalue(e)?;
                    self.emit(Instr::Pop);
                }
                self.emit(Instr::Jmp(top));
                let end = self.here();
                if let Some(jz) = jz {
                    self.patch(jz, end);
                }
                self.fix_loop(end, cont);
                Ok(())
            }
            CStmt::Return { expr, line } => {
                self.line = *line;
                self.emit(Instr::Line(*line));
                match expr {
                    Some(e) => {
                        self.rvalue(e)?;
                        self.emit(Instr::Ret { has_value: true });
                    }
                    None => {
                        self.emit(Instr::Ret { has_value: false });
                    }
                }
                Ok(())
            }
            CStmt::Switch {
                scrutinee,
                arms,
                line,
            } => {
                self.line = *line;
                self.emit(Instr::Line(*line));
                let sty = self.rvalue(scrutinee)?;
                if self.is_float(sty) {
                    return self.err("switch needs an integer");
                }
                // Dispatch: compare the stacked scrutinee against each
                // case label; a hit jumps to a trampoline that pops the
                // scrutinee and enters the arm body (preserving C
                // fallthrough between bodies).
                let mut case_jumps = Vec::new();
                for (i, (label, _)) in arms.iter().enumerate() {
                    let label = match label {
                        Some(e) => e,
                        None => continue,
                    };
                    let v = self.const_label(label)?;
                    self.emit(Instr::Dup);
                    self.emit(Instr::PushI(v));
                    self.emit(Instr::CmpI {
                        op: Cmp::Eq,
                        signed: true,
                    });
                    let j = self.emit(Instr::Jnz(0));
                    case_jumps.push((i, j));
                }
                self.emit(Instr::Pop);
                let miss_jump = self.emit(Instr::Jmp(0));
                // Trampolines.
                let mut tramp_to_body = Vec::new();
                for (i, j) in &case_jumps {
                    let here = self.here();
                    self.patch(*j, here);
                    self.emit(Instr::Pop);
                    let t = self.emit(Instr::Jmp(0));
                    tramp_to_body.push((*i, t));
                }
                // Bodies, in order, with fallthrough.
                self.breaks.push(Vec::new());
                let mut body_pos = vec![0usize; arms.len()];
                for (i, (_, stmts)) in arms.iter().enumerate() {
                    body_pos[i] = self.here();
                    self.push_scope();
                    for st in stmts {
                        self.stmt(st)?;
                    }
                    self.pop_scope();
                }
                let end = self.here();
                for (i, t) in tramp_to_body {
                    self.patch(t, body_pos[i]);
                }
                // The miss path goes to `default`'s body, or past the
                // switch.
                let default_body = arms
                    .iter()
                    .position(|(l, _)| l.is_none())
                    .map(|i| body_pos[i]);
                self.patch(miss_jump, default_body.unwrap_or(end));
                for j in self.breaks.pop().unwrap_or_default() {
                    self.patch(j, end);
                }
                Ok(())
            }
            CStmt::Break { line } => {
                self.line = *line;
                let j = self.emit(Instr::Jmp(0));
                match self.breaks.last_mut() {
                    Some(v) => v.push(j),
                    None => return self.err("`break` outside a loop"),
                }
                Ok(())
            }
            CStmt::Continue { line } => {
                self.line = *line;
                let j = self.emit(Instr::Jmp(0));
                match self.continues.last_mut() {
                    Some(v) => v.push(j),
                    None => return self.err("`continue` outside a loop"),
                }
                Ok(())
            }
        }
    }

    /// Resolves a `case` label to a constant (literals and
    /// enumerators).
    fn const_label(&mut self, e: &CExpr) -> CompileResult<i64> {
        match e {
            CExpr::Int(v) => Ok(*v),
            CExpr::Char(c) => Ok(*c as i64),
            CExpr::Un(CUnOp::Neg, inner) => Ok(-self.const_label(inner)?),
            CExpr::Ident(name) => match self.t.core.types.enumerator(name) {
                Some((_, v)) => Ok(v),
                None => self.err(format!("case label `{name}` is not a constant")),
            },
            other => self.err(format!("unsupported case label: {other:?}")),
        }
    }

    fn fix_loop(&mut self, break_to: usize, continue_to: usize) {
        for j in self.breaks.pop().unwrap_or_default() {
            self.patch(j, break_to);
        }
        for j in self.continues.pop().unwrap_or_default() {
            self.patch(j, continue_to);
        }
    }

    /// Finishes a function body, returning its code and locals.
    pub fn finish(
        mut self,
        params: &[CParam],
        body: &[CStmt],
        ret: TypeId,
        name: &str,
        first_line: u32,
    ) -> CompileResult<IrFunction> {
        // Parameters become the first locals.
        let mut param_list = Vec::new();
        for p in params {
            let ty = self.resolve(&p.base, &p.decl.derivs)?;
            let rt = self.declare_local(&p.decl.name, ty);
            param_list.push((rt, ty));
        }
        let nparams = param_list.len();
        for s in body {
            self.stmt(s)?;
        }
        // Implicit return.
        self.emit(Instr::Ret { has_value: false });
        let locals = self.locals.split_off(nparams);
        Ok(IrFunction {
            name: name.to_string(),
            params: param_list,
            locals,
            ret,
            code: self.code,
            first_line,
        })
    }
}
