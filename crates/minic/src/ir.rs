//! The bytecode instruction set.
//!
//! A stack machine whose variables live in simulated target memory:
//! `AddrLocal`/`AddrGlobal` push addresses, `Load`/`Store` move values
//! between the evaluation stack and the address space. Integer values
//! are kept sign-extended in `i64`; `Trunc` renormalizes after
//! arithmetic on narrow or unsigned types.

use duel_ctype::TypeId;

/// Comparison selector for `CmpI`/`CmpF`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
}

/// One bytecode instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// Push an integer constant.
    PushI(i64),
    /// Push a float constant.
    PushF(f64),
    /// Push the address of a local (by runtime name).
    AddrLocal(String),
    /// Push the address of a global.
    AddrGlobal(String),

    /// Pop an address, push the value loaded from it.
    Load {
        /// Width in bytes (1/2/4/8).
        size: u8,
        /// Sign-extend on load.
        signed: bool,
        /// IEEE float rather than integer.
        float: bool,
    },
    /// Pop value then address, store, push the value back.
    Store {
        /// Width in bytes.
        size: u8,
        /// IEEE float rather than integer.
        float: bool,
    },
    /// Pop a storage-unit address, push the bitfield value.
    LoadBits {
        /// Storage unit size in bytes.
        size: u8,
        /// Bit offset from the unit LSB.
        off: u8,
        /// Width in bits.
        width: u8,
        /// Sign-extend.
        signed: bool,
    },
    /// Pop value then unit address, read-modify-write the bitfield,
    /// push the value back.
    StoreBits {
        /// Storage unit size in bytes.
        size: u8,
        /// Bit offset.
        off: u8,
        /// Width in bits.
        width: u8,
    },

    /// Duplicate the top of stack.
    Dup,
    /// Drop the top of stack.
    Pop,
    /// Swap the top two values.
    Swap,
    /// Rotate the top three values: `[a b c]` → `[b c a]`.
    Rot3,

    /// Integer add.
    AddI,
    /// Integer subtract.
    SubI,
    /// Integer multiply.
    MulI,
    /// Integer divide.
    DivI {
        /// Signed division.
        signed: bool,
    },
    /// Integer remainder.
    RemI {
        /// Signed remainder.
        signed: bool,
    },
    /// Shift left.
    ShlI,
    /// Shift right (arithmetic if `signed`).
    ShrI {
        /// Arithmetic shift.
        signed: bool,
    },
    /// Bitwise and.
    AndI,
    /// Bitwise or.
    OrI,
    /// Bitwise xor.
    XorI,
    /// Integer negate.
    NegI,
    /// Bitwise complement.
    NotI,
    /// Logical not (`!`): any → 0/1.
    LogNotI,
    /// Integer comparison, pushing 0/1.
    CmpI {
        /// Which comparison.
        op: Cmp,
        /// Compare as signed values.
        signed: bool,
    },

    /// Float add.
    AddF,
    /// Float subtract.
    SubF,
    /// Float multiply.
    MulF,
    /// Float divide.
    DivF,
    /// Float negate.
    NegF,
    /// Float comparison, pushing 0/1.
    CmpF {
        /// Which comparison.
        op: Cmp,
    },

    /// Integer → float.
    I2F,
    /// Float → integer (truncating).
    F2I,
    /// Renormalize an integer to `size` bytes with `signed`ness.
    Trunc {
        /// Width in bytes.
        size: u8,
        /// Sign-extend after masking.
        signed: bool,
    },

    /// Pop int `i` and pointer `p`, push `p + i*esize`.
    PtrAdd {
        /// Element size.
        esize: u64,
    },
    /// Pop pointers `b`, `a`, push `(a - b)/esize`.
    PtrDiff {
        /// Element size.
        esize: u64,
    },

    /// Unconditional jump.
    Jmp(usize),
    /// Jump if the popped value is zero.
    Jz(usize),
    /// Jump if the popped value is non-zero.
    Jnz(usize),

    /// Call `name` with `args.len()` stacked arguments (left-to-right).
    /// If `name` is a program function, a frame is pushed; otherwise
    /// the call is marshalled to the target's native functions.
    Call {
        /// Callee name.
        name: String,
        /// Argument types (for native marshalling).
        args: Vec<TypeId>,
        /// Return type.
        ret: TypeId,
    },
    /// Return from the current function.
    Ret {
        /// Whether a return value is on the stack.
        has_value: bool,
    },

    /// A statement boundary at a source line (breakpoint site).
    Line(u32),
    /// No operation.
    Nop,
}

/// A compiled function.
#[derive(Clone, Debug)]
pub struct IrFunction {
    /// The function name.
    pub name: String,
    /// Parameters: runtime name and type, in call order.
    pub params: Vec<(String, TypeId)>,
    /// All locals (flattened from nested blocks; shadowed names are
    /// suffixed with `@N`).
    pub locals: Vec<(String, TypeId)>,
    /// Return type.
    pub ret: TypeId,
    /// The bytecode.
    pub code: Vec<Instr>,
    /// Line of the definition (for the debugger).
    pub first_line: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_equality() {
        assert_eq!(Instr::PushI(1), Instr::PushI(1));
        assert_ne!(
            Instr::Load {
                size: 4,
                signed: true,
                float: false
            },
            Instr::Load {
                size: 4,
                signed: false,
                float: false
            }
        );
    }
}
