//! The mini-C abstract syntax.

use duel_ctype::Prim;

/// The base of a type name.
#[derive(Clone, Debug, PartialEq)]
pub enum CBase {
    /// `void`.
    Void,
    /// A primitive spelled with keywords.
    Prim(Prim),
    /// `struct tag`.
    Struct(String),
    /// `union tag`.
    Union(String),
    /// `enum tag`.
    Enum(String),
    /// A typedef name.
    Typedef(String),
}

/// One declarator derivation step (applied left-to-right to the base).
#[derive(Clone, Debug, PartialEq)]
pub enum CDeriv {
    /// A pointer level.
    Ptr,
    /// An array dimension.
    Array(u64),
}

/// A full type name (casts, `sizeof`).
#[derive(Clone, Debug, PartialEq)]
pub struct CTypeName {
    /// The base type.
    pub base: CBase,
    /// Derivations.
    pub derivs: Vec<CDeriv>,
}

/// A declarator: name plus derivations.
#[derive(Clone, Debug, PartialEq)]
pub struct CDeclarator {
    /// The declared name.
    pub name: String,
    /// Derivations (`*p` ⇒ `[Ptr]`, `a[3][4]` ⇒ `[Array(3), Array(4)]`).
    pub derivs: Vec<CDeriv>,
}

/// A struct/union member.
#[derive(Clone, Debug, PartialEq)]
pub struct CField {
    /// The member's base type.
    pub base: CBase,
    /// The declarator.
    pub decl: CDeclarator,
    /// Bitfield width, if any.
    pub bits: Option<u8>,
}

/// An initializer.
#[derive(Clone, Debug, PartialEq)]
pub enum CInit {
    /// A scalar expression.
    Scalar(CExpr),
    /// A brace-enclosed list.
    List(Vec<CInit>),
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CBinOp {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `&`.
    And,
    /// `^`.
    Xor,
    /// `|`.
    Or,
    /// `&&` (short-circuit).
    LogAnd,
    /// `||` (short-circuit).
    LogOr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CUnOp {
    /// `-`.
    Neg,
    /// `+`.
    Pos,
    /// `!`.
    Not,
    /// `~`.
    BitNot,
    /// `*`.
    Deref,
    /// `&`.
    Addr,
}

/// A mini-C expression.
#[derive(Clone, Debug, PartialEq)]
pub enum CExpr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Char literal.
    Char(u8),
    /// String literal.
    Str(String),
    /// Identifier.
    Ident(String),
    /// Unary operator.
    Un(CUnOp, Box<CExpr>),
    /// Binary operator.
    Bin(CBinOp, Box<CExpr>, Box<CExpr>),
    /// Assignment (`op` is `None` for `=`).
    Assign(Option<CBinOp>, Box<CExpr>, Box<CExpr>),
    /// `c ? a : b`.
    Cond(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    /// `f(args…)`.
    Call(String, Vec<CExpr>),
    /// `a[b]`.
    Index(Box<CExpr>, Box<CExpr>),
    /// `a.name` / `a->name`.
    Member {
        /// The aggregate (or pointer).
        base: Box<CExpr>,
        /// Field name.
        name: String,
        /// `true` for `->`.
        arrow: bool,
    },
    /// `(type)e`.
    Cast(CTypeName, Box<CExpr>),
    /// `sizeof(type)`.
    SizeofT(CTypeName),
    /// `sizeof e`.
    SizeofE(Box<CExpr>),
    /// `++e` / `--e`.
    PreIncDec {
        /// `true` for `++`.
        inc: bool,
        /// Operand.
        expr: Box<CExpr>,
    },
    /// `e++` / `e--`.
    PostIncDec {
        /// `true` for `++`.
        inc: bool,
        /// Operand.
        expr: Box<CExpr>,
    },
    /// `a, b`.
    Comma(Box<CExpr>, Box<CExpr>),
}

/// A statement, carrying its source line for the debugger.
#[derive(Clone, Debug, PartialEq)]
pub enum CStmt {
    /// An expression statement.
    Expr {
        /// The expression.
        expr: CExpr,
        /// Source line.
        line: u32,
    },
    /// A local declaration.
    Decl {
        /// The base type.
        base: CBase,
        /// Declarators with optional scalar initializers.
        decls: Vec<(CDeclarator, Option<CExpr>)>,
        /// Source line.
        line: u32,
    },
    /// `if`.
    If {
        /// Condition.
        cond: CExpr,
        /// Then-branch.
        then: Box<CStmt>,
        /// Else-branch.
        els: Option<Box<CStmt>>,
        /// Source line.
        line: u32,
    },
    /// `while`.
    While {
        /// Condition.
        cond: CExpr,
        /// Body.
        body: Box<CStmt>,
        /// Source line.
        line: u32,
    },
    /// `do … while`.
    DoWhile {
        /// Body.
        body: Box<CStmt>,
        /// Condition.
        cond: CExpr,
        /// Source line.
        line: u32,
    },
    /// `for`.
    For {
        /// Init expression.
        init: Option<CExpr>,
        /// Condition.
        cond: Option<CExpr>,
        /// Step expression.
        step: Option<CExpr>,
        /// Body.
        body: Box<CStmt>,
        /// Source line.
        line: u32,
    },
    /// `return`.
    Return {
        /// Returned value, if any.
        expr: Option<CExpr>,
        /// Source line.
        line: u32,
    },
    /// `break`.
    Break {
        /// Source line.
        line: u32,
    },
    /// `continue`.
    Continue {
        /// Source line.
        line: u32,
    },
    /// `switch`.
    Switch {
        /// The scrutinee.
        scrutinee: CExpr,
        /// `(label, statements)` arms in source order; `None` labels
        /// the `default` arm. Fallthrough is preserved.
        arms: Vec<(Option<CExpr>, Vec<CStmt>)>,
        /// Source line.
        line: u32,
    },
    /// `{ … }`.
    Block(Vec<CStmt>),
    /// `;`.
    Empty,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct CParam {
    /// Base type.
    pub base: CBase,
    /// Declarator.
    pub decl: CDeclarator,
}

/// A top-level item.
#[derive(Clone, Debug, PartialEq)]
pub enum CItem {
    /// A struct/union definition.
    Record {
        /// `true` for unions.
        is_union: bool,
        /// The tag.
        tag: String,
        /// Members.
        fields: Vec<CField>,
    },
    /// An enum definition.
    Enum {
        /// The tag, if any.
        tag: Option<String>,
        /// Enumerators with optional explicit values.
        enumerators: Vec<(String, Option<CExpr>)>,
    },
    /// A typedef.
    Typedef {
        /// Base type.
        base: CBase,
        /// Declarator (its name becomes the typedef name).
        decl: CDeclarator,
    },
    /// File-scope variables.
    Globals {
        /// Base type.
        base: CBase,
        /// Declarators with optional initializers.
        decls: Vec<(CDeclarator, Option<CInit>)>,
    },
    /// A function definition.
    Function {
        /// Return base type.
        ret_base: CBase,
        /// Extra return derivations (`int *f()` ⇒ `[Ptr]`).
        ret_derivs: Vec<CDeriv>,
        /// The function name.
        name: String,
        /// Parameters.
        params: Vec<CParam>,
        /// The body.
        body: Vec<CStmt>,
        /// Line of the definition.
        line: u32,
    },
}

/// A parsed translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CUnit {
    /// Top-level items in source order.
    pub items: Vec<CItem>,
}
