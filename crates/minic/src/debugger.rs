//! The miniature source-level debugger.
//!
//! Wraps the [`Vm`] with breakpoints and line stepping, and implements
//! [`Target`] so that a stopped program can be explored with DUEL — the
//! role gdb plays in the paper.

use std::collections::{HashMap, HashSet};

use duel_ctype::{Abi, EnumId, RecordId, TypeId, TypeTable};
use duel_target::{CallValue, FrameInfo, Target, TargetResult, VarInfo};

use crate::{
    program::compile,
    vm::{Status, Vm, VmError, VmEvent},
    CompileError,
};

/// Why execution stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// A breakpoint at this line was hit.
    Breakpoint {
        /// The source line.
        line: u32,
    },
    /// A single step completed at this line.
    Step {
        /// The source line.
        line: u32,
    },
    /// A watchpoint expression's values changed by this line.
    Watchpoint {
        /// The source line at which the change was observed.
        line: u32,
    },
    /// The program returned from `main`.
    Exited {
        /// `main`'s return value.
        code: i64,
    },
}

/// A source-level debugger for mini-C programs.
pub struct Debugger {
    vm: Vm,
    breakpoints: HashSet<u32>,
    cond_breakpoints: HashMap<u32, String>,
    watchpoints: Vec<Watchpoint>,
    started: bool,
}

struct Watchpoint {
    expr: String,
    last: Option<Vec<String>>,
}

impl Debugger {
    /// Compiles `src` and prepares it for debugging.
    pub fn new(src: &str) -> Result<Debugger, CompileError> {
        let (program, target) = compile(src)?;
        Ok(Debugger {
            vm: Vm::new(program, target),
            breakpoints: HashSet::new(),
            cond_breakpoints: HashMap::new(),
            watchpoints: Vec::new(),
            started: false,
        })
    }

    /// Sets a breakpoint at a source line.
    pub fn add_breakpoint(&mut self, line: u32) {
        self.breakpoints.insert(line);
    }

    /// Sets a *conditional* breakpoint: execution stops at `line` only
    /// when the DUEL expression `cond` produces at least one non-zero
    /// value — the integration the paper's Discussion proposes ("Duel
    /// would also be useful in … watchpoints and conditional
    /// breakpoints"). The condition is evaluated in lazy symbolic mode,
    /// the optimization the paper says such uses require.
    pub fn add_conditional_breakpoint(&mut self, line: u32, cond: &str) {
        self.cond_breakpoints.insert(line, cond.to_string());
    }

    /// Sets a *watchpoint*: execution stops at the next statement
    /// boundary where the DUEL expression's value sequence differs from
    /// its previous evaluation — the paper's other proposed integration
    /// ("watchpoints and conditional breakpoints"). Whole-structure
    /// expressions work: watching `x[..32]` fires on any element change.
    pub fn add_watchpoint(&mut self, expr: &str) {
        self.watchpoints.push(Watchpoint {
            expr: expr.to_string(),
            last: None,
        });
    }

    /// Removes all watchpoints.
    pub fn clear_watchpoints(&mut self) {
        self.watchpoints.clear();
    }

    /// Evaluates every watchpoint; true if any value sequence changed.
    fn watchpoints_fired(&mut self) -> bool {
        if self.watchpoints.is_empty() {
            return false;
        }
        use duel_core::{EvalOptions, Session, SymMode};
        let opts = EvalOptions {
            sym_mode: SymMode::Lazy,
            ..EvalOptions::default()
        };
        let mut fired = false;
        let mut watchpoints = std::mem::take(&mut self.watchpoints);
        for w in watchpoints.iter_mut() {
            let mut s = Session::with_options(&mut self.vm.target, opts.clone());
            let cur: Vec<String> = match s.eval(&w.expr) {
                Ok(lines) => lines
                    .into_iter()
                    .filter_map(|l| match l {
                        duel_core::OutputLine::Value { value, .. } => Some(value),
                        _ => None,
                    })
                    .collect(),
                // Unevaluable (e.g. a variable out of scope): treated
                // as "no values" rather than stopping.
                Err(_) => Vec::new(),
            };
            match &w.last {
                Some(prev) if *prev != cur => fired = true,
                _ => {}
            }
            w.last = Some(cur);
        }
        self.watchpoints = watchpoints;
        fired
    }

    /// Clears a breakpoint.
    pub fn remove_breakpoint(&mut self, line: u32) {
        self.breakpoints.remove(&line);
        self.cond_breakpoints.remove(&line);
    }

    /// Evaluates a conditional-breakpoint expression against the
    /// stopped program: true if any produced value is non-zero.
    fn condition_holds(&mut self, cond: &str) -> bool {
        use duel_core::{EvalOptions, Session, SymMode};
        let opts = EvalOptions {
            sym_mode: SymMode::Lazy,
            ..EvalOptions::default()
        };
        let mut s = Session::with_options(&mut self.vm.target, opts);
        match s.eval(cond) {
            Ok(lines) => lines.iter().any(|l| match l {
                duel_core::OutputLine::Value { value, .. } => value != "0",
                _ => false,
            }),
            // A broken condition stops the program (as gdb does) so the
            // user can see what went wrong.
            Err(_) => true,
        }
    }

    /// Currently set breakpoints, sorted.
    pub fn breakpoints(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.breakpoints.iter().copied().collect();
        v.sort();
        v
    }

    /// Starts (or continues) execution until a breakpoint or exit.
    pub fn run(&mut self) -> Result<StopReason, VmError> {
        if !self.started {
            self.vm.start()?;
            self.started = true;
        }
        self.cont()
    }

    /// Continues execution until a breakpoint or exit.
    pub fn cont(&mut self) -> Result<StopReason, VmError> {
        if let Status::Exited(code) = self.vm.status {
            return Ok(StopReason::Exited { code });
        }
        loop {
            match self.vm.step_instr()? {
                Some(VmEvent::Exited(code)) => return Ok(StopReason::Exited { code }),
                Some(VmEvent::Line(l)) => {
                    if self.breakpoints.contains(&l) {
                        return Ok(StopReason::Breakpoint { line: l });
                    }
                    if let Some(cond) = self.cond_breakpoints.get(&l) {
                        let cond = cond.clone();
                        if self.condition_holds(&cond) {
                            return Ok(StopReason::Breakpoint { line: l });
                        }
                    }
                    if self.watchpoints_fired() {
                        return Ok(StopReason::Watchpoint { line: l });
                    }
                }
                None => {}
            }
        }
    }

    /// Steps to the next statement boundary.
    pub fn step_line(&mut self) -> Result<StopReason, VmError> {
        if !self.started {
            self.vm.start()?;
            self.started = true;
        }
        if let Status::Exited(code) = self.vm.status {
            return Ok(StopReason::Exited { code });
        }
        loop {
            match self.vm.step_instr()? {
                Some(VmEvent::Exited(code)) => return Ok(StopReason::Exited { code }),
                Some(VmEvent::Line(l)) => return Ok(StopReason::Step { line: l }),
                None => {}
            }
        }
    }

    /// The line at which execution is stopped.
    pub fn line(&self) -> u32 {
        self.vm.current_line
    }

    /// The program's exit code, if it has exited.
    pub fn exit_code(&self) -> Option<i64> {
        match self.vm.status {
            Status::Exited(c) => Some(c),
            _ => None,
        }
    }

    /// Access to the underlying VM (for tests and tools).
    pub fn vm_mut(&mut self) -> &mut Vm {
        &mut self.vm
    }
}

// The debugger exposes the paper's narrow interface by delegation: DUEL
// sessions attach to a `Debugger` exactly as they attach to a bare
// `SimTarget` (or to gdb).
impl Target for Debugger {
    fn abi(&self) -> &Abi {
        self.vm.target.abi()
    }

    fn types(&self) -> &TypeTable {
        self.vm.target.types()
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        self.vm.target.types_mut()
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        self.vm.target.get_bytes(addr, buf)
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        self.vm.target.put_bytes(addr, bytes)
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        self.vm.target.alloc_space(size, align)
    }

    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        self.vm.target.call_func(name, args)
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        self.vm.target.get_variable(name)
    }

    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
        self.vm.target.get_variable_in_frame(name, frame)
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        self.vm.target.lookup_typedef(name)
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        self.vm.target.lookup_struct(tag)
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        self.vm.target.lookup_union(tag)
    }

    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
        self.vm.target.lookup_enum(tag)
    }

    fn has_function(&mut self, name: &str) -> bool {
        // Program functions cannot be called from DUEL (they would need
        // re-entrant VM execution); natives can.
        self.vm.target.has_function(name)
    }

    fn frame_count(&mut self) -> usize {
        self.vm.target.frame_count()
    }

    fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
        self.vm.target.frame_info(n)
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        self.vm.target.is_mapped(addr, len)
    }

    fn take_output(&mut self) -> String {
        self.vm.target.take_output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_to_breakpoint_and_inspect() {
        let src = "\
int x[5];\n\
int main() {\n\
    int i;\n\
    for (i = 0; i < 5; i = i + 1)\n\
        x[i] = i * i;\n\
    return x[4];\n\
}\n";
        let mut d = Debugger::new(src).unwrap();
        d.add_breakpoint(6);
        assert_eq!(d.run().unwrap(), StopReason::Breakpoint { line: 6 });
        let x = d.get_variable("x").unwrap();
        let v = duel_target::value_io::read_int(&mut d, x.addr + 16, 4).unwrap();
        assert_eq!(v, 16);
        // Locals are visible in the stopped frame.
        let i = d.get_variable("i").unwrap();
        assert_eq!(
            duel_target::value_io::read_int(&mut d, i.addr, 4).unwrap(),
            5
        );
        assert_eq!(d.cont().unwrap(), StopReason::Exited { code: 16 });
        assert_eq!(d.exit_code(), Some(16));
    }

    #[test]
    fn stepping_walks_lines() {
        let src = "\
int a;\n\
int main() {\n\
    a = 1;\n\
    a = 2;\n\
    a = 3;\n\
    return a;\n\
}\n";
        let mut d = Debugger::new(src).unwrap();
        let mut lines = Vec::new();
        loop {
            match d.step_line().unwrap() {
                StopReason::Step { line } => lines.push(line),
                StopReason::Exited { code } => {
                    assert_eq!(code, 3);
                    break;
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(lines, vec![3, 4, 5, 6]);
    }

    #[test]
    fn breakpoints_fire_each_iteration() {
        let src = "\
int total;\n\
int main() {\n\
    int i;\n\
    for (i = 0; i < 3; i = i + 1)\n\
        total = total + i;\n\
    return total;\n\
}\n";
        let mut d = Debugger::new(src).unwrap();
        d.add_breakpoint(5);
        let mut hits = 0;
        loop {
            match d.run().unwrap() {
                StopReason::Breakpoint { line: 5 } => hits += 1,
                StopReason::Exited { code } => {
                    assert_eq!(code, 3);
                    break;
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(hits, 3);
    }

    #[test]
    fn calls_and_recursion() {
        let src = "\
int fib(int n) {\n\
    if (n < 2) return n;\n\
    return fib(n - 1) + fib(n - 2);\n\
}\n\
int main() { return fib(10); }\n";
        let mut d = Debugger::new(src).unwrap();
        assert_eq!(d.run().unwrap(), StopReason::Exited { code: 55 });
    }

    #[test]
    fn native_calls_work() {
        let src = "\
int main() {\n\
    printf(\"n=%d s=%s\\n\", 41 + 1, \"ok\");\n\
    return 0;\n\
}\n";
        let mut d = Debugger::new(src).unwrap();
        d.run().unwrap();
        assert_eq!(d.take_output(), "n=42 s=ok\n");
    }

    #[test]
    fn heap_allocation_via_malloc() {
        let src = "\
struct node { int value; struct node *next; };\n\
struct node *head;\n\
int main() {\n\
    int i;\n\
    struct node *n;\n\
    for (i = 0; i < 4; i = i + 1) {\n\
        n = (struct node *)malloc(sizeof(struct node));\n\
        n->value = i * 10;\n\
        n->next = head;\n\
        head = n;\n\
    }\n\
    return head->value;\n\
}\n";
        let mut d = Debugger::new(src).unwrap();
        assert_eq!(d.run().unwrap(), StopReason::Exited { code: 30 });
        // Walk the list through the Target interface.
        let head = d.get_variable("head").unwrap();
        let mut p = duel_target::value_io::read_ptr(&mut d, head.addr).unwrap();
        let mut vals = Vec::new();
        while p != 0 {
            vals.push(duel_target::value_io::read_int(&mut d, p, 4).unwrap());
            p = duel_target::value_io::read_ptr(&mut d, p + 8).unwrap();
        }
        assert_eq!(vals, vec![30, 20, 10, 0]);
    }

    #[test]
    fn frames_visible_when_stopped_in_callee() {
        let src = "\
int g;\n\
int helper(int v) {\n\
    g = v * 2;\n\
    return g;\n\
}\n\
int main() {\n\
    int local;\n\
    local = 7;\n\
    return helper(local);\n\
}\n";
        let mut d = Debugger::new(src).unwrap();
        d.add_breakpoint(3);
        assert_eq!(d.run().unwrap(), StopReason::Breakpoint { line: 3 });
        assert_eq!(d.frame_count(), 2);
        assert_eq!(d.frame_info(0).unwrap().function, "helper");
        assert_eq!(d.frame_info(1).unwrap().function, "main");
        let v = d.get_variable("v").unwrap();
        assert_eq!(
            duel_target::value_io::read_int(&mut d, v.addr, 4).unwrap(),
            7
        );
        assert_eq!(d.cont().unwrap(), StopReason::Exited { code: 14 });
    }
}
