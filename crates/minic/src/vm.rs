//! The bytecode virtual machine.
//!
//! Executes over a [`SimTarget`]: every variable occupies simulated
//! target memory, frames are mirrored into the target's frame stack, and
//! unknown callees are marshalled to the target's native functions. The
//! VM is resumable instruction-by-instruction, which is what gives the
//! debugger breakpoints and stepping.

use duel_ctype::TypeKind;
use duel_target::{value_io, CallValue, SimTarget, Target, TargetError};

use crate::{
    ir::{Cmp, Instr},
    program::Program,
};

/// A value on the evaluation stack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VmVal {
    /// Integer (and pointer) values.
    I(i64),
    /// Floating values.
    F(f64),
}

impl VmVal {
    fn as_i(self) -> i64 {
        match self {
            VmVal::I(v) => v,
            VmVal::F(f) => f as i64,
        }
    }

    fn as_f(self) -> f64 {
        match self {
            VmVal::I(v) => v as f64,
            VmVal::F(f) => f,
        }
    }

    fn truthy(self) -> bool {
        match self {
            VmVal::I(v) => v != 0,
            VmVal::F(f) => f != 0.0,
        }
    }
}

/// A runtime error.
#[derive(Clone, Debug, PartialEq)]
pub enum VmError {
    /// Integer division or remainder by zero.
    DivByZero {
        /// The source line.
        line: u32,
    },
    /// A memory or native-call failure from the target.
    Target(TargetError),
    /// The program has no `main`.
    NoMain,
    /// An unknown local or global name (a codegen invariant violation).
    UnknownName(String),
    /// Execution exceeded the step budget (runaway loop protection).
    OutOfFuel,
    /// Internal stack protocol violation.
    StackUnderflow,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::DivByZero { line } => {
                write!(f, "division by zero at line {line}")
            }
            VmError::Target(e) => write!(f, "{e}"),
            VmError::NoMain => write!(f, "program has no `main`"),
            VmError::UnknownName(n) => {
                write!(f, "unknown name `{n}` at runtime")
            }
            VmError::OutOfFuel => {
                write!(f, "execution exceeded the step budget")
            }
            VmError::StackUnderflow => {
                write!(f, "evaluation stack underflow")
            }
        }
    }
}

impl std::error::Error for VmError {}

impl From<TargetError> for VmError {
    fn from(e: TargetError) -> VmError {
        VmError::Target(e)
    }
}

/// Execution status.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Status {
    /// `main` has not been entered yet.
    NotStarted,
    /// Stopped mid-execution (resumable).
    Stopped,
    /// The program returned from `main`.
    Exited(i64),
}

/// An observable event from one instruction step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VmEvent {
    /// Crossed a statement boundary at this source line.
    Line(u32),
    /// The program exited with this code.
    Exited(i64),
}

struct VmFrame {
    func: usize,
    pc: usize,
}

/// The virtual machine.
pub struct Vm {
    /// The simulated debuggee (memory, symbols, natives).
    pub target: SimTarget,
    /// The compiled program.
    pub program: Program,
    frames: Vec<VmFrame>,
    stack: Vec<VmVal>,
    /// Current status.
    pub status: Status,
    /// Most recently crossed source line.
    pub current_line: u32,
    /// Remaining instruction budget.
    pub fuel: u64,
}

impl Vm {
    /// Creates a VM over a compiled program and its target.
    pub fn new(program: Program, target: SimTarget) -> Vm {
        Vm {
            target,
            program,
            frames: Vec::new(),
            stack: Vec::new(),
            status: Status::NotStarted,
            current_line: 0,
            fuel: 200_000_000,
        }
    }

    /// Enters `main`.
    pub fn start(&mut self) -> Result<(), VmError> {
        let main = *self.program.by_name.get("main").ok_or(VmError::NoMain)?;
        self.enter(main, &[])?;
        self.status = Status::Stopped;
        Ok(())
    }

    fn enter(&mut self, func: usize, args: &[VmVal]) -> Result<(), VmError> {
        let f = &self.program.functions[func];
        let params: Vec<_> = f.params.clone();
        let locals: Vec<_> = f.locals.clone();
        self.target.core.push_frame(&f.name.clone());
        for (i, (name, ty)) in params.iter().enumerate() {
            let addr = self.target.core.define_local(name, *ty)?;
            let v = args.get(i).copied().unwrap_or(VmVal::I(0));
            self.write_typed(addr, *ty, v)?;
        }
        for (name, ty) in &locals {
            let addr = self.target.core.define_local(name, *ty)?;
            // Zero-initialize for determinism.
            let size = self
                .target
                .core
                .types
                .size_of(*ty, &self.target.core.abi)
                .unwrap_or(8);
            let zeros = vec![0u8; size as usize];
            self.target.core.mem.write(addr, &zeros)?;
        }
        self.frames.push(VmFrame { func, pc: 0 });
        Ok(())
    }

    fn write_typed(&mut self, addr: u64, ty: duel_ctype::TypeId, v: VmVal) -> Result<(), VmError> {
        match self.target.core.types.kind(ty).clone() {
            TypeKind::Prim(p) if p.is_float() => {
                let size = p.size(&self.target.core.abi) as usize;
                let raw = if size == 4 {
                    (v.as_f() as f32).to_bits() as u64
                } else {
                    v.as_f().to_bits()
                };
                self.target.core.write_uint(addr, raw, size)?;
            }
            TypeKind::Prim(p) => {
                let size = p.size(&self.target.core.abi) as usize;
                self.target.core.write_uint(addr, v.as_i() as u64, size)?;
            }
            TypeKind::Enum(_) => {
                self.target.core.write_uint(addr, v.as_i() as u64, 4)?;
            }
            _ => {
                let size = self.target.core.abi.pointer_bytes as usize;
                self.target.core.write_uint(addr, v.as_i() as u64, size)?;
            }
        }
        Ok(())
    }

    fn pop(&mut self) -> Result<VmVal, VmError> {
        self.stack.pop().ok_or(VmError::StackUnderflow)
    }

    fn push(&mut self, v: VmVal) {
        self.stack.push(v);
    }

    /// Executes one instruction; returns an event if one occurred.
    pub fn step_instr(&mut self) -> Result<Option<VmEvent>, VmError> {
        if let Status::Exited(code) = self.status {
            return Ok(Some(VmEvent::Exited(code)));
        }
        if self.fuel == 0 {
            return Err(VmError::OutOfFuel);
        }
        self.fuel -= 1;
        let frame = self.frames.last().ok_or(VmError::StackUnderflow)?;
        let fidx = frame.func;
        let pc = frame.pc;
        let instr = self.program.functions[fidx].code[pc].clone();
        self.frames.last_mut().unwrap().pc += 1;
        match instr {
            Instr::PushI(v) => self.push(VmVal::I(v)),
            Instr::PushF(v) => self.push(VmVal::F(v)),
            Instr::AddrLocal(name) => {
                let info = self
                    .target
                    .get_variable_in_frame(&name, 0)
                    .ok_or_else(|| VmError::UnknownName(name.clone()))?;
                self.push(VmVal::I(info.addr as i64));
            }
            Instr::AddrGlobal(name) => {
                let (addr, _) = self
                    .target
                    .core
                    .global_addr(&name)
                    .ok_or_else(|| VmError::UnknownName(name.clone()))?;
                self.push(VmVal::I(addr as i64));
            }
            Instr::Load {
                size,
                signed,
                float,
            } => {
                let addr = self.pop()?.as_i() as u64;
                if float {
                    let f = value_io::read_float(&mut self.target, addr, size as usize)?;
                    self.push(VmVal::F(f));
                } else {
                    let raw = value_io::read_uint(&mut self.target, addr, size as usize)?;
                    let v = if signed {
                        value_io::sign_extend(raw, size as usize)
                    } else {
                        raw as i64
                    };
                    self.push(VmVal::I(v));
                }
            }
            Instr::Store { size, float } => {
                let v = self.pop()?;
                let addr = self.pop()?.as_i() as u64;
                if float {
                    value_io::write_float(&mut self.target, addr, v.as_f(), size as usize)?;
                } else {
                    value_io::write_uint(&mut self.target, addr, v.as_i() as u64, size as usize)?;
                }
                self.push(v);
            }
            Instr::LoadBits {
                size,
                off,
                width,
                signed,
            } => {
                let addr = self.pop()?.as_i() as u64;
                let v = value_io::read_bitfield(
                    &mut self.target,
                    addr,
                    size as usize,
                    off,
                    width,
                    signed,
                )?;
                self.push(VmVal::I(v));
            }
            Instr::StoreBits { size, off, width } => {
                let v = self.pop()?;
                let addr = self.pop()?.as_i() as u64;
                value_io::write_bitfield(
                    &mut self.target,
                    addr,
                    size as usize,
                    off,
                    width,
                    v.as_i(),
                )?;
                self.push(v);
            }
            Instr::Dup => {
                let v = *self.stack.last().ok_or(VmError::StackUnderflow)?;
                self.push(v);
            }
            Instr::Pop => {
                self.pop()?;
            }
            Instr::Swap => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.push(b);
                self.push(a);
            }
            Instr::Rot3 => {
                let c = self.pop()?;
                let b = self.pop()?;
                let a = self.pop()?;
                self.push(b);
                self.push(c);
                self.push(a);
            }
            Instr::AddI => self.int_bin(|a, b| Ok(a.wrapping_add(b)))?,
            Instr::SubI => self.int_bin(|a, b| Ok(a.wrapping_sub(b)))?,
            Instr::MulI => self.int_bin(|a, b| Ok(a.wrapping_mul(b)))?,
            Instr::DivI { signed } => {
                let line = self.current_line;
                self.int_bin(move |a, b| {
                    if b == 0 {
                        return Err(VmError::DivByZero { line });
                    }
                    Ok(if signed {
                        a.wrapping_div(b)
                    } else {
                        ((a as u64) / (b as u64)) as i64
                    })
                })?
            }
            Instr::RemI { signed } => {
                let line = self.current_line;
                self.int_bin(move |a, b| {
                    if b == 0 {
                        return Err(VmError::DivByZero { line });
                    }
                    Ok(if signed {
                        a.wrapping_rem(b)
                    } else {
                        ((a as u64) % (b as u64)) as i64
                    })
                })?
            }
            Instr::ShlI => self.int_bin(|a, b| Ok(a.wrapping_shl(b as u32 & 63)))?,
            Instr::ShrI { signed } => self.int_bin(move |a, b| {
                Ok(if signed {
                    a >> (b as u32 & 63)
                } else {
                    ((a as u64) >> (b as u32 & 63)) as i64
                })
            })?,
            Instr::AndI => self.int_bin(|a, b| Ok(a & b))?,
            Instr::OrI => self.int_bin(|a, b| Ok(a | b))?,
            Instr::XorI => self.int_bin(|a, b| Ok(a ^ b))?,
            Instr::NegI => {
                let v = self.pop()?.as_i();
                self.push(VmVal::I(v.wrapping_neg()));
            }
            Instr::NotI => {
                let v = self.pop()?.as_i();
                self.push(VmVal::I(!v));
            }
            Instr::LogNotI => {
                let v = self.pop()?;
                self.push(VmVal::I(!v.truthy() as i64));
            }
            Instr::CmpI { op, signed } => {
                let b = self.pop()?.as_i();
                let a = self.pop()?.as_i();
                let r = if signed {
                    cmp_ord(op, a.cmp(&b))
                } else {
                    cmp_ord(op, (a as u64).cmp(&(b as u64)))
                };
                self.push(VmVal::I(r as i64));
            }
            Instr::AddF => self.float_bin(|a, b| a + b)?,
            Instr::SubF => self.float_bin(|a, b| a - b)?,
            Instr::MulF => self.float_bin(|a, b| a * b)?,
            Instr::DivF => self.float_bin(|a, b| a / b)?,
            Instr::NegF => {
                let v = self.pop()?.as_f();
                self.push(VmVal::F(-v));
            }
            Instr::CmpF { op } => {
                let b = self.pop()?.as_f();
                let a = self.pop()?.as_f();
                let r = match op {
                    Cmp::Lt => a < b,
                    Cmp::Le => a <= b,
                    Cmp::Gt => a > b,
                    Cmp::Ge => a >= b,
                    Cmp::Eq => a == b,
                    Cmp::Ne => a != b,
                };
                self.push(VmVal::I(r as i64));
            }
            Instr::I2F => {
                let v = self.pop()?.as_i();
                self.push(VmVal::F(v as f64));
            }
            Instr::F2I => {
                let v = self.pop()?.as_f();
                self.push(VmVal::I(v as i64));
            }
            Instr::Trunc { size, signed } => {
                let v = self.pop()?.as_i();
                let bits = size as u32 * 8;
                let r = if bits >= 64 {
                    v
                } else {
                    let m = v & ((1i64 << bits) - 1);
                    if signed && (m >> (bits - 1)) & 1 == 1 {
                        m - (1i64 << bits)
                    } else {
                        m
                    }
                };
                self.push(VmVal::I(r));
            }
            Instr::PtrAdd { esize } => {
                let i = self.pop()?.as_i();
                let p = self.pop()?.as_i();
                self.push(VmVal::I(p.wrapping_add(i.wrapping_mul(esize as i64))));
            }
            Instr::PtrDiff { esize } => {
                let b = self.pop()?.as_i();
                let a = self.pop()?.as_i();
                self.push(VmVal::I(a.wrapping_sub(b) / esize.max(1) as i64));
            }
            Instr::Jmp(t) => {
                self.frames.last_mut().unwrap().pc = t;
            }
            Instr::Jz(t) => {
                if !self.pop()?.truthy() {
                    self.frames.last_mut().unwrap().pc = t;
                }
            }
            Instr::Jnz(t) => {
                if self.pop()?.truthy() {
                    self.frames.last_mut().unwrap().pc = t;
                }
            }
            Instr::Call { name, args, ret } => {
                let mut argv = Vec::with_capacity(args.len());
                for _ in 0..args.len() {
                    argv.push(self.pop()?);
                }
                argv.reverse();
                if let Some(&idx) = self.program.by_name.get(&name) {
                    self.enter(idx, &argv)?;
                } else {
                    // Native call.
                    let mut cvs = Vec::with_capacity(args.len());
                    for (v, ty) in argv.iter().zip(args.iter()) {
                        cvs.push(self.marshal(*v, *ty)?);
                    }
                    let r = self.target.call_func(&name, &cvs)?;
                    let rv = self.unmarshal(&r, ret)?;
                    self.push(rv);
                }
            }
            Instr::Ret { has_value } => {
                let v = if has_value { self.pop()? } else { VmVal::I(0) };
                self.target.core.pop_frame();
                self.frames.pop();
                if self.frames.is_empty() {
                    self.status = Status::Exited(v.as_i());
                    return Ok(Some(VmEvent::Exited(v.as_i())));
                }
                self.push(v);
            }
            Instr::Line(l) => {
                self.current_line = l;
                self.target.core.set_line(l);
                return Ok(Some(VmEvent::Line(l)));
            }
            Instr::Nop => {}
        }
        Ok(None)
    }

    fn int_bin(&mut self, f: impl FnOnce(i64, i64) -> Result<i64, VmError>) -> Result<(), VmError> {
        let b = self.pop()?.as_i();
        let a = self.pop()?.as_i();
        let r = f(a, b)?;
        self.push(VmVal::I(r));
        Ok(())
    }

    fn float_bin(&mut self, f: impl FnOnce(f64, f64) -> f64) -> Result<(), VmError> {
        let b = self.pop()?.as_f();
        let a = self.pop()?.as_f();
        self.push(VmVal::F(f(a, b)));
        Ok(())
    }

    fn marshal(&self, v: VmVal, ty: duel_ctype::TypeId) -> Result<CallValue, VmError> {
        let abi = &self.target.core.abi;
        let kind = self.target.core.types.kind(ty).clone();
        Ok(match kind {
            TypeKind::Prim(p) if p.is_float() => {
                let size = p.size(abi) as usize;
                let raw = if size == 4 {
                    (v.as_f() as f32).to_bits() as u64
                } else {
                    v.as_f().to_bits()
                };
                CallValue::from_u64(ty, raw, size, abi)?
            }
            TypeKind::Prim(p) => {
                let size = p.size(abi) as usize;
                CallValue::from_u64(ty, v.as_i() as u64, size, abi)?
            }
            TypeKind::Enum(_) => CallValue::from_u64(ty, v.as_i() as u64, 4, abi)?,
            _ => CallValue::from_u64(ty, v.as_i() as u64, abi.pointer_bytes as usize, abi)?,
        })
    }

    fn unmarshal(&self, cv: &CallValue, ty: duel_ctype::TypeId) -> Result<VmVal, VmError> {
        let abi = &self.target.core.abi;
        let raw = cv.to_u64(abi);
        Ok(match self.target.core.types.kind(ty) {
            TypeKind::Prim(p) if p.is_float() => {
                if p.size(abi) == 4 {
                    VmVal::F(f32::from_bits(raw as u32) as f64)
                } else {
                    VmVal::F(f64::from_bits(raw))
                }
            }
            TypeKind::Prim(p) => {
                let size = p.size(abi) as usize;
                VmVal::I(if p.is_signed(abi) {
                    value_io::sign_extend(raw, size)
                } else {
                    raw as i64
                })
            }
            _ => VmVal::I(raw as i64),
        })
    }

    /// The current call depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

fn cmp_ord(op: Cmp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        Cmp::Lt => ord == Less,
        Cmp::Le => ord != Greater,
        Cmp::Gt => ord == Greater,
        Cmp::Ge => ord != Less,
        Cmp::Eq => ord == Equal,
        Cmp::Ne => ord != Equal,
    }
}
