#![warn(missing_docs)]

//! A mini-C compiler, bytecode VM, and source-level debugger.
//!
//! The DUEL paper runs on top of gdb attached to real C programs. This
//! crate is that substrate's stand-in: it compiles a useful subset of
//! C89, executes it on a stack-machine VM whose variables live in the
//! *simulated target address space* ([`duel_target::SimTarget`]), emits
//! debug information (symbols, types, a line table), and exposes a
//! miniature source-level debugger with breakpoints and line stepping.
//!
//! Because globals and locals occupy real simulated memory and the type
//! table is shared, a [`Debugger`] *is* a [`duel_target::Target`]: DUEL
//! queries run against a stopped mini-C program exactly as they would
//! against gdb (experiment E9's backend-swap).
//!
//! # Examples
//!
//! ```
//! use duel_minic::Debugger;
//!
//! let src = r#"
//!     int x[5];
//!     int main() {
//!         int i;
//!         for (i = 0; i < 5; i = i + 1)
//!             x[i] = i * i;
//!         return x[4];          // line 7
//!     }
//! "#;
//! let mut dbg = Debugger::new(src).unwrap();
//! dbg.add_breakpoint(7);
//! let stop = dbg.run().unwrap();
//! assert_eq!(stop, duel_minic::StopReason::Breakpoint { line: 7 });
//! // The program state is now visible through the Target interface.
//! use duel_target::Target;
//! assert!(dbg.get_variable("x").is_some());
//! ```

pub mod ast;
pub mod codegen;
pub mod debugger;
pub mod ir;
pub mod lex;
pub mod parse;
pub mod program;
pub mod vm;

pub use debugger::{Debugger, StopReason};
pub use program::{compile, Program};
pub use vm::{Vm, VmError};

/// Errors from compiling mini-C source.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Result alias for compilation.
pub type CompileResult<T> = Result<T, CompileError>;
