//! The mini-C lexer.
//!
//! Tracks 1-based line numbers for the debugger's line table. Supports
//! `//` and `/* */` comments, decimal/hex/octal/char/float/string
//! literals, and every C89 operator the parser understands.

use crate::{CompileError, CompileResult};

/// A mini-C token.
#[derive(Clone, Debug, PartialEq)]
pub enum CTok {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Character literal.
    Char(u8),
    /// String literal.
    Str(String),
    /// Identifier or keyword.
    Ident(String),
    /// A punctuator, by spelling (e.g. `"+="`, `"->"`).
    Punct(&'static str),
    /// End of file.
    Eof,
}

impl CTok {
    /// `true` if this token is the punctuator `p`.
    pub fn is(&self, p: &str) -> bool {
        matches!(self, CTok::Punct(s) if *s == p)
    }

    /// `true` if this token is the keyword/identifier `k`.
    pub fn is_kw(&self, k: &str) -> bool {
        matches!(self, CTok::Ident(s) if s == k)
    }

    /// Display for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            CTok::Int(v) => format!("`{v}`"),
            CTok::Float(v) => format!("`{v}`"),
            CTok::Char(c) => format!("`'{}'`", *c as char),
            CTok::Str(s) => format!("string {s:?}"),
            CTok::Ident(s) => format!("`{s}`"),
            CTok::Punct(p) => format!("`{p}`"),
            CTok::Eof => "end of file".to_string(),
        }
    }
}

/// A token plus the line it starts on.
#[derive(Clone, Debug, PartialEq)]
pub struct Lexed {
    /// The token.
    pub tok: CTok,
    /// 1-based source line.
    pub line: u32,
}

/// All multi-character punctuators, longest first.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "(", ")", "[", "]", "{", "}", ";", ",", ".", "+",
    "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=", "?", ":",
];

/// Lexes mini-C source into tokens.
pub fn lex(src: &str) -> CompileResult<Vec<Lexed>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let err = |line: u32, m: String| CompileError { line, message: m };
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            i += 2;
            while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                if b[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 2).min(b.len());
            continue;
        }
        let start_line = line;
        // Identifiers / keywords.
        if c == b'_' || c.is_ascii_alphabetic() {
            let s = i;
            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            out.push(Lexed {
                tok: CTok::Ident(std::str::from_utf8(&b[s..i]).unwrap().to_string()),
                line: start_line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit()) {
            let s = i;
            let mut is_float = false;
            if c == b'0' && i + 1 < b.len() && (b[i + 1] == b'x' || b[i + 1] == b'X') {
                i += 2;
                while i < b.len() && b[i].is_ascii_hexdigit() {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[s + 2..i]).unwrap();
                let v = u64::from_str_radix(text, 16)
                    .map_err(|_| err(start_line, "bad hex literal".to_string()))?;
                while i < b.len() && matches!(b[i], b'u' | b'U' | b'l' | b'L') {
                    i += 1;
                }
                out.push(Lexed {
                    tok: CTok::Int(v as i64),
                    line: start_line,
                });
                continue;
            }
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            if i < b.len() && b[i] == b'.' {
                is_float = true;
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let save = i;
                i += 1;
                if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                    i += 1;
                }
                if i < b.len() && b[i].is_ascii_digit() {
                    is_float = true;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                } else {
                    i = save;
                }
            }
            let text = std::str::from_utf8(&b[s..i]).unwrap();
            if is_float {
                let v = text
                    .parse::<f64>()
                    .map_err(|_| err(start_line, format!("bad float `{text}`")))?;
                while i < b.len() && matches!(b[i], b'f' | b'F' | b'l' | b'L') {
                    i += 1;
                }
                out.push(Lexed {
                    tok: CTok::Float(v),
                    line: start_line,
                });
            } else {
                let v = if text.len() > 1 && text.starts_with('0') {
                    i64::from_str_radix(&text[1..], 8)
                        .map_err(|_| err(start_line, format!("bad octal `{text}`")))?
                } else {
                    text.parse::<i64>()
                        .map_err(|_| err(start_line, format!("bad integer `{text}`")))?
                };
                while i < b.len() && matches!(b[i], b'u' | b'U' | b'l' | b'L') {
                    i += 1;
                }
                out.push(Lexed {
                    tok: CTok::Int(v),
                    line: start_line,
                });
            }
            continue;
        }
        // Char literals.
        if c == b'\'' {
            i += 1;
            let v = if i < b.len() && b[i] == b'\\' {
                i += 1;
                let (v, used) = unescape(&b[i..], start_line)?;
                i += used;
                v
            } else if i < b.len() {
                let v = b[i];
                i += 1;
                v
            } else {
                return Err(err(start_line, "unterminated char".into()));
            };
            if i >= b.len() || b[i] != b'\'' {
                return Err(err(start_line, "unterminated char".into()));
            }
            i += 1;
            out.push(Lexed {
                tok: CTok::Char(v),
                line: start_line,
            });
            continue;
        }
        // String literals.
        if c == b'"' {
            i += 1;
            let mut s = Vec::new();
            loop {
                if i >= b.len() {
                    return Err(err(start_line, "unterminated string".into()));
                }
                match b[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        i += 1;
                        let (v, used) = unescape(&b[i..], start_line)?;
                        i += used;
                        s.push(v);
                    }
                    b'\n' => return Err(err(start_line, "newline in string".into())),
                    other => {
                        s.push(other);
                        i += 1;
                    }
                }
            }
            out.push(Lexed {
                tok: CTok::Str(String::from_utf8_lossy(&s).into_owned()),
                line: start_line,
            });
            continue;
        }
        // Punctuators, longest first.
        let rest = &src[i..];
        let mut matched = None;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        match matched {
            Some(p) => {
                i += p.len();
                out.push(Lexed {
                    tok: CTok::Punct(p),
                    line: start_line,
                });
            }
            None => {
                return Err(err(
                    start_line,
                    format!("unexpected character `{}`", c as char),
                ))
            }
        }
    }
    out.push(Lexed {
        tok: CTok::Eof,
        line,
    });
    Ok(out)
}

fn unescape(rest: &[u8], line: u32) -> CompileResult<(u8, usize)> {
    let err = |m: &str| CompileError {
        line,
        message: m.to_string(),
    };
    let c = *rest.first().ok_or_else(|| err("dangling escape"))?;
    Ok(match c {
        b'n' => (b'\n', 1),
        b't' => (b'\t', 1),
        b'r' => (b'\r', 1),
        b'0' => (0, 1),
        b'a' => (7, 1),
        b'b' => (8, 1),
        b'f' => (12, 1),
        b'v' => (11, 1),
        b'\\' => (b'\\', 1),
        b'\'' => (b'\'', 1),
        b'"' => (b'"', 1),
        b'x' => {
            let mut v: u32 = 0;
            let mut n = 1;
            while n < rest.len() && n <= 2 && rest[n].is_ascii_hexdigit() {
                v = v * 16 + (rest[n] as char).to_digit(16).unwrap();
                n += 1;
            }
            if n == 1 {
                return Err(err("\\x needs hex digits"));
            }
            (v as u8, n)
        }
        other => return Err(err(&format!("unknown escape \\{}", other as char))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<CTok> {
        lex(src).unwrap().into_iter().map(|l| l.tok).collect()
    }

    #[test]
    fn basics() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                CTok::Ident("int".into()),
                CTok::Ident("x".into()),
                CTok::Punct("="),
                CTok::Int(42),
                CTok::Punct(";"),
                CTok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("0x10")[0], CTok::Int(16));
        assert_eq!(toks("010")[0], CTok::Int(8));
        assert_eq!(toks("1.5")[0], CTok::Float(1.5));
        assert_eq!(toks("2e2")[0], CTok::Float(200.0));
        assert_eq!(toks("10L")[0], CTok::Int(10));
    }

    #[test]
    fn punctuator_max_munch() {
        assert_eq!(
            toks("a->b <<= c"),
            vec![
                CTok::Ident("a".into()),
                CTok::Punct("->"),
                CTok::Ident("b".into()),
                CTok::Punct("<<="),
                CTok::Ident("c".into()),
                CTok::Eof
            ]
        );
        assert_eq!(toks("a-- -b")[1], CTok::Punct("--"));
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(toks(r#""a\nb""#)[0], CTok::Str("a\nb".into()));
        assert_eq!(toks(r"'\0'")[0], CTok::Char(0));
        assert_eq!(toks(r"'\x41'")[0], CTok::Char(65));
    }

    #[test]
    fn comments_and_lines() {
        let ls = lex("int a; // c\n/* multi\nline */ int b;").unwrap();
        let b_line = ls.iter().find(|l| l.tok.is_kw("b")).map(|l| l.line);
        assert_eq!(b_line, Some(3));
    }

    #[test]
    fn errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("'a").is_err());
        assert!(lex("@").is_err());
    }
}
