#![warn(missing_docs)]

//! Shared workload helpers for the experiment benches (E1–E7) and the
//! E5 line-count report.
//!
//! The experiment ↔ paper-claim mapping lives in `DESIGN.md` §5; the
//! measured results are recorded in `EXPERIMENTS.md`.

use duel_core::{EvalOptions, Session};
use duel_target::Target;

/// Evaluates `expr` against `target`, returning how many values it
/// produced (panicking on error — benches must be well-formed).
pub fn eval_count(target: &mut dyn Target, expr: &str, options: &EvalOptions) -> usize {
    let mut s = Session::with_options(target, options.clone());
    let out = s
        .eval(expr)
        .unwrap_or_else(|e| panic!("bench expr `{expr}` failed: {e}"));
    out.len()
}

/// Evaluates and returns the rendered lines (for correctness checks
/// inside bench setup).
pub fn eval_lines(target: &mut dyn Target, expr: &str, options: &EvalOptions) -> Vec<String> {
    let mut s = Session::with_options(target, options.clone());
    s.eval_lines(expr)
        .unwrap_or_else(|e| panic!("bench expr `{expr}` failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use duel_target::scenario;

    #[test]
    fn helpers_work() {
        let mut t = scenario::scan_array();
        let opts = EvalOptions::default();
        assert_eq!(eval_count(&mut t, "x[1..4,8,12..50] >? 5 <? 10", &opts), 3);
        assert_eq!(eval_lines(&mut t, "1+1", &opts), vec!["2"]);
    }
}
