#![warn(missing_docs)]

//! Shared workload helpers for the experiment benches (E1–E7, E9–E10)
//! and the E5 line-count report.
//!
//! The experiment ↔ paper-claim mapping lives in `DESIGN.md` §5; the
//! measured results are recorded in `EXPERIMENTS.md`.

use duel_core::{DuelError, EvalOptions, EvalStats, Session};
use duel_target::Target;

/// Evaluates `expr` against `target`, returning how many values it
/// produced. One bad expression fails that measurement, not the whole
/// bench run.
pub fn try_eval_count(
    target: &mut dyn Target,
    expr: &str,
    options: &EvalOptions,
) -> Result<usize, DuelError> {
    let mut s = Session::with_options(target, options.clone());
    Ok(s.eval(expr)?.len())
}

/// Evaluates `expr` and returns the rendered output lines (for
/// correctness checks inside bench setup and differential runs).
pub fn try_eval_lines(
    target: &mut dyn Target,
    expr: &str,
    options: &EvalOptions,
) -> Result<Vec<String>, DuelError> {
    let mut s = Session::with_options(target, options.clone());
    s.eval_lines(expr)
}

/// Like [`try_eval_lines`], but also returns the evaluation counters
/// (the E14 prefetch bench reads planner activity out of them).
pub fn try_eval_lines_with_stats(
    target: &mut dyn Target,
    expr: &str,
    options: &EvalOptions,
) -> Result<(Vec<String>, EvalStats), DuelError> {
    let mut s = Session::with_options(target, options.clone());
    let lines = s.eval_lines(expr)?;
    Ok((lines, s.last_stats()))
}

/// Panicking wrapper over [`try_eval_count`] for bench *setup*, where
/// an eval error means the bench itself is broken and aborting is the
/// right answer.
pub fn eval_count(target: &mut dyn Target, expr: &str, options: &EvalOptions) -> usize {
    try_eval_count(target, expr, options)
        .unwrap_or_else(|e| panic!("bench expr `{expr}` failed: {e}"))
}

/// Panicking wrapper over [`try_eval_lines`] for bench setup.
pub fn eval_lines(target: &mut dyn Target, expr: &str, options: &EvalOptions) -> Vec<String> {
    try_eval_lines(target, expr, options)
        .unwrap_or_else(|e| panic!("bench expr `{expr}` failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use duel_target::scenario;

    #[test]
    fn helpers_work() {
        let mut t = scenario::scan_array();
        let opts = EvalOptions::default();
        assert_eq!(eval_count(&mut t, "x[1..4,8,12..50] >? 5 <? 10", &opts), 3);
        assert_eq!(eval_lines(&mut t, "1+1", &opts), vec!["2"]);
    }

    #[test]
    fn try_helpers_surface_errors_instead_of_panicking() {
        let mut t = scenario::scan_array();
        let opts = EvalOptions::default();
        assert!(try_eval_count(&mut t, "nonesuch", &opts).is_err());
        assert!(try_eval_lines(&mut t, "1 +", &opts).is_err());
        assert_eq!(try_eval_count(&mut t, "x[..10]", &opts).unwrap(), 10);
    }
}
