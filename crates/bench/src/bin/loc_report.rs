//! E5 — the paper's implementation line counts, reproduced.
//!
//! The paper reports: `duel_eval` and associated functions ≈ 400 lines
//! of C; related functions (search stacks, aliases, …) ≈ 300; operator
//! application + `Value` manipulation ≈ 1200; and a 400-line gdb
//! interface module broken down 30/100/100/70/100. This binary counts
//! the corresponding Rust modules (code lines, excluding blanks,
//! comments, and the test modules) and prints the comparison table
//! recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p duel-bench --bin loc_report
//! ```

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/bench → repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// Counts code lines: non-blank, non-`//` lines above the `#[cfg(test)]`
/// marker.
fn loc(path: &Path) -> usize {
    let src =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let body = match src.find("#[cfg(test)]") {
        Some(i) => &src[..i],
        None => &src,
    };
    body.lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*") && !l.starts_with('*')
        })
        .count()
}

fn sum(root: &Path, files: &[&str]) -> usize {
    files.iter().map(|f| loc(&root.join(f))).sum()
}

fn main() {
    let root = repo_root();
    let rows: Vec<(&str, usize, &str)> = vec![
        (
            "duel_eval (resumable generators)",
            sum(
                &root,
                &[
                    "crates/core/src/eval/mod.rs",
                    "crates/core/src/eval/basic.rs",
                    "crates/core/src/eval/control.rs",
                    "crates/core/src/eval/structure.rs",
                    "crates/core/src/eval/misc.rs",
                ],
            ),
            "~400 lines of C",
        ),
        (
            "related (scopes, aliases, symbolic)",
            sum(
                &root,
                &["crates/core/src/scope.rs", "crates/core/src/sym.rs"],
            ),
            "~300 lines of C",
        ),
        (
            "operator application + Value",
            sum(
                &root,
                &[
                    "crates/core/src/apply.rs",
                    "crates/core/src/value.rs",
                    "crates/core/src/printer.rs",
                ],
            ),
            "~1200 lines of C",
        ),
        (
            "parser + lexer (yacc + handwritten)",
            sum(
                &root,
                &[
                    "crates/core/src/parser.rs",
                    "crates/core/src/lexer.rs",
                    "crates/core/src/token.rs",
                    "crates/core/src/ast.rs",
                ],
            ),
            "(yacc grammar, size not stated)",
        ),
        (
            "debugger interface (narrow API + MI adapter)",
            sum(
                &root,
                &[
                    "crates/target/src/interface.rs",
                    "crates/target/src/value_io.rs",
                    "crates/gdbmi/src/target.rs",
                ],
            ),
            "~400 lines of C (30/100/100/70/100)",
        ),
    ];
    println!(
        "E5 — implementation size vs the paper (code lines, tests \
         excluded)\n"
    );
    println!("{:<46} {:>8}   paper (C)", "component", "rust");
    println!("{}", "-".repeat(96));
    let mut total = 0;
    for (name, n, paper) in &rows {
        println!("{name:<46} {n:>8}   {paper}");
        total += n;
    }
    println!("{}", "-".repeat(96));
    println!("{:<46} {total:>8}", "total (counted components)");
    println!(
        "\nShape check: the operator-application layer dominates the \
         evaluator,\nas in the paper (1200 vs 400); the interface layer \
         stays a small,\nseparable fraction."
    );
}
