//! E7 — generator cross products: `(1..3)+(5,9)` yields 6 values,
//! `printf("%d %d, ", (3,4), 5..7)` makes 6 calls. The cost must scale
//! as the product of the operand cardinalities (k² for two k-ranges,
//! k³ for three), because the evaluator *streams* combinations in
//! O(depth) space rather than materializing them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use duel_bench::eval_count;
use duel_core::EvalOptions;
use duel_target::scenario;

fn bench_product(c: &mut Criterion) {
    let opts = EvalOptions::default();
    let mut group = c.benchmark_group("e7_product");
    group.sample_size(20);
    for k in [10u64, 32, 100] {
        let mut t = scenario::bench_array(16, 3);
        group.bench_with_input(BenchmarkId::new("two_way", k), &k, |b, &k| {
            let expr = format!("#/((1..{k})+(1..{k}))");
            b.iter(|| eval_count(&mut t, &expr, &opts));
        });
        let mut t = scenario::bench_array(16, 3);
        group.bench_with_input(BenchmarkId::new("three_way", k), &k, |b, &k| {
            let expr = format!("#/((1..{k})+(1..{k})+(1..{k}))");
            b.iter(|| eval_count(&mut t, &expr, &opts));
        });
    }
    // Cross-product *calls* (the printf example, at bench scale with a
    // cheap native function).
    let mut t = scenario::bench_array(16, 3);
    group.bench_function("abs_calls_100", |b| {
        b.iter(|| eval_count(&mut t, "#/abs((1..10)*(1..10))", &opts))
    });
    group.finish();
}

criterion_group!(benches, bench_product);
criterion_main!(benches);
