//! E1 — throughput of the full paper-transcript suite (the conformance
//! tests in `tests/paper_examples.rs` check correctness; this bench
//! tracks the cost of the same queries, one group per debuggee).

use criterion::{criterion_group, criterion_main, Criterion};
use duel_bench::eval_count;
use duel_core::EvalOptions;
use duel_target::scenario;

fn bench_transcripts(c: &mut Criterion) {
    let opts = EvalOptions::default();
    let mut group = c.benchmark_group("e1_transcripts");
    group.sample_size(20);

    group.bench_function("scan_array_suite", |b| {
        let mut t = scenario::scan_array();
        b.iter(|| {
            let mut n = 0;
            for q in [
                "(1,2,5)*4+(10,200)",
                "(3,11)+(5..7)",
                "x[1..4,8,12..50] >? 5 <? 10",
                "x[1..4,8,12..50] ==? (6..9)",
                "x[1..3] == 7",
                "1 + (double)3/2",
            ] {
                n += eval_count(&mut t, q, &opts);
            }
            n
        })
    });

    group.bench_function("hash_table_suite", |b| {
        let mut t = scenario::hash_table_basic();
        b.iter(|| {
            let mut n = 0;
            for q in [
                "(hash[..1024] !=? 0)->scope >? 5",
                "hash[1,9]->(scope,name)",
                "hash[0]-->next->scope",
                "hash[..1024]->(if (_ && scope > 5) name)",
            ] {
                n += eval_count(&mut t, q, &opts);
            }
            n
        })
    });

    group.bench_function("structures_suite", |b| {
        let mut t = scenario::combined();
        b.iter(|| {
            let mut n = 0;
            for q in [
                "L-->next->(value ==? next-->next->value)",
                "root-->(left,right)->key",
                "#/(root-->(left,right)->key)",
                "((1..9)*(1..9))[[52,74]]",
                "argv[0..]@0",
                "s[0..999]@(_=='\\0')",
            ] {
                n += eval_count(&mut t, q, &opts);
            }
            n
        })
    });

    group.finish();
}

criterion_group!(benches, bench_transcripts);
criterion_main!(benches);
