//! E4 — "In most cases, the computation of the symbolic value is more
//! expensive than computing the result. … in x[..1000] !=? 0, the
//! symbolic expression x[i] is computed 1000 times, even though it
//! might be printed only once."
//!
//! Ablation: the same expressions with eager vs lazy symbolic-value
//! construction ([`SymMode`]). The eager/lazy gap is the symbolic
//! overhead the paper says "would need to be eliminated" for
//! watchpoint-grade uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use duel_bench::eval_count;
use duel_core::{EvalOptions, SymMode};
use duel_target::scenario;

fn bench_symbolic(c: &mut Criterion) {
    let eager = EvalOptions::default();
    let lazy = EvalOptions {
        sym_mode: SymMode::Lazy,
        ..EvalOptions::default()
    };
    let mut group = c.benchmark_group("e4_symbolic");
    group.sample_size(20);
    let cases: &[(&str, String)] = &[
        // The paper's exact expression.
        ("filter_1000", "x[..1000] !=? 0".to_string()),
        // A deeper symbolic build: chained fields over the hash table.
        ("dfs_chain", "hash[..1024]-->next->scope >? 3".to_string()),
        // Pure generator arithmetic.
        ("product", "#/((1..100)*(1..100))".to_string()),
    ];
    for (name, expr) in cases {
        if name.starts_with("dfs") {
            let mut t = scenario::bench_hash(1024, 3, 7);
            group.bench_function(BenchmarkId::new("eager", name), |b| {
                b.iter(|| eval_count(&mut t, expr, &eager))
            });
            let mut t = scenario::bench_hash(1024, 3, 7);
            group.bench_function(BenchmarkId::new("lazy", name), |b| {
                b.iter(|| eval_count(&mut t, expr, &lazy))
            });
        } else {
            let mut t = scenario::bench_array(1000, 11);
            group.bench_function(BenchmarkId::new("eager", name), |b| {
                b.iter(|| eval_count(&mut t, expr, &eager))
            });
            let mut t = scenario::bench_array(1000, 11);
            group.bench_function(BenchmarkId::new("lazy", name), |b| {
                b.iter(|| eval_count(&mut t, expr, &lazy))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_symbolic);
criterion_main!(benches);
