//! E6 — the four equivalent formulations of the `hash` search from the
//! paper's Syntax section: one DUEL one-liner and three progressively
//! more C-like loop forms. All four must produce the same values; the
//! bench compares their evaluation cost (the loop forms pay per-bucket
//! statement interpretation; the one-liner streams generators).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use duel_bench::{eval_count, eval_lines};
use duel_core::EvalOptions;
use duel_target::scenario;

const FORMS: &[(&str, &str)] = &[
    ("one_liner", "(hash[..1024] !=? 0)->scope >? 5"),
    (
        "c_full",
        "int i; for (i = 0; i < 1024; i++) \
         if (hash[i] && hash[i]->scope > 5) hash[i]->scope",
    ),
    (
        "c_mixed",
        "int i; for (i = 0; i < 1024; i++) \
         if (hash[i]) hash[i]->scope >? 5",
    ),
    (
        "c_filters",
        "int i; for (i = 0; i < 1024; i++) \
         (hash[i] !=? 0)->scope >? 5",
    ),
];

fn bench_forms(c: &mut Criterion) {
    let opts = EvalOptions::default();
    // All four formulations agree (values, not symbolic paths).
    let expected: Vec<String> = {
        let mut t = scenario::bench_hash(1024, 2, 99);
        eval_lines(&mut t, FORMS[0].1, &opts)
            .iter()
            .map(|l| l.rsplit(" = ").next().unwrap_or(l).to_string())
            .collect()
    };
    for (name, form) in FORMS {
        let mut t = scenario::bench_hash(1024, 2, 99);
        let got: Vec<String> = eval_lines(&mut t, form, &opts)
            .iter()
            .map(|l| l.rsplit(" = ").next().unwrap_or(l).to_string())
            .collect();
        assert_eq!(got, expected, "formulation `{name}` disagrees");
    }

    let mut group = c.benchmark_group("e6_forms");
    group.sample_size(20);
    for (name, form) in FORMS {
        let mut t = scenario::bench_hash(1024, 2, 99);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| eval_count(&mut t, form, &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forms);
criterion_main!(benches);
