//! E2 — "x[..10000] >? 0 compiles and executes in about 5 seconds on a
//! DECStation 5000."
//!
//! Regenerates the claim's *shape*: total time should be linear in N
//! (report ns/element), with the symbolic computation a large share —
//! the eager/lazy split is measured separately in E4. A native Rust
//! scan of the same memory gives the interpretation-overhead baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use duel_bench::eval_count;
use duel_core::EvalOptions;
use duel_target::{scenario, Target};

fn bench_scan(c: &mut Criterion) {
    let opts = EvalOptions::default();
    let mut group = c.benchmark_group("e2_scan");
    group.sample_size(10);
    for n in [100u64, 1_000, 10_000, 100_000] {
        let mut t = scenario::bench_array(n, 42);
        // Correctness probe: the scan finds some positives.
        assert!(eval_count(&mut t, "#/(x[..10] >? 0)", &opts) == 1);
        group.bench_with_input(BenchmarkId::new("duel", n), &n, |b, &n| {
            let expr = format!("x[..{n}] >? 0");
            b.iter(|| eval_count(&mut t, &expr, &opts));
        });
    }
    group.finish();

    // The native baseline: same memory, hand-written walk.
    let mut group = c.benchmark_group("e2_scan_native");
    group.sample_size(10);
    for n in [10_000u64, 100_000] {
        let t = scenario::bench_array(n, 42);
        let base = {
            let mut tt = t;
            let x = tt.get_variable("x").unwrap();
            (tt, x.addr)
        };
        let (t, addr) = base;
        group.bench_with_input(BenchmarkId::new("rust", n), &n, |b, &n| {
            b.iter(|| {
                let mut count = 0usize;
                for i in 0..n {
                    let v = t.core.read_int(addr + i * 4).unwrap();
                    if v > 0 {
                        count += 1;
                    }
                }
                count
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
