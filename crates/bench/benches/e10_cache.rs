//! E10 — the cost of crossing the narrow interface, and what the
//! [`duel_target::CachedTarget`] decorator buys back.
//!
//! Every workload runs twice over the *same* latency-injected debuggee
//! (a [`duel_target::FaultTarget`] adding a fixed per-operation delay,
//! the shape of a gdb/MI round-trip): once through a disabled cache
//! (pure pass-through, still counting backend traffic) and once
//! through an enabled one. The run asserts that the rendered output is
//! identical and that the cached path issues at least 5× fewer backend
//! `get_bytes` calls, then writes the counters to `BENCH_cache.json`
//! at the repository root.
//!
//! Not a criterion bench on purpose: the quantity of interest is the
//! *backend call count* from `CacheStats`, which criterion cannot
//! report. Run with `cargo bench --bench e10_cache`.

use std::time::{Duration, Instant};

use duel_bench::try_eval_lines;
use duel_core::EvalOptions;
use duel_target::{CacheConfig, CachedTarget, FaultConfig, FaultTarget, SimTarget};

/// Per-operation latency injected into the backend. Kept small so the
/// bench doubles as a CI smoke test; the *call counts* are what the
/// acceptance check reads, and those are latency-independent.
const LATENCY: Duration = Duration::from_micros(20);

struct Workload {
    name: &'static str,
    expr: &'static str,
    scenario: fn() -> SimTarget,
}

fn scan_scenario() -> SimTarget {
    duel_target::scenario::bench_array(256, 42)
}

fn list_scenario() -> SimTarget {
    duel_target::scenario::bench_list(128, 7)
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "array_scan",
        expr: "x[..256] >? 5 <? 10",
        scenario: scan_scenario,
    },
    Workload {
        name: "list_walk",
        expr: "head-->next->value",
        scenario: list_scenario,
    },
    Workload {
        name: "hash_walk",
        expr: "#/(hash[..1024]-->next)",
        scenario: duel_target::scenario::hash_table_basic,
    },
];

struct Measurement {
    lines: Vec<String>,
    backend_reads: u64,
    wire_bytes: u64,
    lookup_misses: u64,
    wall: Duration,
}

fn run(w: &Workload, cached: bool) -> Measurement {
    let slow = FaultTarget::new(
        (w.scenario)(),
        FaultConfig {
            latency: LATENCY,
            ..FaultConfig::default()
        },
    );
    let cfg = if cached {
        CacheConfig::default()
    } else {
        CacheConfig::disabled()
    };
    let mut t = CachedTarget::with_config(slow, cfg);
    let opts = EvalOptions::default();
    let start = Instant::now();
    let lines = match try_eval_lines(&mut t, w.expr, &opts) {
        Ok(lines) => lines,
        Err(e) => {
            eprintln!("workload `{}` failed: {e}", w.name);
            Vec::new()
        }
    };
    let wall = start.elapsed();
    let s = t.stats();
    Measurement {
        lines,
        backend_reads: s.backend_reads,
        wire_bytes: s.wire_bytes,
        lookup_misses: s.lookup_misses,
        wall,
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut failed = false;
    for w in WORKLOADS {
        let uncached = run(w, false);
        let cached = run(w, true);
        let identical = uncached.lines == cached.lines && !uncached.lines.is_empty();
        let reduction = uncached.backend_reads as f64 / cached.backend_reads.max(1) as f64;
        println!(
            "{:<11} backend reads {:>6} -> {:>4}  ({reduction:>5.1}x), wire bytes {:>7} -> {:>6}, \
             wall {:>7.2?} -> {:>7.2?}, identical output: {identical}",
            w.name,
            uncached.backend_reads,
            cached.backend_reads,
            uncached.wire_bytes,
            cached.wire_bytes,
            uncached.wall,
            cached.wall,
        );
        if !identical {
            eprintln!("FAIL: `{}` output differs under caching", w.name);
            failed = true;
        }
        if reduction < 5.0 {
            eprintln!(
                "FAIL: `{}` backend-read reduction {reduction:.1}x is below the 5x target",
                w.name
            );
            failed = true;
        }
        rows.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"expr\": {},\n      \"values\": {},\n      \
             \"uncached_backend_reads\": {},\n      \"cached_backend_reads\": {},\n      \
             \"read_reduction\": {:.2},\n      \"uncached_wire_bytes\": {},\n      \
             \"cached_wire_bytes\": {},\n      \"cached_lookup_misses\": {},\n      \
             \"uncached_wall_us\": {},\n      \"cached_wall_us\": {},\n      \
             \"identical_output\": {}\n    }}",
            w.name,
            json_str(w.expr),
            cached.lines.len(),
            uncached.backend_reads,
            cached.backend_reads,
            reduction,
            uncached.wire_bytes,
            cached.wire_bytes,
            cached.lookup_misses,
            uncached.wall.as_micros(),
            cached.wall.as_micros(),
            identical,
        ));
    }
    // Standard bench-report schema shared by every BENCH_*.json:
    // schema_version / name / config / metrics.
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"name\": \"e10_cache\",\n  \"config\": {{\n    \
         \"latency_us\": {},\n    \"page_size\": {},\n    \"max_pages\": {}\n  }},\n  \
         \"metrics\": {{\n  \"workloads\": [\n{}\n  ]\n  }}\n}}\n",
        LATENCY.as_micros(),
        CacheConfig::default().page_size,
        CacheConfig::default().max_pages,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cache.json");
    std::fs::write(path, &json).expect("write BENCH_cache.json");
    println!("wrote {path}");
    if failed {
        std::process::exit(1);
    }
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}
