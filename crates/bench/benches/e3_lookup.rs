//! E3 — "most of the time in evaluating 1..100+i goes to the 100
//! lookups of i."
//!
//! `(1..N)+i` re-resolves `i` once per generated value. The ablation
//! varies what `i` *is*:
//!
//! * a literal (`(1..N)+5`) — no lookup at all;
//! * a DUEL alias — one hash-map probe per value;
//! * a target variable — a full `duel_get_target_variable` round trip
//!   plus a typed memory load per value.
//!
//! The paper's claim corresponds to the widening gap between the
//! literal row and the variable row as N grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use duel_bench::eval_count;
use duel_core::{EvalOptions, Session};
use duel_gdbmi::{MiTarget, MockGdb};
use duel_target::scenario;

fn bench_lookup(c: &mut Criterion) {
    let opts = EvalOptions::default();
    let mut group = c.benchmark_group("e3_lookup");
    group.sample_size(20);
    for n in [10u64, 100, 1000] {
        // Literal operand: zero lookups.
        let mut t = scenario::bench_array(16, 1);
        group.bench_with_input(BenchmarkId::new("literal", n), &n, |b, &n| {
            let expr = format!("(1..{n})+5");
            b.iter(|| eval_count(&mut t, &expr, &opts));
        });
        // Alias operand: session-map lookups.
        let mut t = scenario::bench_array(16, 1);
        {
            let mut s = Session::new(&mut t);
            s.eval("j := 5 ;").unwrap();
        }
        // Aliases live in the session; rebuild it inside the timed
        // closure exactly as the other rows do, with `j` predefined.
        group.bench_with_input(BenchmarkId::new("alias", n), &n, |b, &n| {
            let expr = format!("j := 5; (1..{n})+j");
            b.iter(|| eval_count(&mut t, &expr, &opts));
        });
        // Target-variable operand: the paper's case — `i` is a global
        // in the debuggee, looked up and loaded per value.
        let mut t = scenario::bench_array(16, 1);
        group.bench_with_input(BenchmarkId::new("target_var", n), &n, |b, &n| {
            let expr = format!("(1..{n})+i");
            b.iter(|| eval_count(&mut t, &expr, &opts));
        });
        // The same lookup when `duel_get_target_variable` has a
        // realistic cost (a wire round-trip per lookup, as under a real
        // debugger): this is where the paper's "most of the time goes
        // to the lookups of i" lives.
        let mut mi =
            MiTarget::connect(MockGdb::new(scenario::bench_array(16, 1))).expect("connect");
        group.bench_with_input(BenchmarkId::new("target_var_mi", n), &n, |b, &n| {
            let expr = format!("(1..{n})+i");
            b.iter(|| eval_count(&mut mi, &expr, &opts));
        });
        let mut mi =
            MiTarget::connect(MockGdb::new(scenario::bench_array(16, 1))).expect("connect");
        group.bench_with_input(BenchmarkId::new("literal_mi", n), &n, |b, &n| {
            let expr = format!("(1..{n})+5");
            b.iter(|| eval_count(&mut mi, &expr, &opts));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
