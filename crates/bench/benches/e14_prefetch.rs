//! E14 — what the generator-aware prefetch planner buys on the wire.
//!
//! The workload is the paper's motivating cost case: a contiguous scan
//! of a 4096-element array (`x[..4096]`), where every element crosses
//! the narrow interface as its own read. The tower puts a wire-level
//! [`duel_target::TraceTarget`] *between* the cache and a
//! latency-injected backend, so `TraceHandle::wire_turns()` (scalar
//! `get_bytes` calls plus vectored `multi_read` calls) counts exactly
//! the round-trips a remote debugger would pay.
//!
//! Each run executes twice over identical debuggees: once with the
//! planner off (the cache demand-fetches one page per miss) and once
//! with `EvalOptions::prefetch` on (the planner warms the whole span in
//! one vectored call). The run asserts byte-identical rendered output
//! and a ≥5× wire-turn reduction, then writes `BENCH_prefetch.json` at
//! the repository root.
//!
//! Not a criterion bench on purpose: the quantity of interest is the
//! wire-turn count, which criterion cannot report. Run with
//! `cargo bench --bench e14_prefetch`.

use std::time::{Duration, Instant};

use duel_bench::try_eval_lines_with_stats;
use duel_core::EvalOptions;
use duel_target::{
    CacheConfig, CachedTarget, FaultConfig, FaultTarget, SimTarget, TraceHandle, TraceTarget,
};

/// Per-operation latency injected below the wire trace. Kept small so
/// the bench doubles as a CI smoke test; the turn counts are what the
/// acceptance check reads, and those are latency-independent.
const LATENCY: Duration = Duration::from_micros(20);

/// Elements in the scanned array.
const ELEMENTS: u64 = 4096;

/// Cache page size: small enough that a demand-paged scan of
/// `ELEMENTS * 4` bytes costs hundreds of turns, so the planner's
/// single vectored warm-up is visible.
const PAGE_SIZE: u64 = 64;

struct Workload {
    name: &'static str,
    expr: &'static str,
    scenario: fn() -> SimTarget,
}

fn scan_scenario() -> SimTarget {
    duel_target::scenario::bench_array(ELEMENTS, 42)
}

fn filtered_scenario() -> SimTarget {
    duel_target::scenario::bench_array(ELEMENTS, 7)
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "array_scan",
        expr: "x[..4096]",
        scenario: scan_scenario,
    },
    Workload {
        name: "filtered_scan",
        expr: "x[..4096] >? 90",
        scenario: filtered_scenario,
    },
];

struct Measurement {
    lines: Vec<String>,
    wire_turns: u64,
    multi_reads: u64,
    prefetch_calls: u64,
    wall: Duration,
}

fn run(w: &Workload, prefetch: bool) -> Measurement {
    let slow = FaultTarget::new(
        (w.scenario)(),
        FaultConfig {
            latency: LATENCY,
            ..FaultConfig::default()
        },
    );
    let wire = TraceTarget::with_label(slow, "wire");
    let handle: TraceHandle = wire.handle();
    handle.set_enabled(true);
    let mut t = CachedTarget::with_config(
        wire,
        CacheConfig {
            page_size: PAGE_SIZE,
            ..CacheConfig::default()
        },
    );
    let opts = EvalOptions {
        prefetch,
        ..EvalOptions::default()
    };
    let start = Instant::now();
    let (lines, stats) = match try_eval_lines_with_stats(&mut t, w.expr, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("workload `{}` failed: {e}", w.name);
            (Vec::new(), Default::default())
        }
    };
    let wall = start.elapsed();
    Measurement {
        lines,
        wire_turns: handle.wire_turns(),
        multi_reads: handle.calls(duel_target::TraceOp::MultiRead),
        prefetch_calls: stats.prefetch_calls,
        wall,
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut failed = false;
    for w in WORKLOADS {
        let demand = run(w, false);
        let planned = run(w, true);
        let identical = demand.lines == planned.lines && !demand.lines.is_empty();
        let reduction = demand.wire_turns as f64 / planned.wire_turns.max(1) as f64;
        println!(
            "{:<13} wire turns {:>5} -> {:>3}  ({reduction:>6.1}x), {} vectored, \
             {} planner warm-ups, wall {:>8.2?} -> {:>8.2?}, identical output: {identical}",
            w.name,
            demand.wire_turns,
            planned.wire_turns,
            planned.multi_reads,
            planned.prefetch_calls,
            demand.wall,
            planned.wall,
        );
        if !identical {
            eprintln!("FAIL: `{}` output differs under prefetch", w.name);
            failed = true;
        }
        if reduction < 5.0 {
            eprintln!(
                "FAIL: `{}` wire-turn reduction {reduction:.1}x is below the 5x target",
                w.name
            );
            failed = true;
        }
        if planned.prefetch_calls == 0 {
            eprintln!("FAIL: `{}` planner never fired", w.name);
            failed = true;
        }
        rows.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"expr\": {},\n      \"values\": {},\n      \
             \"demand_wire_turns\": {},\n      \"planned_wire_turns\": {},\n      \
             \"turn_reduction\": {:.2},\n      \"vectored_calls\": {},\n      \
             \"prefetch_calls\": {},\n      \"demand_wall_us\": {},\n      \
             \"planned_wall_us\": {},\n      \"identical_output\": {}\n    }}",
            w.name,
            json_str(w.expr),
            planned.lines.len(),
            demand.wire_turns,
            planned.wire_turns,
            reduction,
            planned.multi_reads,
            planned.prefetch_calls,
            demand.wall.as_micros(),
            planned.wall.as_micros(),
            identical,
        ));
    }
    // Standard bench-report schema shared by every BENCH_*.json:
    // schema_version / name / config / metrics.
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"name\": \"e14_prefetch\",\n  \"config\": {{\n    \
         \"latency_us\": {},\n    \"page_size\": {},\n    \"elements\": {}\n  }},\n  \
         \"metrics\": {{\n  \"workloads\": [\n{}\n  ]\n  }}\n}}\n",
        LATENCY.as_micros(),
        PAGE_SIZE,
        ELEMENTS,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_prefetch.json");
    std::fs::write(path, &json).expect("write BENCH_prefetch.json");
    println!("wrote {path}");
    if failed {
        std::process::exit(1);
    }
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}
