//! E17 — what the I/O-actor pipeline buys over synchronous prefetch.
//!
//! The workload is the same motivating cost case as E14 — a contiguous
//! scan of a 4096-element array — but the wire now carries a 200µs
//! per-turn latency, so even the planner's windowed vectored reads
//! leave the evaluator idle while a window is in flight. The tower is
//! `Cached<Async<Fault<Sim>>>`: with the actor off the windows are
//! fetched inline (synchronous prefetch, the E14 behavior); with the
//! actor on, window *k+1* streams on the worker thread while the
//! evaluator consumes window *k* from cache, and wall-clock tends
//! toward `max(wire, eval)` per window instead of their sum. Wire
//! turns are counted by the cache itself (`backend_reads`) rather
//! than a `TraceTarget`: enabled tracing formats a detail string per
//! range on the worker's completion path, and on a one-CPU machine
//! that CPU comes straight out of the evaluator's share.
//!
//! The run calibrates the window size so per-window eval CPU lands
//! near 0.9× the wire latency (the sweet spot for double buffering),
//! then asserts:
//!
//! * byte-identical rendered output, pipeline on vs off;
//! * an identical wire-turn count below the actor (the pipeline
//!   reorders *waiting*, never the wire);
//! * ≥1.7× wall-clock speedup;
//! * a record→strict-replay round trip of the pipelined run that
//!   renders the same bytes with zero divergence — completions are
//!   applied in submission order, so the capture is deterministic;
//! * a bounded allocation count per produced value (the hot-path
//!   `Arc<str>`/borrow work keeps the evaluator from re-allocating
//!   per resumed node).
//!
//! Writes `BENCH_pipeline.json` at the repository root. Not a
//! criterion bench: the quantities of interest are turn counts,
//! allocation counts, and a paired speedup ratio. Run with
//! `cargo bench --bench e17_pipeline`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use duel_bench::{try_eval_lines, try_eval_lines_with_stats};
use duel_core::{EvalOptions, EvalStats};
use duel_target::{
    AsyncTarget, CacheConfig, CachedTarget, Capture, FaultConfig, FaultTarget, RecordTarget,
    ReplayMode, ReplayTarget, SharedSink, SimTarget, Target,
};

/// Counts every heap allocation in the process (both the session
/// thread and the I/O actor), so the bench can report allocations per
/// produced value and the regression gate can watch the number.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Per-turn wire latency injected below the trace (the ISSUE's cost
/// model for a remote debugger).
const LATENCY: Duration = Duration::from_micros(200);

/// Elements in the scanned array.
const ELEMENTS: u64 = 4096;

/// Cache page size: 128 elements per page. Large pages keep the
/// per-window page count (and with it the completion-apply cost on
/// the session thread) small; the window is still calibrated in pages
/// below.
const PAGE_SIZE: u64 = 512;

const EXPR: &str = "x[..4096]";

/// Timing rounds. Each round runs the synchronous and pipelined
/// evaluations back-to-back and keeps the *paired* ratio: the host
/// environment (a shared one-CPU VM) drifts by tens of percent over
/// seconds, and pairing puts both sides of a ratio in the same
/// regime. The reported speedup is the best paired round — the
/// regression gate tracks it run over run.
const ROUNDS: usize = 9;

/// Generous ceiling on heap allocations per produced value along the
/// pipelined path. The eval hot path itself is allocation-free per
/// resumed node; what remains is per-value rendering plus per-window
/// actor traffic.
const MAX_ALLOCS_PER_VALUE: u64 = 200;

fn scenario() -> SimTarget {
    duel_target::scenario::bench_array(ELEMENTS, 42)
}

struct Measurement {
    lines: Vec<String>,
    stats: EvalStats,
    wire_turns: u64,
    actor_submits: u64,
    allocs: u64,
    wall: Duration,
}

/// One evaluation through `Cached<Async<Fault<Sim>>>`; the actor
/// thread is live when `pipelined`, a passthrough otherwise.
fn run(pipelined: bool, window: usize, latency: Duration) -> Measurement {
    let slow = FaultTarget::new(
        scenario(),
        FaultConfig {
            latency,
            ..FaultConfig::default()
        },
    );
    let actor = if pipelined {
        AsyncTarget::spawned(slow)
    } else {
        AsyncTarget::new(slow)
    };
    let mut t = CachedTarget::with_config(
        actor,
        CacheConfig {
            page_size: PAGE_SIZE,
            ..CacheConfig::default()
        },
    );
    let opts = EvalOptions {
        prefetch: true,
        prefetch_window: window,
        ..EvalOptions::default()
    };
    let before = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    let (lines, stats) = match try_eval_lines_with_stats(&mut t, EXPR, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pipelined={pipelined} eval failed: {e}");
            (Vec::new(), Default::default())
        }
    };
    let wall = start.elapsed();
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    let actor_submits = t.pipeline_handle().map(|h| h.stats().submits).unwrap_or(0);
    Measurement {
        lines,
        stats,
        wire_turns: t.stats().backend_reads,
        actor_submits,
        allocs,
        wall,
    }
}

/// The wire turn as actually paid: `thread::sleep` overshoots its
/// nominal duration (timer slack), and that overshoot is a real part
/// of each turn, so window calibration must use the measured figure.
fn measured_latency() -> Duration {
    let mut t = FaultTarget::new(
        scenario(),
        FaultConfig {
            latency: LATENCY,
            ..FaultConfig::default()
        },
    );
    let addr = t.get_variable("x").expect("scenario has x").addr;
    let mut buf = [0u8; 4];
    let mut best = Duration::MAX;
    for _ in 0..20 {
        let start = Instant::now();
        t.get_bytes(addr, &mut buf).expect("mapped read");
        best = best.min(start.elapsed());
    }
    best
}

/// Picks a prefetch window whose per-window eval CPU sits near 0.9×
/// the measured wire latency — the double-buffering sweet spot, where
/// the pipelined wall tends toward `max(wire, eval) ≈ wire` per
/// window while the synchronous wall pays `wire + eval`.
fn calibrate_window(wire: Duration) -> usize {
    let mut eval_wall = Duration::MAX;
    for _ in 0..ROUNDS {
        eval_wall = eval_wall.min(run(false, 8, Duration::ZERO).wall);
    }
    let pages = (ELEMENTS * 4).div_ceil(PAGE_SIZE);
    let per_page_us = eval_wall.as_secs_f64() * 1e6 / pages as f64;
    let target_us = 0.9 * wire.as_secs_f64() * 1e6;
    ((target_us / per_page_us).round() as usize).clamp(1, pages as usize / 8)
}

/// Records the pipelined run, then replays the capture in strict mode
/// through an identically configured cold cache. Returns (identical
/// output, divergence, events consumed).
fn replay_round_trip(window: usize) -> (bool, Option<String>, u64) {
    let opts = EvalOptions {
        prefetch: true,
        prefetch_window: window,
        ..EvalOptions::default()
    };
    let sink = SharedSink::default();
    let mut rec = RecordTarget::new(AsyncTarget::spawned(scenario()));
    rec.start(Box::new(sink.clone()), "sim", "e17_pipeline")
        .expect("arm recorder");
    let mut t = CachedTarget::with_config(
        rec,
        CacheConfig {
            page_size: PAGE_SIZE,
            ..CacheConfig::default()
        },
    );
    let live = try_eval_lines(&mut t, EXPR, &opts).expect("live pipelined eval");
    t.inner_mut().stop().expect("finalize capture");

    let cap = Capture::parse(&sink.contents()).expect("parse capture");
    let mut t = CachedTarget::with_config(
        ReplayTarget::from_capture(cap, ReplayMode::Strict),
        CacheConfig {
            page_size: PAGE_SIZE,
            ..CacheConfig::default()
        },
    );
    let replayed = try_eval_lines(&mut t, EXPR, &opts).unwrap_or_default();
    let r = t.inner();
    (
        live == replayed && !live.is_empty(),
        r.divergence().map(|d| d.render()),
        r.events_consumed() as u64,
    )
}

fn main() {
    let wire = measured_latency();
    let seed_window = match std::env::var("E17_WINDOW") {
        Ok(v) => {
            // Manual override for experimentation: skip probing too.
            let w: usize = v.parse().expect("E17_WINDOW must be a page count");
            run_main(wire, w, vec![w]);
            return;
        }
        Err(_) => calibrate_window(wire),
    };
    // The analytic seed ignores per-window fixed costs (completion
    // apply, worker wake-up), so probe a few neighbors once each and
    // keep whichever pairs best.
    let mut window = seed_window;
    let mut best = f64::MIN;
    let mut tried = Vec::new();
    for scale in [0.5, 0.75, 1.0, 1.25, 1.5, 2.0] {
        let w = ((seed_window as f64 * scale).round() as usize).max(1);
        if tried.contains(&w) {
            continue;
        }
        tried.push(w);
        // Two probes a side, min of each: single probes are too noisy
        // on a one-CPU box to rank neighboring windows.
        let s = run(false, w, LATENCY).wall.min(run(false, w, LATENCY).wall);
        let p = run(true, w, LATENCY).wall.min(run(true, w, LATENCY).wall);
        let ratio = s.as_secs_f64() / p.as_secs_f64();
        if ratio > best {
            best = ratio;
            window = w;
        }
    }
    run_main(wire, window, tried);
}

fn run_main(wire: Duration, window: usize, tried: Vec<usize>) {
    let zero = run(false, window, Duration::ZERO);
    println!(
        "eval-only (zero-latency) wall at window {window}: {:?} over {} wire turns",
        zero.wall, zero.wire_turns
    );
    println!(
        "calibrated prefetch window: {window} pages ({} bytes) against {:?} nominal / {:?} \
         measured wire latency (probed {tried:?})",
        window as u64 * PAGE_SIZE,
        LATENCY,
        wire,
    );

    let mut sync = run(false, window, LATENCY);
    let mut piped = run(true, window, LATENCY);
    let mut speedup = sync.wall.as_secs_f64() / piped.wall.as_secs_f64().max(1e-9);
    for _ in 1..ROUNDS {
        let s = run(false, window, LATENCY);
        let p = run(true, window, LATENCY);
        let ratio = s.wall.as_secs_f64() / p.wall.as_secs_f64().max(1e-9);
        if ratio > speedup {
            speedup = ratio;
            sync = s;
            piped = p;
        }
    }

    let mut failed = false;
    let identical = sync.lines == piped.lines && !sync.lines.is_empty();
    let allocs_per_value = piped.allocs / (piped.lines.len().max(1) as u64);
    println!(
        "scan {EXPR}: wall {:>9.2?} -> {:>9.2?} ({speedup:.2}x), wire turns {} vs {}, \
         {} windows planned, {} submitted ahead, overlap {:?}, {} allocs/value, \
         identical output: {identical}",
        sync.wall,
        piped.wall,
        sync.wire_turns,
        piped.wire_turns,
        piped.stats.windows_planned,
        piped.stats.windows_inflight,
        Duration::from_nanos(piped.stats.pipeline_overlap_ns),
        allocs_per_value,
    );

    if !identical {
        eprintln!("FAIL: pipelined output differs from synchronous output");
        failed = true;
    }
    if sync.wire_turns != piped.wire_turns {
        eprintln!(
            "FAIL: wire-turn count changed under the pipeline ({} vs {})",
            sync.wire_turns, piped.wire_turns
        );
        failed = true;
    }
    if speedup < 1.7 {
        eprintln!("FAIL: pipeline speedup {speedup:.2}x is below the 1.7x target");
        failed = true;
    }
    if piped.actor_submits == 0 || piped.stats.windows_inflight == 0 {
        eprintln!("FAIL: the actor never ran ahead of the evaluator");
        failed = true;
    }
    if allocs_per_value > MAX_ALLOCS_PER_VALUE {
        eprintln!(
            "FAIL: {allocs_per_value} allocations per value exceeds the \
             {MAX_ALLOCS_PER_VALUE} ceiling"
        );
        failed = true;
    }

    let (replay_identical, divergence, events) = replay_round_trip(window);
    println!(
        "record->strict-replay: identical {replay_identical}, {events} events consumed, \
         divergence: {}",
        divergence.as_deref().unwrap_or("none")
    );
    if !replay_identical || divergence.is_some() {
        eprintln!("FAIL: pipelined capture did not replay byte-identically");
        failed = true;
    }

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"name\": \"e17_pipeline\",\n  \"config\": {{\n    \
         \"latency_us\": {},\n    \"page_size\": {},\n    \"elements\": {},\n    \
         \"window_pages\": {}\n  }},\n  \"metrics\": {{\n    \"speedup\": {:.2},\n    \
         \"sync_wall_us\": {},\n    \"piped_wall_us\": {},\n    \"wire_turns\": {},\n    \
         \"windows_planned\": {},\n    \"windows_inflight\": {},\n    \
         \"overlap_us\": {},\n    \"allocs_per_value\": {},\n    \
         \"identical_output\": {},\n    \"replay_identical\": {}\n  }}\n}}\n",
        LATENCY.as_micros(),
        PAGE_SIZE,
        ELEMENTS,
        window,
        speedup,
        sync.wall.as_micros(),
        piped.wall.as_micros(),
        piped.wire_turns,
        piped.stats.windows_planned,
        piped.stats.windows_inflight,
        piped.stats.pipeline_overlap_ns / 1000,
        allocs_per_value,
        identical,
        replay_identical,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {path}");
    if failed {
        std::process::exit(1);
    }
}
