//! E15 — the cost and correctness of causal span tracing.
//!
//! PR-8 threads a [`duel_target::SpanContext`] from the evaluator down
//! the whole decorator tower, so every wire event can be attributed to
//! the AST node that caused it. The promise mirrors E11's: when span
//! tracing is *disabled*, the plumbing must be near-free (one relaxed
//! atomic load per would-be span), and when it is *enabled*, every
//! traced wire event must carry a valid ancestor chain back to the
//! `eval` root span. Three towers over the same simulated debuggee:
//!
//! * `baseline`  — `CachedTarget<SimTarget>` (no trace layer; the
//!   evaluator sees no span context at all);
//! * `spans_off` — `TraceTarget<CachedTarget<SimTarget>>` with both
//!   wire tracing and span tracing disabled;
//! * `spans_on`  — the same tower fully enabled (informational
//!   timing, plus the attribution assertions).
//!
//! Configurations are measured **interleaved** (baseline, off, on,
//! repeat) and the per-config minimum over all rounds is compared, so
//! one-off scheduler noise cannot charge a phantom overhead to either
//! side. The run asserts byte-identical rendered output across all
//! three towers, a `spans_off` overhead under 5%, that enabled runs
//! recorded spans, and that 100% of traced wire events resolve through
//! live parent spans to an `eval` root; it then writes
//! `BENCH_spans.json` (same schema as `BENCH_trace.json`:
//! `schema_version` / `name` / `config` / `metrics`) at the repository
//! root. Run with `cargo bench --bench e15_spans`.

use std::time::{Duration, Instant};

use duel_bench::try_eval_lines;
use duel_core::EvalOptions;
use duel_target::{
    attribution_coverage, CacheConfig, CachedTarget, SimTarget, SpanKind, Target, TraceTarget,
};

/// Evaluations per timed measurement (amortizes tower construction).
const REPS: usize = 8;
/// Interleaved measurement rounds; the minimum per config is reported.
const ROUNDS: usize = 25;
/// The 5% acceptance ceiling for disabled-span overhead.
const MAX_OVERHEAD_PCT: f64 = 5.0;

struct Workload {
    name: &'static str,
    expr: &'static str,
    scenario: fn() -> SimTarget,
}

fn scan_scenario() -> SimTarget {
    duel_target::scenario::bench_array(256, 42)
}

fn list_scenario() -> SimTarget {
    duel_target::scenario::bench_list(128, 7)
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "array_scan",
        expr: "x[..256] >? 5 <? 10",
        scenario: scan_scenario,
    },
    Workload {
        name: "list_walk",
        expr: "head-->next->value",
        scenario: list_scenario,
    },
    Workload {
        name: "hash_walk",
        expr: "#/(hash[..1024]-->next)",
        scenario: duel_target::scenario::hash_table_basic,
    },
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Config {
    Baseline,
    SpansOff,
    SpansOn,
}

/// Per-measurement attribution evidence from an enabled run.
#[derive(Default)]
struct Evidence {
    spans_recorded: usize,
    events_attributed: usize,
    events_total: usize,
    eval_roots: usize,
}

/// One timed measurement: build the tower fresh (cold cache for every
/// config alike), evaluate the expression `REPS` times, return the
/// wall time, the rendered output of the last rep, and (for enabled
/// runs) the attribution evidence.
fn measure(w: &Workload, config: Config) -> (Duration, Vec<String>, Evidence) {
    let cached = CachedTarget::with_config((w.scenario)(), CacheConfig::default());
    let opts = EvalOptions::default();
    let run_reps = |t: &mut dyn Target| -> Vec<String> {
        let mut lines = Vec::new();
        for _ in 0..REPS {
            lines = match try_eval_lines(t, w.expr, &opts) {
                Ok(lines) => lines,
                Err(e) => {
                    eprintln!("workload `{}` failed: {e}", w.name);
                    Vec::new()
                }
            };
        }
        lines
    };
    match config {
        Config::Baseline => {
            let mut t = cached;
            let start = Instant::now();
            let lines = run_reps(&mut t);
            (start.elapsed(), lines, Evidence::default())
        }
        Config::SpansOff | Config::SpansOn => {
            let mut t = TraceTarget::with_label(cached, "session");
            let on = config == Config::SpansOn;
            t.handle().set_enabled(on);
            t.spans().set_enabled(on);
            if on {
                // Attribution coverage is guaranteed for events whose
                // spans are still buffered, so size both rings to hold
                // the whole measured window (REPS evaluations) without
                // wrapping — exactly what `.set trace_buf` does live.
                t.handle().set_capacity(1 << 16);
                t.spans().set_capacity(1 << 16);
            }
            let start = Instant::now();
            let lines = run_reps(&mut t);
            let wall = start.elapsed();
            let mut ev = Evidence::default();
            if on {
                let snap = t.spans().snapshot();
                let events = t.handle().recent_events(usize::MAX);
                let (ok, total) = attribution_coverage(&snap, &events);
                assert_eq!(snap.dropped, 0, "span ring must not wrap mid-measurement");
                ev.spans_recorded = snap.spans.len();
                ev.events_attributed = ok;
                ev.events_total = total;
                ev.eval_roots = snap
                    .spans
                    .iter()
                    .filter(|s| s.kind == SpanKind::Root)
                    .count();
            }
            (wall, lines, ev)
        }
    }
}

struct Row {
    name: &'static str,
    expr: &'static str,
    baseline_us: u128,
    spans_off_us: u128,
    spans_on_us: u128,
    overhead_pct: f64,
    spans_recorded: usize,
    events_attributed: usize,
    events_total: usize,
    identical: bool,
}

fn main() {
    let mut rows = Vec::new();
    let mut failed = false;
    for w in WORKLOADS {
        let mut best = [Duration::MAX; 3];
        let mut outputs: [Vec<String>; 3] = Default::default();
        let mut evidence = Evidence::default();
        for _ in 0..ROUNDS {
            for (i, config) in [Config::Baseline, Config::SpansOff, Config::SpansOn]
                .into_iter()
                .enumerate()
            {
                let (wall, lines, ev) = measure(w, config);
                best[i] = best[i].min(wall);
                outputs[i] = lines;
                if ev.events_total > 0 || ev.spans_recorded > 0 {
                    evidence = ev;
                }
            }
        }
        let identical =
            outputs[0] == outputs[1] && outputs[1] == outputs[2] && !outputs[0].is_empty();
        let overhead_pct =
            100.0 * (best[1].as_secs_f64() - best[0].as_secs_f64()) / best[0].as_secs_f64();
        println!(
            "{:<11} baseline {:>9.2?}  spans-off {:>9.2?} ({overhead_pct:>+5.1}%)  \
             spans-on {:>9.2?}  {} spans, {}/{} events attributed, identical output: {identical}",
            w.name,
            best[0],
            best[1],
            best[2],
            evidence.spans_recorded,
            evidence.events_attributed,
            evidence.events_total,
        );
        if !identical {
            eprintln!("FAIL: `{}` output differs across towers", w.name);
            failed = true;
        }
        if evidence.spans_recorded == 0 {
            eprintln!("FAIL: `{}` enabled span tracing recorded nothing", w.name);
            failed = true;
        }
        if evidence.eval_roots == 0 {
            eprintln!("FAIL: `{}` recorded no `eval` root span", w.name);
            failed = true;
        }
        if evidence.events_total == 0 || evidence.events_attributed != evidence.events_total {
            eprintln!(
                "FAIL: `{}` attribution coverage {}/{} — every traced wire event must \
                 chain to an eval root",
                w.name, evidence.events_attributed, evidence.events_total
            );
            failed = true;
        }
        if overhead_pct >= MAX_OVERHEAD_PCT {
            eprintln!(
                "FAIL: `{}` disabled-span overhead {overhead_pct:.1}% exceeds the \
                 {MAX_OVERHEAD_PCT}% ceiling",
                w.name
            );
            failed = true;
        }
        rows.push(Row {
            name: w.name,
            expr: w.expr,
            baseline_us: best[0].as_micros(),
            spans_off_us: best[1].as_micros(),
            spans_on_us: best[2].as_micros(),
            overhead_pct,
            spans_recorded: evidence.spans_recorded,
            events_attributed: evidence.events_attributed,
            events_total: evidence.events_total,
            identical,
        });
    }
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"name\": \"{}\",\n      \"expr\": {},\n      \
                 \"baseline_us\": {},\n      \"spans_off_us\": {},\n      \
                 \"spans_on_us\": {},\n      \"overhead_pct\": {:.2},\n      \
                 \"spans_recorded\": {},\n      \"events_attributed\": {},\n      \
                 \"events_total\": {},\n      \"identical_output\": {}\n    }}",
                r.name,
                json_str(r.expr),
                r.baseline_us,
                r.spans_off_us,
                r.spans_on_us,
                r.overhead_pct,
                r.spans_recorded,
                r.events_attributed,
                r.events_total,
                r.identical,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"name\": \"e15_spans\",\n  \"config\": {{\n    \
         \"reps\": {REPS},\n    \"rounds\": {ROUNDS},\n    \"max_overhead_pct\": \
         {MAX_OVERHEAD_PCT}\n  }},\n  \"metrics\": {{\n  \"workloads\": [\n{}\n  ]\n  }}\n}}\n",
        row_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spans.json");
    std::fs::write(path, &json).expect("write BENCH_spans.json");
    println!("wrote {path}");
    if failed {
        std::process::exit(1);
    }
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}
