//! E16 — self-hosted introspection: the meta-target's three promises.
//!
//! PR-9 turns the debugger's own telemetry into a first-class debuggee
//! (`.query` over a synthetic [`duel_target::MetaTarget`]). This bench
//! pins the three properties the design rests on:
//!
//! 1. **Agreement** — aggregating `events`/`spans`/`counters` with
//!    DUEL reductions returns numbers *byte-identical* to the fixed
//!    views (`.top`'s per-op totals, `.trace dump`'s event list) taken
//!    from the same snapshot. The meta image is the same data, not a
//!    parallel bookkeeping path that can drift.
//! 2. **Speed** — freezing a full 4096-span ring into a meta image and
//!    running an aggregate query over it completes in well under 50 ms
//!    (min over interleaved rounds), so `.query` is usable as a live
//!    debugging reflex, not a report generator.
//! 3. **Isolation** — meta-queries perturb neither the debuggee's
//!    evaluation output nor the wire-op counters they inspect: the
//!    snapshot is a copy served from process memory.
//!
//! Writes `BENCH_meta.json` (shared `schema_version` / `name` /
//! `config` / `metrics` envelope) at the repository root. Run with
//! `cargo bench -p duel-bench --bench e16_meta`.

use std::time::{Duration, Instant};

use duel_cli::Repl;
use duel_core::oneshot_lines;
use duel_target::trace::TRACE_OPS;
use duel_target::{MetaSnapshot, MetaTarget, SpanContext, SpanKind};

/// Interleaved timing rounds for the 4096-span measurement.
const ROUNDS: usize = 25;
/// Spans frozen into the timed meta image.
const RING_SPANS: usize = 4096;
/// The acceptance ceiling for snapshot + query of that ring.
const MAX_QUERY_MS: f64 = 50.0;

/// Runs one REPL line and returns its output.
fn run(r: &mut Repl, line: &str) -> String {
    let mut out = String::new();
    r.handle(line, &mut out);
    out
}

/// Runs a `.query` that yields one scalar and parses it.
fn scalar(r: &mut Repl, expr: &str) -> u64 {
    let out = run(r, &format!(".query {expr}"));
    out.trim()
        .parse()
        .unwrap_or_else(|_| panic!("`.query {expr}` did not yield a scalar:\n{out}"))
}

/// Extracts the `= value` column of a field-projection query.
fn column(r: &mut Repl, expr: &str) -> Vec<u64> {
    let out = run(r, &format!(".query {expr}"));
    out.lines()
        .map(|l| {
            l.split(" = ")
                .nth(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("unparseable line `{l}` from `.query {expr}`"))
        })
        .collect()
}

/// Promise 1: DUEL aggregates over the meta image byte-agree with the
/// fixed views' numbers on the same snapshot.
fn check_agreement(failed: &mut bool) -> (usize, usize) {
    let mut r = Repl::new();
    run(&mut r, ".set trace_buf 65536"); // ring == totals: nothing drops
    run(&mut r, ".trace on");
    run(&mut r, ".trace spans on");
    // The E2-style workload: scans, a filtered scan, a pointer walk.
    run(&mut r, "x[..200] >? 5 <? 120");
    run(&mut r, "#/(hash[..1024]-->next)");
    run(&mut r, "head-->next->value");

    let trace = r.trace_handle().snapshot();
    assert_eq!(trace.events_dropped, 0, "ring must hold every event");
    let ring = r.trace_handle().recent_events(usize::MAX);
    let mut ops_checked = 0;

    // Per-op totals: `.top`'s table aggregates `calls` and `total_ns`
    // per op; the same numbers must fall out of counting/summing the
    // meta image's event array filtered by op_code.
    for (code, op) in TRACE_OPS.iter().enumerate() {
        let Some(stats) = trace.ops.iter().find(|o| o.op == *op) else {
            continue;
        };
        if stats.calls == 0 {
            continue;
        }
        let count = scalar(
            &mut r,
            &format!("#/(events[..nevents].(if (op_code == {code}) seq))"),
        );
        let ns = scalar(
            &mut r,
            &format!("+/(events[..nevents].(if (op_code == {code}) lat_ns))"),
        );
        if count != stats.calls || ns != stats.total_ns {
            eprintln!(
                "FAIL: op `{}` meta-query ({count} calls, {ns} ns) != trace stats \
                 ({} calls, {} ns)",
                op.name(),
                stats.calls,
                stats.total_ns
            );
            *failed = true;
        }
        ops_checked += 1;
    }
    if ops_checked == 0 {
        eprintln!("FAIL: workload generated no per-op stats to compare");
        *failed = true;
    }

    // `.trace dump` equivalence: the event list the fixed view renders
    // is exactly the meta image's event array — same seq, same latency,
    // in the same order.
    let seqs = column(&mut r, "events[..nevents].seq");
    let lats = column(&mut r, "events[..nevents].lat_ns");
    let ring_seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
    let ring_lats: Vec<u64> = ring.iter().map(|e| e.nanos).collect();
    if seqs != ring_seqs || lats != ring_lats {
        eprintln!(
            "FAIL: meta event array diverges from the ring ({} vs {} events)",
            seqs.len(),
            ring_seqs.len()
        );
        *failed = true;
    }

    // Counter table: the registry snapshot `.top` renders from.
    let values = column(&mut r, "counters[..ncounters].value");
    let expected: Vec<u64> = r
        .meta_snapshot()
        .metrics
        .counters
        .iter()
        .map(|(_, v)| *v)
        .collect();
    if values != expected {
        eprintln!("FAIL: meta counter values diverge from the registry snapshot");
        *failed = true;
    }

    // Span aggregation inputs: count and total exclusive time.
    let snap = r.meta_snapshot();
    let n = scalar(&mut r, "#/(spans[..nspans].id)") as usize;
    let self_sum = scalar(&mut r, "+/(spans[..nspans].self_ns)");
    let agg_sum: u64 = snap.spans.aggregate().iter().map(|a| a.self_ns).sum();
    if n != snap.spans.spans.len() + snap.spans.open.len() || self_sum != agg_sum {
        eprintln!("FAIL: span aggregates diverge (count {n}, self {self_sum} vs agg {agg_sum})");
        *failed = true;
    }

    (ops_checked, ring.len())
}

/// Promise 2: snapshot + meta image + aggregate query over a full
/// 4096-span ring, timed. Returns the per-round minimum.
fn time_ring_query(failed: &mut bool) -> Duration {
    let ctx = SpanContext::new(RING_SPANS * 2);
    ctx.set_enabled(true);
    ctx.begin_trace();
    const NAMES: [&str; 4] = ["index", "fill", "ifcmp", "display"];
    for i in 0..RING_SPANS {
        ctx.record_closed(
            SpanKind::Node,
            NAMES[i % NAMES.len()],
            || "x[i]".into(),
            i as u64 * 100,
            50 + (i as u64 % 97),
        );
    }
    let opts = Repl::default_options();
    let mut best = Duration::MAX;
    let mut checked = false;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let snap = MetaSnapshot {
            spans: ctx.snapshot(),
            ..MetaSnapshot::default()
        };
        let mut meta = MetaTarget::new(&snap);
        let (count, err1) = oneshot_lines(&mut meta, "#/(spans[..nspans].id)", &opts);
        let (total, err2) = oneshot_lines(&mut meta, "+/(spans[..nspans].dur_ns)", &opts);
        best = best.min(start.elapsed());
        if !checked {
            checked = true;
            assert!(err1.is_none() && err2.is_none(), "{err1:?} {err2:?}");
            let n: usize = count[0].trim().parse().expect("span count");
            if n != RING_SPANS {
                eprintln!("FAIL: ring query saw {n} spans, expected {RING_SPANS}");
                *failed = true;
            }
            let sum: u64 = total[0].trim().parse().expect("dur sum");
            let expected: u64 = (0..RING_SPANS as u64).map(|i| 50 + (i % 97)).sum();
            if sum != expected {
                eprintln!("FAIL: ring query summed {sum}, expected {expected}");
                *failed = true;
            }
        }
    }
    if best.as_secs_f64() * 1000.0 >= MAX_QUERY_MS {
        eprintln!(
            "FAIL: snapshot+query of a {RING_SPANS}-span ring took {best:?} \
             (ceiling {MAX_QUERY_MS} ms)"
        );
        *failed = true;
    }
    best
}

/// Promise 3: meta-queries are invisible to the debuggee and to the
/// telemetry they read.
fn check_isolation(failed: &mut bool) -> (u64, bool) {
    let mut r = Repl::new();
    run(&mut r, ".trace on");
    let expr = "x[1..4,8,12..50] >? 5 <? 10";
    let before_out = run(&mut r, expr);
    let wire_before = r.trace_handle().snapshot().total_calls();
    let counters_before = r.metrics().snapshot().counters;

    for q in [
        "counters[..ncounters].value",
        "events[..nevents].lat_ns >? 0",
        "+/(events[..nevents].lat_ns)",
        "cache.page_hits",
        "breaker.state",
    ] {
        run(&mut r, &format!(".query {q}"));
    }

    let wire_after = r.trace_handle().snapshot().total_calls();
    let counters_after = r.metrics().snapshot().counters;
    let clean = wire_after == wire_before && counters_after == counters_before;
    if !clean {
        eprintln!("FAIL: meta-queries touched the tower (wire {wire_before} -> {wire_after})");
        *failed = true;
    }
    let after_out = run(&mut r, expr);
    if after_out != before_out {
        eprintln!(
            "FAIL: debuggee output changed across meta-queries:\n{before_out}\nvs\n{after_out}"
        );
        *failed = true;
    }
    (wire_after - wire_before, clean)
}

fn main() {
    let mut failed = false;
    let (ops_checked, ring_events) = check_agreement(&mut failed);
    let ring_best = time_ring_query(&mut failed);
    let (wire_delta, isolated) = check_isolation(&mut failed);

    println!(
        "agreement: {ops_checked} ops byte-identical over {ring_events} ring events; \
         4096-span snapshot+query min {ring_best:?}; isolation: wire delta {wire_delta}, \
         clean {isolated}"
    );

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"name\": \"e16_meta\",\n  \"config\": {{\n    \
         \"rounds\": {ROUNDS},\n    \"ring_spans\": {RING_SPANS},\n    \
         \"max_query_ms\": {MAX_QUERY_MS}\n  }},\n  \"metrics\": {{\n  \"workloads\": [\n    \
         {{\n      \"name\": \"agreement\",\n      \"ops_checked\": {ops_checked},\n      \
         \"ring_events\": {ring_events},\n      \"identical\": {}\n    }},\n    \
         {{\n      \"name\": \"ring_query\",\n      \"spans\": {RING_SPANS},\n      \
         \"best_us\": {}\n    }},\n    \
         {{\n      \"name\": \"isolation\",\n      \"wire_delta\": {wire_delta},\n      \
         \"clean\": {isolated}\n    }}\n  ]\n  }}\n}}\n",
        !failed,
        ring_best.as_micros()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_meta.json");
    std::fs::write(path, &json).expect("write BENCH_meta.json");
    println!("wrote {path}");
    if failed {
        std::process::exit(1);
    }
}
