//! E11 — the cost of the observability layer.
//!
//! The [`duel_target::TraceTarget`] decorator promises to be free when
//! disabled: its fast path is a single relaxed atomic load before
//! delegating. This bench measures that promise. Every E10 workload
//! runs through three towers over the same simulated debuggee:
//!
//! * `baseline`   — `CachedTarget<SimTarget>` (the PR-2 stack);
//! * `traced_off` — `TraceTarget<CachedTarget<SimTarget>>`, disabled;
//! * `traced_on`  — the same tower with recording enabled
//!   (informational: the price of actually collecting).
//!
//! Configurations are measured **interleaved** (baseline, off, on,
//! repeat) and the per-config minimum over all rounds is compared, so
//! one-off scheduler noise cannot charge a phantom overhead to either
//! side. The run asserts that the three towers render identical
//! output, that enabled tracing actually recorded calls, and that the
//! disabled-tracing overhead stays under 5%; it then writes
//! `BENCH_trace.json` (same schema as `BENCH_cache.json`:
//! `schema_version` / `name` / `config` / `metrics`) at the repository
//! root. Run with `cargo bench --bench e11_trace`.

use std::time::{Duration, Instant};

use duel_bench::try_eval_lines;
use duel_core::EvalOptions;
use duel_target::{CacheConfig, CachedTarget, SimTarget, Target, TraceTarget};

/// Evaluations per timed measurement (amortizes tower construction).
const REPS: usize = 8;
/// Interleaved measurement rounds; the minimum per config is reported.
const ROUNDS: usize = 25;
/// The 5% acceptance ceiling for disabled-tracing overhead.
const MAX_OVERHEAD_PCT: f64 = 5.0;

struct Workload {
    name: &'static str,
    expr: &'static str,
    scenario: fn() -> SimTarget,
}

fn scan_scenario() -> SimTarget {
    duel_target::scenario::bench_array(256, 42)
}

fn list_scenario() -> SimTarget {
    duel_target::scenario::bench_list(128, 7)
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "array_scan",
        expr: "x[..256] >? 5 <? 10",
        scenario: scan_scenario,
    },
    Workload {
        name: "list_walk",
        expr: "head-->next->value",
        scenario: list_scenario,
    },
    Workload {
        name: "hash_walk",
        expr: "#/(hash[..1024]-->next)",
        scenario: duel_target::scenario::hash_table_basic,
    },
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Config {
    Baseline,
    TracedOff,
    TracedOn,
}

/// One timed measurement: build the tower fresh (cold cache for every
/// config alike), evaluate the expression `REPS` times, return the
/// wall time, the rendered output of the last rep, and how many target
/// calls the trace recorded.
fn measure(w: &Workload, config: Config) -> (Duration, Vec<String>, u64) {
    let cached = CachedTarget::with_config((w.scenario)(), CacheConfig::default());
    let opts = EvalOptions::default();
    let run_reps = |t: &mut dyn Target| -> Vec<String> {
        let mut lines = Vec::new();
        for _ in 0..REPS {
            lines = match try_eval_lines(t, w.expr, &opts) {
                Ok(lines) => lines,
                Err(e) => {
                    eprintln!("workload `{}` failed: {e}", w.name);
                    Vec::new()
                }
            };
        }
        lines
    };
    match config {
        Config::Baseline => {
            let mut t = cached;
            let start = Instant::now();
            let lines = run_reps(&mut t);
            (start.elapsed(), lines, 0)
        }
        Config::TracedOff | Config::TracedOn => {
            let mut t = TraceTarget::with_label(cached, "session");
            t.handle().set_enabled(config == Config::TracedOn);
            let start = Instant::now();
            let lines = run_reps(&mut t);
            let wall = start.elapsed();
            let calls = t.handle().snapshot().total_calls();
            (wall, lines, calls)
        }
    }
}

struct Row {
    name: &'static str,
    expr: &'static str,
    baseline_us: u128,
    traced_off_us: u128,
    traced_on_us: u128,
    overhead_pct: f64,
    calls_recorded: u64,
    identical: bool,
}

fn main() {
    let mut rows = Vec::new();
    let mut failed = false;
    for w in WORKLOADS {
        let mut best = [Duration::MAX; 3];
        let mut outputs: [Vec<String>; 3] = Default::default();
        let mut calls_recorded = 0;
        for _ in 0..ROUNDS {
            for (i, config) in [Config::Baseline, Config::TracedOff, Config::TracedOn]
                .into_iter()
                .enumerate()
            {
                let (wall, lines, calls) = measure(w, config);
                best[i] = best[i].min(wall);
                outputs[i] = lines;
                calls_recorded = calls_recorded.max(calls);
            }
        }
        let identical =
            outputs[0] == outputs[1] && outputs[1] == outputs[2] && !outputs[0].is_empty();
        let overhead_pct =
            100.0 * (best[1].as_secs_f64() - best[0].as_secs_f64()) / best[0].as_secs_f64();
        println!(
            "{:<11} baseline {:>9.2?}  traced-off {:>9.2?} ({overhead_pct:>+5.1}%)  \
             traced-on {:>9.2?}  {calls_recorded:>6} calls recorded, identical output: {identical}",
            w.name, best[0], best[1], best[2],
        );
        if !identical {
            eprintln!("FAIL: `{}` output differs across towers", w.name);
            failed = true;
        }
        if calls_recorded == 0 {
            eprintln!("FAIL: `{}` enabled tracing recorded nothing", w.name);
            failed = true;
        }
        if overhead_pct >= MAX_OVERHEAD_PCT {
            eprintln!(
                "FAIL: `{}` disabled-tracing overhead {overhead_pct:.1}% exceeds the \
                 {MAX_OVERHEAD_PCT}% ceiling",
                w.name
            );
            failed = true;
        }
        rows.push(Row {
            name: w.name,
            expr: w.expr,
            baseline_us: best[0].as_micros(),
            traced_off_us: best[1].as_micros(),
            traced_on_us: best[2].as_micros(),
            overhead_pct,
            calls_recorded,
            identical,
        });
    }
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"name\": \"{}\",\n      \"expr\": {},\n      \
                 \"baseline_us\": {},\n      \"traced_off_us\": {},\n      \
                 \"traced_on_us\": {},\n      \"overhead_pct\": {:.2},\n      \
                 \"calls_recorded\": {},\n      \"identical_output\": {}\n    }}",
                r.name,
                json_str(r.expr),
                r.baseline_us,
                r.traced_off_us,
                r.traced_on_us,
                r.overhead_pct,
                r.calls_recorded,
                r.identical,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"name\": \"e11_trace\",\n  \"config\": {{\n    \
         \"reps\": {REPS},\n    \"rounds\": {ROUNDS},\n    \"max_overhead_pct\": \
         {MAX_OVERHEAD_PCT}\n  }},\n  \"metrics\": {{\n  \"workloads\": [\n{}\n  ]\n  }}\n}}\n",
        row_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(path, &json).expect("write BENCH_trace.json");
    println!("wrote {path}");
    if failed {
        std::process::exit(1);
    }
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}
