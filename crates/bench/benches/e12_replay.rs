//! E12 — flight-recorder fidelity and replay cost.
//!
//! Each workload (the E2 scan plus the E10 traversal set) runs once
//! *live* through the production tower with the recorder armed below
//! the cache (`CachedTarget<RecordTarget<SimTarget>>`), producing a
//! finalized JSONL capture. The same expression is then evaluated over
//! a **strict** [`duel_target::ReplayTarget`] built from that capture,
//! behind an identically configured cold cache, with no live debuggee
//! anywhere in the process.
//!
//! The run asserts, per workload, that (a) the replayed output is
//! byte-identical to the live output, (b) replay finished with zero
//! divergence, and (c) every recorded event was consumed — i.e. the
//! capture is exactly sufficient, neither hollow nor padded. It then
//! reports min-of-rounds wall time for live vs replayed evaluation and
//! writes everything to `BENCH_replay.json` at the repository root in
//! the standard schema_version/name/config/metrics envelope.
//!
//! Not a criterion bench on purpose: the quantities of interest are
//! the fidelity booleans and the capture geometry (events, bytes),
//! which criterion cannot report. Run with `cargo bench --bench
//! e12_replay`.

use std::time::{Duration, Instant};

use duel_bench::try_eval_lines;
use duel_core::EvalOptions;
use duel_target::{
    CacheConfig, CachedTarget, Capture, RecordTarget, ReplayMode, ReplayTarget, SharedSink,
    SimTarget,
};

const ROUNDS: u32 = 5;

struct Workload {
    name: &'static str,
    expr: &'static str,
    scenario: fn() -> SimTarget,
}

fn scan_scenario() -> SimTarget {
    duel_target::scenario::bench_array(256, 42)
}

fn list_scenario() -> SimTarget {
    duel_target::scenario::bench_list(128, 7)
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "e2_scan",
        expr: "x[..256] >? 0",
        scenario: scan_scenario,
    },
    Workload {
        name: "array_scan",
        expr: "x[..256] >? 5 <? 10",
        scenario: scan_scenario,
    },
    Workload {
        name: "list_walk",
        expr: "head-->next->value",
        scenario: list_scenario,
    },
    Workload {
        name: "hash_walk",
        expr: "#/(hash[..1024]-->next)",
        scenario: duel_target::scenario::hash_table_basic,
    },
];

struct Outcome {
    live_lines: Vec<String>,
    replay_lines: Vec<String>,
    events: usize,
    events_consumed: usize,
    capture_bytes: usize,
    divergence: Option<String>,
    live_ns: u128,
    replay_ns: u128,
}

/// Records one live evaluation of the workload through the production
/// tower shape and returns (rendered lines, finalized capture text).
fn record(w: &Workload) -> (Vec<String>, String) {
    let sink = SharedSink::default();
    let mut rec = RecordTarget::new((w.scenario)());
    rec.start(Box::new(sink.clone()), "sim", w.name)
        .expect("arm recorder");
    let mut t = CachedTarget::with_config(rec, CacheConfig::default());
    let opts = EvalOptions::default();
    let lines = try_eval_lines(&mut t, w.expr, &opts).expect("live eval");
    t.inner_mut().stop().expect("finalize capture");
    (lines, sink.contents())
}

fn run(w: &Workload) -> Outcome {
    let (live_lines, text) = record(w);
    let cap = Capture::parse(&text).expect("parse capture");
    let opts = EvalOptions::default();

    // Fidelity pass: one strict replay through an identically
    // configured cold cache, checked for divergence and exhaustion.
    let mut t = CachedTarget::with_config(
        ReplayTarget::from_capture(cap.clone(), ReplayMode::Strict),
        CacheConfig::default(),
    );
    let replay_lines = try_eval_lines(&mut t, w.expr, &opts).unwrap_or_default();
    let r = t.inner();
    let events_consumed = r.events_consumed();
    let divergence = r.divergence().map(|d| d.render());

    // Timing passes: min-of-rounds for the live path (no recorder, so
    // the comparison isolates replay cost, not capture cost) vs the
    // replayed path.
    let mut live_ns = u128::MAX;
    for _ in 0..ROUNDS {
        let mut t = CachedTarget::with_config((w.scenario)(), CacheConfig::default());
        let start = Instant::now();
        let _ = try_eval_lines(&mut t, w.expr, &opts);
        live_ns = live_ns.min(start.elapsed().as_nanos());
    }
    let mut replay_ns = u128::MAX;
    for _ in 0..ROUNDS {
        let mut t = CachedTarget::with_config(
            ReplayTarget::from_capture(cap.clone(), ReplayMode::Strict),
            CacheConfig::default(),
        );
        let start = Instant::now();
        let _ = try_eval_lines(&mut t, w.expr, &opts);
        replay_ns = replay_ns.min(start.elapsed().as_nanos());
    }

    Outcome {
        live_lines,
        replay_lines,
        events: cap.events.len(),
        events_consumed,
        capture_bytes: text.len(),
        divergence,
        live_ns,
        replay_ns,
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut failed = false;
    for w in WORKLOADS {
        let o = run(w);
        let identical = o.live_lines == o.replay_lines && !o.live_lines.is_empty();
        let consumed_all = o.events_consumed == o.events;
        println!(
            "{:<11} {:>5} events {:>8} bytes, live {:>9.2?} vs replay {:>9.2?}, \
             identical: {identical}, consumed {}/{}",
            w.name,
            o.events,
            o.capture_bytes,
            Duration::from_nanos(o.live_ns as u64),
            Duration::from_nanos(o.replay_ns as u64),
            o.events_consumed,
            o.events,
        );
        if !identical {
            eprintln!(
                "FAIL: `{}` replayed output differs from live output",
                w.name
            );
            failed = true;
        }
        if let Some(d) = &o.divergence {
            eprintln!("FAIL: `{}` strict replay diverged: {d}", w.name);
            failed = true;
        }
        if !consumed_all {
            eprintln!(
                "FAIL: `{}` replay consumed {}/{} recorded events",
                w.name, o.events_consumed, o.events
            );
            failed = true;
        }
        rows.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"expr\": {},\n      \"values\": {},\n      \
             \"capture_events\": {},\n      \"capture_bytes\": {},\n      \
             \"events_consumed\": {},\n      \"live_ns\": {},\n      \"replay_ns\": {},\n      \
             \"identical_output\": {},\n      \"diverged\": {}\n    }}",
            w.name,
            json_str(w.expr),
            o.live_lines.len(),
            o.events,
            o.capture_bytes,
            o.events_consumed,
            o.live_ns,
            o.replay_ns,
            identical,
            o.divergence.is_some(),
        ));
    }
    // Standard bench-report schema shared by every BENCH_*.json:
    // schema_version / name / config / metrics.
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"name\": \"e12_replay\",\n  \"config\": {{\n    \
         \"rounds\": {ROUNDS},\n    \"mode\": \"strict\",\n    \"capture_schema_version\": {}\n  \
         }},\n  \"metrics\": {{\n  \"workloads\": [\n{}\n  ]\n  }}\n}}\n",
        duel_target::capture::CAPTURE_SCHEMA_VERSION,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json");
    std::fs::write(path, &json).expect("write BENCH_replay.json");
    println!("wrote {path}");
    if failed {
        std::process::exit(1);
    }
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}
