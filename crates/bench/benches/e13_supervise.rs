//! E13 — the cost of backend supervision, and how fast it recovers.
//!
//! Two questions about [`duel_target::SupervisedTarget`]:
//!
//! 1. **Closed-circuit overhead.** When the backend is healthy the
//!    supervisor is a counter bump and an enum compare per operation.
//!    Every workload runs through two towers over the same simulated
//!    debuggee — `Retry<Cached<Sim>>` (the pre-supervision stack) and
//!    `Supervised<Retry<Cached<Sim>>>` — measured **interleaved** with
//!    the per-config minimum over all rounds compared, so scheduler
//!    noise cannot charge a phantom overhead to either side. The run
//!    asserts identical output and overhead under 3%.
//!
//! 2. **MTTR.** A chaos gate kills the wire mid-session; the run
//!    drives evaluations until the breaker trips (circuit `open`),
//!    revives the gate, and times how long the supervisor takes to
//!    reconnect, resync, and produce output byte-identical to the
//!    pre-kill run. Recovery goes through the half-open probe path, so
//!    `reconnects >= 1` in the stats is evidence the full
//!    open → half-open → closed transition ran.
//!
//! Writes `BENCH_supervise.json` (`schema_version` / `name` /
//! `config` / `metrics`, like every other bench report) at the
//! repository root and exits non-zero on any failed assertion. Run
//! with `cargo bench --bench e13_supervise`.

use std::time::{Duration, Instant};

use duel_bench::try_eval_lines;
use duel_core::EvalOptions;
use duel_target::{
    CacheConfig, CachedTarget, ChaosTarget, CircuitState, RetryPolicy, RetryTarget, SimTarget,
    SupervisedTarget, SupervisorConfig, Target,
};

/// Evaluations per timed measurement (amortizes tower construction).
const REPS: usize = 8;
/// Interleaved measurement rounds; the minimum per config is reported.
const ROUNDS: usize = 25;
/// The 3% acceptance ceiling for closed-circuit supervision overhead.
const MAX_OVERHEAD_PCT: f64 = 3.0;
/// Give up on the trip/recovery loops after this many evaluations.
const MAX_DRIVE_EVALS: usize = 32;

struct Workload {
    name: &'static str,
    expr: &'static str,
    scenario: fn() -> SimTarget,
}

fn scan_scenario() -> SimTarget {
    duel_target::scenario::bench_array(256, 42)
}

fn list_scenario() -> SimTarget {
    duel_target::scenario::bench_list(128, 7)
}

const WORKLOADS: &[Workload] = &[
    Workload {
        name: "array_scan",
        expr: "x[..256] >? 5 <? 10",
        scenario: scan_scenario,
    },
    Workload {
        name: "list_walk",
        expr: "head-->next->value",
        scenario: list_scenario,
    },
    Workload {
        name: "hash_walk",
        expr: "#/(hash[..1024]-->next)",
        scenario: duel_target::scenario::hash_table_basic,
    },
];

/// One timed measurement: build the tower fresh (cold cache for both
/// configs alike), evaluate the expression `REPS` times, return the
/// wall time and the rendered output of the last rep.
fn measure(w: &Workload, supervised: bool) -> (Duration, Vec<String>) {
    let retry = RetryTarget::new(CachedTarget::with_config(
        (w.scenario)(),
        CacheConfig::default(),
    ));
    let opts = EvalOptions::default();
    let run_reps = |t: &mut dyn Target| -> Vec<String> {
        let mut lines = Vec::new();
        for _ in 0..REPS {
            lines = match try_eval_lines(t, w.expr, &opts) {
                Ok(lines) => lines,
                Err(e) => {
                    eprintln!("workload `{}` failed: {e}", w.name);
                    Vec::new()
                }
            };
        }
        lines
    };
    if supervised {
        let mut t = SupervisedTarget::new(retry);
        let start = Instant::now();
        let lines = run_reps(&mut t);
        (start.elapsed(), lines)
    } else {
        let mut t = retry;
        let start = Instant::now();
        let lines = run_reps(&mut t);
        (start.elapsed(), lines)
    }
}

struct Row {
    name: &'static str,
    expr: &'static str,
    baseline_us: u128,
    supervised_us: u128,
    overhead_pct: f64,
    identical: bool,
}

struct Recovery {
    evals_to_trip: usize,
    time_to_trip_us: u128,
    mttr_us: u128,
    trips: u64,
    reconnects: u64,
    identical: bool,
    closed_again: bool,
}

/// The MTTR experiment: kill the wire, drive the breaker open, revive,
/// and time the road back to byte-identical output.
fn measure_recovery() -> Recovery {
    // No retry sleeps and a zero cooldown: the numbers then measure
    // the supervisor's own detection + resync path, not configured
    // waiting time.
    let policy = RetryPolicy {
        sleep: false,
        ..RetryPolicy::default()
    };
    let chaos = ChaosTarget::new(scan_scenario());
    let handle = chaos.handle();
    let mut cached = CachedTarget::with_config(chaos, CacheConfig::default());
    // Every read must touch the wire, or the cache would hide the
    // outage from the breaker.
    cached.set_enabled(false);
    let mut t = SupervisedTarget::with_config(
        RetryTarget::with_policy(cached, policy),
        SupervisorConfig::fast(3),
    );
    let opts = EvalOptions::default();
    let expr = WORKLOADS[0].expr;
    let clean = try_eval_lines(&mut t, expr, &opts).expect("healthy eval");

    handle.kill();
    let killed = Instant::now();
    let mut evals_to_trip = 0;
    while t.state() != CircuitState::Open && evals_to_trip < MAX_DRIVE_EVALS {
        let _ = try_eval_lines(&mut t, expr, &opts);
        evals_to_trip += 1;
    }
    let time_to_trip = killed.elapsed();

    handle.revive();
    let revived = Instant::now();
    let mut recovered = Vec::new();
    for _ in 0..MAX_DRIVE_EVALS {
        if let Ok(lines) = try_eval_lines(&mut t, expr, &opts) {
            if lines == clean {
                recovered = lines;
                break;
            }
        }
    }
    let mttr = revived.elapsed();
    let stats = t.stats();
    Recovery {
        evals_to_trip,
        time_to_trip_us: time_to_trip.as_micros(),
        mttr_us: mttr.as_micros(),
        trips: stats.trips,
        reconnects: stats.reconnects,
        identical: recovered == clean && !clean.is_empty(),
        closed_again: t.state() == CircuitState::Closed,
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut failed = false;
    for w in WORKLOADS {
        let mut best = [Duration::MAX; 2];
        let mut outputs: [Vec<String>; 2] = Default::default();
        for _ in 0..ROUNDS {
            for (i, supervised) in [false, true].into_iter().enumerate() {
                let (wall, lines) = measure(w, supervised);
                best[i] = best[i].min(wall);
                outputs[i] = lines;
            }
        }
        let identical = outputs[0] == outputs[1] && !outputs[0].is_empty();
        let overhead_pct =
            100.0 * (best[1].as_secs_f64() - best[0].as_secs_f64()) / best[0].as_secs_f64();
        println!(
            "{:<11} baseline {:>9.2?}  supervised {:>9.2?} ({overhead_pct:>+5.1}%)  \
             identical output: {identical}",
            w.name, best[0], best[1],
        );
        if !identical {
            eprintln!("FAIL: `{}` output differs under supervision", w.name);
            failed = true;
        }
        if overhead_pct >= MAX_OVERHEAD_PCT {
            eprintln!(
                "FAIL: `{}` closed-circuit overhead {overhead_pct:.1}% exceeds the \
                 {MAX_OVERHEAD_PCT}% ceiling",
                w.name
            );
            failed = true;
        }
        rows.push(Row {
            name: w.name,
            expr: w.expr,
            baseline_us: best[0].as_micros(),
            supervised_us: best[1].as_micros(),
            overhead_pct,
            identical,
        });
    }

    let rec = measure_recovery();
    println!(
        "recovery    tripped after {} evals ({} us), MTTR {} us, {} trip(s), \
         {} reconnect(s), identical output: {}, circuit closed: {}",
        rec.evals_to_trip,
        rec.time_to_trip_us,
        rec.mttr_us,
        rec.trips,
        rec.reconnects,
        rec.identical,
        rec.closed_again,
    );
    if rec.trips == 0 || rec.reconnects == 0 {
        eprintln!("FAIL: recovery run never tripped or never reconnected");
        failed = true;
    }
    if !rec.identical {
        eprintln!("FAIL: post-resync output is not byte-identical");
        failed = true;
    }
    if !rec.closed_again {
        eprintln!("FAIL: circuit did not return to closed after revival");
        failed = true;
    }

    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"name\": \"{}\",\n      \"expr\": {},\n      \
                 \"baseline_us\": {},\n      \"supervised_us\": {},\n      \
                 \"overhead_pct\": {:.2},\n      \"identical_output\": {}\n    }}",
                r.name,
                json_str(r.expr),
                r.baseline_us,
                r.supervised_us,
                r.overhead_pct,
                r.identical,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"name\": \"e13_supervise\",\n  \"config\": {{\n    \
         \"reps\": {REPS},\n    \"rounds\": {ROUNDS},\n    \"max_overhead_pct\": \
         {MAX_OVERHEAD_PCT}\n  }},\n  \"metrics\": {{\n  \"workloads\": [\n{}\n  ],\n  \
         \"recovery\": {{\n    \"evals_to_trip\": {},\n    \"time_to_trip_us\": {},\n    \
         \"mttr_us\": {},\n    \"trips\": {},\n    \"reconnects\": {},\n    \
         \"identical_output\": {},\n    \"circuit_closed\": {}\n  }}\n  }}\n}}\n",
        row_json.join(",\n"),
        rec.evals_to_trip,
        rec.time_to_trip_us,
        rec.mttr_us,
        rec.trips,
        rec.reconnects,
        rec.identical,
        rec.closed_again,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_supervise.json");
    std::fs::write(path, &json).expect("write BENCH_supervise.json");
    println!("wrote {path}");
    if failed {
        std::process::exit(1);
    }
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}
