//! E9 (performance facet) — the same DUEL queries through the three
//! backends. Correctness equivalence is proven in
//! `tests/backend_swap.rs`; this bench quantifies what each layer
//! costs: the in-process simulator, and the gdb/MI adapter where every
//! memory read is a serialized command + parsed reply (a real remote
//! debugger would add network latency on top).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use duel_bench::eval_count;
use duel_core::EvalOptions;
use duel_gdbmi::{MiTarget, MockGdb};
use duel_target::scenario;

const QUERIES: &[(&str, &str)] = &[
    ("scan", "x[..60] >? 100"),
    ("filter_eq", "x[1..4,8,12..50] ==? (6..9)"),
];

fn bench_backends(c: &mut Criterion) {
    let opts = EvalOptions::default();
    let mut group = c.benchmark_group("e9_backends");
    group.sample_size(20);
    for (name, q) in QUERIES {
        let mut sim = scenario::scan_array();
        group.bench_function(BenchmarkId::new("sim", name), |b| {
            b.iter(|| eval_count(&mut sim, q, &opts))
        });
        let mut mi = MiTarget::connect(MockGdb::new(scenario::scan_array())).expect("connect");
        group.bench_function(BenchmarkId::new("mi", name), |b| {
            b.iter(|| eval_count(&mut mi, q, &opts))
        });
    }
    // The hash-table walk is read-heavy: the worst case for a
    // per-read wire protocol.
    let mut sim = scenario::hash_table_basic();
    group.bench_function(BenchmarkId::new("sim", "dfs_walk"), |b| {
        b.iter(|| eval_count(&mut sim, "#/(hash[..1024]-->next)", &opts))
    });
    let mut mi = MiTarget::connect(MockGdb::new(scenario::hash_table_basic())).expect("connect");
    group.bench_function(BenchmarkId::new("mi", "dfs_walk"), |b| {
        b.iter(|| eval_count(&mut mi, "#/(hash[..1024]-->next)", &opts))
    });
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
