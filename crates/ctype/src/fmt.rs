//! Rendering types in C syntax.
//!
//! Uses the classic inside-out declarator algorithm so that types like
//! `char *[1024]` (array of pointers) and `int (*)[10]` (pointer to
//! array) print correctly.

use std::fmt::Write as _;

use crate::table::{TypeId, TypeKind, TypeTable};

impl TypeTable {
    /// Renders `ty` in C syntax, e.g. `"struct symbol *"`.
    pub fn display(&self, ty: TypeId) -> String {
        self.display_declarator(ty, "")
    }

    /// Renders a full declaration of `name` with type `ty`, e.g.
    /// `display_declarator(ty, "hash")` → `"struct symbol *hash[1024]"`.
    pub fn display_declarator(&self, ty: TypeId, name: &str) -> String {
        let mut decl = name.to_string();
        let mut cur = ty;
        // `prev_suffix` tracks whether the declarator currently ends with
        // an array/function suffix, which forces parentheses around a
        // pointer layer.
        let mut prev_suffix = false;
        loop {
            match self.kind(cur) {
                TypeKind::Pointer(inner) => {
                    decl = format!("*{decl}");
                    prev_suffix = false;
                    cur = *inner;
                }
                TypeKind::Array { elem, len } => {
                    if !prev_suffix && decl.starts_with('*') {
                        decl = format!("({decl})");
                    }
                    match len {
                        Some(n) => {
                            let _ = write!(decl, "[{n}]");
                        }
                        None => decl.push_str("[]"),
                    }
                    prev_suffix = true;
                    cur = *elem;
                }
                TypeKind::Function {
                    ret,
                    params,
                    varargs,
                } => {
                    if !prev_suffix && decl.starts_with('*') {
                        decl = format!("({decl})");
                    }
                    let mut ps: Vec<String> = params.iter().map(|p| self.display(*p)).collect();
                    if *varargs {
                        ps.push("...".into());
                    }
                    if ps.is_empty() {
                        ps.push("void".into());
                    }
                    let _ = write!(decl, "({})", ps.join(", "));
                    prev_suffix = true;
                    cur = *ret;
                }
                base => {
                    let base_name = self.base_name(base);
                    return if decl.is_empty() {
                        base_name
                    } else {
                        format!("{base_name} {decl}")
                    };
                }
            }
        }
    }

    fn base_name(&self, kind: &TypeKind) -> String {
        match kind {
            TypeKind::Void => "void".into(),
            TypeKind::Prim(p) => p.c_name().into(),
            TypeKind::Struct(rid) => {
                let r = self.record(*rid);
                match &r.name {
                    Some(n) => format!("struct {n}"),
                    None => "struct <anon>".into(),
                }
            }
            TypeKind::Union(rid) => {
                let r = self.record(*rid);
                match &r.name {
                    Some(n) => format!("union {n}"),
                    None => "union <anon>".into(),
                }
            }
            TypeKind::Enum(eid) => {
                let e = self.enum_def(*eid);
                match &e.name {
                    Some(n) => format!("enum {n}"),
                    None => "enum <anon>".into(),
                }
            }
            _ => unreachable!("base_name called with derived type"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Prim, TypeTable};

    #[test]
    fn simple_types() {
        let mut tt = TypeTable::new();
        let int = tt.prim(Prim::Int);
        assert_eq!(tt.display(int), "int");
        let v = tt.void();
        assert_eq!(tt.display(v), "void");
    }

    #[test]
    fn pointers_and_arrays() {
        let mut tt = TypeTable::new();
        let c = tt.prim(Prim::Char);
        let pc = tt.pointer(c);
        assert_eq!(tt.display(pc), "char *");
        let apc = tt.array(pc, Some(1024));
        assert_eq!(tt.display(apc), "char *[1024]");
        let i = tt.prim(Prim::Int);
        let ai = tt.array(i, Some(10));
        let pai = tt.pointer(ai);
        assert_eq!(tt.display(pai), "int (*)[10]");
    }

    #[test]
    fn named_declarators() {
        let mut tt = TypeTable::new();
        let c = tt.prim(Prim::Char);
        let (_, sty) = tt.declare_struct("symbol");
        let ps = tt.pointer(sty);
        let a = tt.array(ps, Some(1024));
        assert_eq!(
            tt.display_declarator(a, "hash"),
            "struct symbol *hash[1024]"
        );
        let pc = tt.pointer(c);
        let ppc = tt.pointer(pc);
        assert_eq!(tt.display_declarator(ppc, "argv"), "char **argv");
    }

    #[test]
    fn function_types() {
        let mut tt = TypeTable::new();
        let i = tt.prim(Prim::Int);
        let c = tt.prim(Prim::Char);
        let pc = tt.pointer(c);
        let f = tt.function(i, vec![pc], true);
        assert_eq!(
            tt.display_declarator(f, "printf"),
            "int printf(char *, ...)"
        );
        let pf = tt.pointer(f);
        assert_eq!(tt.display(pf), "int (*)(char *, ...)");
        let f0 = tt.function(i, vec![], false);
        assert_eq!(tt.display_declarator(f0, "f"), "int f(void)");
    }

    #[test]
    fn incomplete_array() {
        let mut tt = TypeTable::new();
        let i = tt.prim(Prim::Int);
        let a = tt.array(i, None);
        assert_eq!(tt.display(a), "int []");
    }
}
