//! Errors reported by the type system.

use std::fmt;

/// The result type used throughout this crate.
pub type TypeResult<T> = Result<T, TypeError>;

/// An error arising from type construction or layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// `sizeof` was requested for an incomplete type (e.g. a forward-
    /// declared struct or an array of unknown length).
    Incomplete(String),
    /// `sizeof(void)` or layout of a function type.
    NoSize(String),
    /// A bitfield was wider than its declared storage type.
    BitfieldTooWide {
        /// The field name.
        field: String,
        /// The declared width in bits.
        width: u8,
        /// The storage type's width in bits.
        max: u8,
    },
    /// A bitfield was declared with a non-integer type.
    BitfieldNonInteger(String),
    /// A struct/union tag or typedef name was not found.
    Unknown(String),
    /// A field name was not found in a record.
    NoField {
        /// The record's rendered type name.
        record: String,
        /// The missing field.
        field: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Incomplete(t) => {
                write!(f, "incomplete type `{t}` has no layout")
            }
            TypeError::NoSize(t) => write!(f, "type `{t}` has no size"),
            TypeError::BitfieldTooWide { field, width, max } => write!(
                f,
                "bitfield `{field}`: width {width} exceeds storage width {max}"
            ),
            TypeError::BitfieldNonInteger(field) => {
                write!(f, "bitfield `{field}` has a non-integer type")
            }
            TypeError::Unknown(name) => write!(f, "unknown type `{name}`"),
            TypeError::NoField { record, field } => {
                write!(f, "`{record}` has no field named `{field}`")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TypeError::Incomplete("struct s".into());
        assert_eq!(e.to_string(), "incomplete type `struct s` has no layout");
        let e = TypeError::NoField {
            record: "struct s".into(),
            field: "x".into(),
        };
        assert_eq!(e.to_string(), "`struct s` has no field named `x`");
    }
}
