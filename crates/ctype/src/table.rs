//! The interning type arena.

use std::collections::HashMap;

use crate::{
    error::{TypeError, TypeResult},
    prim::Prim,
};

/// An index into a [`TypeTable`].
///
/// Type identity is structural for derived types (two `int *` requests
/// intern to the same id) and nominal for records and enums.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub(crate) u32);

/// An index identifying a struct or union definition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RecordId(pub(crate) u32);

/// An index identifying an enum definition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EnumId(pub(crate) u32);

impl TypeId {
    /// The raw arena index, for serialization (capture files). Only
    /// meaningful relative to the [`TypeTable`] that produced it.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from [`TypeId::raw`]. The caller is responsible
    /// for pairing it with the table (or [`TableSnapshot`]) it came
    /// from.
    pub fn from_raw(raw: u32) -> TypeId {
        TypeId(raw)
    }
}

impl RecordId {
    /// The raw arena index, for serialization.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from [`RecordId::raw`].
    pub fn from_raw(raw: u32) -> RecordId {
        RecordId(raw)
    }
}

impl EnumId {
    /// The raw arena index, for serialization.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from [`EnumId::raw`].
    pub fn from_raw(raw: u32) -> EnumId {
        EnumId(raw)
    }
}

/// The shape of a type.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// `void`.
    Void,
    /// A primitive arithmetic type.
    Prim(Prim),
    /// A pointer to another type.
    Pointer(TypeId),
    /// An array; `len == None` is an incomplete array (`T []`).
    Array {
        /// Element type.
        elem: TypeId,
        /// Element count, if known.
        len: Option<u64>,
    },
    /// A function type.
    Function {
        /// Return type.
        ret: TypeId,
        /// Parameter types.
        params: Vec<TypeId>,
        /// Whether the function is variadic (`...`).
        varargs: bool,
    },
    /// A struct, by definition id.
    Struct(RecordId),
    /// A union, by definition id.
    Union(RecordId),
    /// An enum, by definition id.
    Enum(EnumId),
}

/// A field of a struct or union.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field name; anonymous bitfield padding has an empty name.
    pub name: String,
    /// Declared type of the field.
    pub ty: TypeId,
    /// Bitfield width in bits, or `None` for an ordinary field.
    pub bits: Option<u8>,
}

impl Field {
    /// Creates an ordinary (non-bitfield) field.
    pub fn new(name: impl Into<String>, ty: TypeId) -> Field {
        Field {
            name: name.into(),
            ty,
            bits: None,
        }
    }

    /// Creates a bitfield member of `width` bits.
    pub fn bitfield(name: impl Into<String>, ty: TypeId, width: u8) -> Field {
        Field {
            name: name.into(),
            ty,
            bits: Some(width),
        }
    }
}

/// A struct or union definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Tag name, if any (`struct symbol` → `"symbol"`).
    pub name: Option<String>,
    /// Ordered member list.
    pub fields: Vec<Field>,
    /// `true` for unions.
    pub is_union: bool,
    /// `false` while only forward-declared.
    pub complete: bool,
}

impl Record {
    /// Finds a field by name, returning its index.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// An enum definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnumDef {
    /// Tag name, if any.
    pub name: Option<String>,
    /// `(name, value)` pairs in declaration order.
    pub enumerators: Vec<(String, i64)>,
}

/// The arena holding every type in a debugging session.
///
/// The paper notes that DUEL "contains its own type and value
/// representations"; the `TypeTable` is shared between the simulated
/// target, the mini-C compiler, and the DUEL evaluator so that a symbol's
/// type means the same thing everywhere.
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    kinds: Vec<TypeKind>,
    records: Vec<Record>,
    enums: Vec<EnumDef>,
    interned: HashMap<TypeKind, TypeId>,
    typedefs: HashMap<String, TypeId>,
    struct_tags: HashMap<String, RecordId>,
    union_tags: HashMap<String, RecordId>,
    enum_tags: HashMap<String, EnumId>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> TypeTable {
        TypeTable::default()
    }

    fn intern(&mut self, kind: TypeKind) -> TypeId {
        if let Some(&id) = self.interned.get(&kind) {
            return id;
        }
        let id = TypeId(self.kinds.len() as u32);
        self.kinds.push(kind.clone());
        self.interned.insert(kind, id);
        id
    }

    /// Returns the id for `void`.
    pub fn void(&mut self) -> TypeId {
        self.intern(TypeKind::Void)
    }

    /// Returns the id for a primitive type.
    pub fn prim(&mut self, p: Prim) -> TypeId {
        self.intern(TypeKind::Prim(p))
    }

    /// Returns the id for a pointer to `to`.
    pub fn pointer(&mut self, to: TypeId) -> TypeId {
        self.intern(TypeKind::Pointer(to))
    }

    /// Returns the id for an array of `elem` with optional length.
    pub fn array(&mut self, elem: TypeId, len: Option<u64>) -> TypeId {
        self.intern(TypeKind::Array { elem, len })
    }

    /// Returns the id for a function type.
    pub fn function(&mut self, ret: TypeId, params: Vec<TypeId>, varargs: bool) -> TypeId {
        self.intern(TypeKind::Function {
            ret,
            params,
            varargs,
        })
    }

    /// Declares (or finds) a struct tag, initially incomplete.
    pub fn declare_struct(&mut self, tag: &str) -> (RecordId, TypeId) {
        if let Some(&rid) = self.struct_tags.get(tag) {
            return (rid, self.intern(TypeKind::Struct(rid)));
        }
        let rid = RecordId(self.records.len() as u32);
        self.records.push(Record {
            name: Some(tag.to_string()),
            fields: Vec::new(),
            is_union: false,
            complete: false,
        });
        self.struct_tags.insert(tag.to_string(), rid);
        (rid, self.intern(TypeKind::Struct(rid)))
    }

    /// Declares (or finds) a union tag, initially incomplete.
    pub fn declare_union(&mut self, tag: &str) -> (RecordId, TypeId) {
        if let Some(&rid) = self.union_tags.get(tag) {
            return (rid, self.intern(TypeKind::Union(rid)));
        }
        let rid = RecordId(self.records.len() as u32);
        self.records.push(Record {
            name: Some(tag.to_string()),
            fields: Vec::new(),
            is_union: true,
            complete: false,
        });
        self.union_tags.insert(tag.to_string(), rid);
        (rid, self.intern(TypeKind::Union(rid)))
    }

    /// Creates an anonymous record; `is_union` selects struct vs union.
    pub fn anonymous_record(&mut self, is_union: bool) -> (RecordId, TypeId) {
        let rid = RecordId(self.records.len() as u32);
        self.records.push(Record {
            name: None,
            fields: Vec::new(),
            is_union,
            complete: false,
        });
        let kind = if is_union {
            TypeKind::Union(rid)
        } else {
            TypeKind::Struct(rid)
        };
        let id = TypeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        (rid, id)
    }

    /// Declares a struct tag and completes it with `fields` in one
    /// step — the programmatic-construction path used by synthetic
    /// targets that build their whole table in code rather than from
    /// parsed declarations.
    pub fn struct_type(&mut self, tag: &str, fields: Vec<Field>) -> (RecordId, TypeId) {
        let (rid, ty) = self.declare_struct(tag);
        self.define_record(rid, fields);
        (rid, ty)
    }

    /// Completes a record with its field list.
    pub fn define_record(&mut self, rid: RecordId, fields: Vec<Field>) {
        let r = &mut self.records[rid.0 as usize];
        r.fields = fields;
        r.complete = true;
    }

    /// Defines (or finds) an enum tag with the given enumerators.
    pub fn define_enum(
        &mut self,
        tag: Option<&str>,
        enumerators: Vec<(String, i64)>,
    ) -> (EnumId, TypeId) {
        if let Some(tag) = tag {
            if let Some(&eid) = self.enum_tags.get(tag) {
                self.enums[eid.0 as usize].enumerators = enumerators;
                return (eid, self.intern(TypeKind::Enum(eid)));
            }
        }
        let eid = EnumId(self.enums.len() as u32);
        self.enums.push(EnumDef {
            name: tag.map(|s| s.to_string()),
            enumerators,
        });
        if let Some(tag) = tag {
            self.enum_tags.insert(tag.to_string(), eid);
        }
        (eid, self.intern(TypeKind::Enum(eid)))
    }

    /// Registers `name` as a typedef for `ty`.
    pub fn define_typedef(&mut self, name: &str, ty: TypeId) {
        self.typedefs.insert(name.to_string(), ty);
    }

    /// Resolves a typedef name.
    pub fn typedef(&self, name: &str) -> Option<TypeId> {
        self.typedefs.get(name).copied()
    }

    /// Resolves a struct tag to its record id.
    pub fn struct_tag(&self, tag: &str) -> Option<RecordId> {
        self.struct_tags.get(tag).copied()
    }

    /// Resolves a union tag to its record id.
    pub fn union_tag(&self, tag: &str) -> Option<RecordId> {
        self.union_tags.get(tag).copied()
    }

    /// Resolves an enum tag.
    pub fn enum_tag(&self, tag: &str) -> Option<EnumId> {
        self.enum_tags.get(tag).copied()
    }

    /// Looks up an enumerator constant by name across all enums.
    pub fn enumerator(&self, name: &str) -> Option<(EnumId, i64)> {
        for (i, e) in self.enums.iter().enumerate() {
            for (n, v) in &e.enumerators {
                if n == name {
                    return Some((EnumId(i as u32), *v));
                }
            }
        }
        None
    }

    /// Returns the kind of a type id.
    pub fn kind(&self, id: TypeId) -> &TypeKind {
        &self.kinds[id.0 as usize]
    }

    /// Returns a record definition.
    pub fn record(&self, rid: RecordId) -> &Record {
        &self.records[rid.0 as usize]
    }

    /// Returns an enum definition.
    pub fn enum_def(&self, eid: EnumId) -> &EnumDef {
        &self.enums[eid.0 as usize]
    }

    /// Peels typedefs — in this table typedefs resolve at creation, so
    /// this simply returns `id`; it exists for interface symmetry.
    pub fn canonical(&self, id: TypeId) -> TypeId {
        id
    }

    /// Returns the pointee of a pointer type, if `id` is a pointer.
    pub fn pointee(&self, id: TypeId) -> Option<TypeId> {
        match self.kind(id) {
            TypeKind::Pointer(p) => Some(*p),
            _ => None,
        }
    }

    /// Returns the element type of an array, if `id` is an array.
    pub fn element(&self, id: TypeId) -> Option<TypeId> {
        match self.kind(id) {
            TypeKind::Array { elem, .. } => Some(*elem),
            _ => None,
        }
    }

    /// Returns the record id if `id` is a struct or union.
    pub fn as_record(&self, id: TypeId) -> Option<(RecordId, bool)> {
        match self.kind(id) {
            TypeKind::Struct(r) => Some((*r, false)),
            TypeKind::Union(r) => Some((*r, true)),
            _ => None,
        }
    }

    /// Returns `true` if `id` is an integer type (including enums).
    pub fn is_integer(&self, id: TypeId) -> bool {
        match self.kind(id) {
            TypeKind::Prim(p) => p.is_integer(),
            TypeKind::Enum(_) => true,
            _ => false,
        }
    }

    /// Returns `true` if `id` is an arithmetic (integer or float) type.
    pub fn is_arithmetic(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Prim(_) | TypeKind::Enum(_))
    }

    /// Returns `true` if `id` is a pointer type.
    pub fn is_pointer(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Pointer(_))
    }

    /// Returns `true` if `id` is an array type.
    pub fn is_array(&self, id: TypeId) -> bool {
        matches!(self.kind(id), TypeKind::Array { .. })
    }

    /// Returns `true` if `id` is a scalar (arithmetic or pointer).
    pub fn is_scalar(&self, id: TypeId) -> bool {
        self.is_arithmetic(id) || self.is_pointer(id)
    }

    /// Finds a field in a record type, resolving the record.
    pub fn find_field(&self, id: TypeId, name: &str) -> TypeResult<(usize, &Field)> {
        let (rid, _) = self.as_record(id).ok_or_else(|| TypeError::NoField {
            record: self.display(id),
            field: name.to_string(),
        })?;
        let rec = self.record(rid);
        match rec.field_index(name) {
            Some(i) => Ok((i, &rec.fields[i])),
            None => Err(TypeError::NoField {
                record: self.display(id),
                field: name.to_string(),
            }),
        }
    }

    /// Number of types interned so far (diagnostics only).
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Takes a deterministic, serializable image of the whole arena.
    ///
    /// Name-keyed maps are sorted so the same table always snapshots to
    /// the same bytes — capture files depend on this for reproducible
    /// diffs.
    pub fn snapshot(&self) -> TableSnapshot {
        fn sorted<V: Copy>(m: &HashMap<String, V>) -> Vec<(String, V)> {
            let mut v: Vec<(String, V)> = m.iter().map(|(k, &id)| (k.clone(), id)).collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        }
        TableSnapshot {
            kinds: self.kinds.clone(),
            records: self.records.clone(),
            enums: self.enums.clone(),
            typedefs: sorted(&self.typedefs),
            struct_tags: sorted(&self.struct_tags),
            union_tags: sorted(&self.union_tags),
            enum_tags: sorted(&self.enum_tags),
        }
    }

    /// Rebuilds a table from a snapshot, preserving every raw id.
    ///
    /// The intern map is reconstructed with first-occurrence-wins so
    /// kinds that were pushed without interning (anonymous records) do
    /// not steal the canonical id from an earlier identical entry.
    pub fn from_snapshot(snap: &TableSnapshot) -> TypeTable {
        let mut interned = HashMap::new();
        for (i, kind) in snap.kinds.iter().enumerate() {
            interned.entry(kind.clone()).or_insert(TypeId(i as u32));
        }
        TypeTable {
            kinds: snap.kinds.clone(),
            records: snap.records.clone(),
            enums: snap.enums.clone(),
            interned,
            typedefs: snap.typedefs.iter().cloned().collect(),
            struct_tags: snap.struct_tags.iter().cloned().collect(),
            union_tags: snap.union_tags.iter().cloned().collect(),
            enum_tags: snap.enum_tags.iter().cloned().collect(),
        }
    }
}

/// A deterministic, serializable image of a [`TypeTable`].
///
/// Raw ids (`TypeId::raw` et al.) index directly into these vectors, so
/// a capture file that stores the snapshot plus raw ids round-trips
/// exactly via [`TypeTable::from_snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct TableSnapshot {
    /// Every type kind, in arena (id) order.
    pub kinds: Vec<TypeKind>,
    /// Every struct/union definition, in arena order.
    pub records: Vec<Record>,
    /// Every enum definition, in arena order.
    pub enums: Vec<EnumDef>,
    /// Typedef name → type, sorted by name.
    pub typedefs: Vec<(String, TypeId)>,
    /// Struct tag → record, sorted by tag.
    pub struct_tags: Vec<(String, RecordId)>,
    /// Union tag → record, sorted by tag.
    pub union_tags: Vec<(String, RecordId)>,
    /// Enum tag → enum, sorted by tag.
    pub enum_tags: Vec<(String, EnumId)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_derived_types() {
        let mut tt = TypeTable::new();
        let int = tt.prim(Prim::Int);
        let p1 = tt.pointer(int);
        let p2 = tt.pointer(int);
        assert_eq!(p1, p2);
        let a1 = tt.array(int, Some(10));
        let a2 = tt.array(int, Some(10));
        let a3 = tt.array(int, Some(11));
        assert_eq!(a1, a2);
        assert_ne!(a1, a3);
    }

    #[test]
    fn struct_type_declares_and_completes_in_one_step() {
        let mut tt = TypeTable::new();
        let int = tt.prim(Prim::Int);
        let (rid, ty) = tt.struct_type("point", vec![Field::new("x", int), Field::new("y", int)]);
        assert!(tt.record(rid).complete);
        assert_eq!(tt.struct_tag("point"), Some(rid));
        assert_eq!(tt.record(rid).field_index("y"), Some(1));
        // Re-using the tag completes the same record id.
        let (rid2, ty2) = tt.struct_type("point", vec![Field::new("x", int)]);
        assert_eq!(rid, rid2);
        assert_eq!(ty, ty2);
    }

    #[test]
    fn snapshot_roundtrip_preserves_ids_and_interning() {
        let mut tt = TypeTable::new();
        let int = tt.prim(Prim::Int);
        let pint = tt.pointer(int);
        let (rid, sty) = tt.declare_struct("node");
        let pnode = tt.pointer(sty);
        tt.define_record(
            rid,
            vec![Field::new("value", int), Field::new("next", pnode)],
        );
        tt.define_typedef("node_t", sty);
        let (eid, ety) = tt.define_enum(Some("color"), vec![("RED".into(), 0), ("BLUE".into(), 1)]);

        let snap = tt.snapshot();
        let mut back = TypeTable::from_snapshot(&snap);

        // Raw ids survive the round trip.
        assert_eq!(back.len(), tt.len());
        assert_eq!(back.kind(sty), tt.kind(sty));
        assert_eq!(back.record(rid), tt.record(rid));
        assert_eq!(back.enum_def(eid), tt.enum_def(eid));
        assert_eq!(back.typedef("node_t"), Some(sty));
        assert_eq!(back.struct_tag("node"), Some(rid));
        assert_eq!(back.enum_tag("color"), Some(eid));
        assert_eq!(back.kind(ety), tt.kind(ety));

        // Re-interning is idempotent: asking for existing types does not
        // grow the restored table or mint new ids.
        let n = back.len();
        assert_eq!(back.prim(Prim::Int), int);
        assert_eq!(back.pointer(int), pint);
        assert_eq!(back.pointer(sty), pnode);
        assert_eq!(back.len(), n);

        // Snapshotting the restored table is byte-for-byte stable.
        assert_eq!(back.snapshot(), snap);
    }

    #[test]
    fn snapshot_handles_uninterned_anonymous_records() {
        let mut tt = TypeTable::new();
        let int = tt.prim(Prim::Int);
        // anonymous_record pushes a kind without interning it.
        let (arid, aty) = tt.anonymous_record(false);
        tt.define_record(arid, vec![Field::new("x", int)]);
        let back = TypeTable::from_snapshot(&tt.snapshot());
        assert_eq!(back.kind(aty), tt.kind(aty));
        assert_eq!(back.record(arid), tt.record(arid));
        assert_eq!(back.snapshot(), tt.snapshot());
    }

    #[test]
    fn raw_id_roundtrip() {
        let mut tt = TypeTable::new();
        let int = tt.prim(Prim::Int);
        assert_eq!(TypeId::from_raw(int.raw()), int);
        let (rid, _) = tt.declare_struct("s");
        assert_eq!(RecordId::from_raw(rid.raw()), rid);
        let (eid, _) = tt.define_enum(None, vec![("A".into(), 0)]);
        assert_eq!(EnumId::from_raw(eid.raw()), eid);
    }

    #[test]
    fn struct_declaration_and_definition() {
        let mut tt = TypeTable::new();
        let int = tt.prim(Prim::Int);
        let (rid, sty) = tt.declare_struct("symbol");
        assert!(!tt.record(rid).complete);
        // Self-referential: struct symbol *next.
        let pnext = tt.pointer(sty);
        tt.define_record(
            rid,
            vec![Field::new("scope", int), Field::new("next", pnext)],
        );
        assert!(tt.record(rid).complete);
        assert_eq!(tt.record(rid).field_index("next"), Some(1));
        // Re-declaring finds the same record.
        let (rid2, sty2) = tt.declare_struct("symbol");
        assert_eq!(rid, rid2);
        assert_eq!(sty, sty2);
    }

    #[test]
    fn enums_and_enumerators() {
        let mut tt = TypeTable::new();
        let (eid, ety) =
            tt.define_enum(Some("color"), vec![("RED".into(), 0), ("GREEN".into(), 5)]);
        assert!(tt.is_integer(ety));
        assert_eq!(tt.enumerator("GREEN"), Some((eid, 5)));
        assert_eq!(tt.enumerator("BLUE"), None);
        assert_eq!(tt.enum_tag("color"), Some(eid));
    }

    #[test]
    fn typedefs() {
        let mut tt = TypeTable::new();
        let int = tt.prim(Prim::Int);
        let p = tt.pointer(int);
        tt.define_typedef("intp", p);
        assert_eq!(tt.typedef("intp"), Some(p));
        assert_eq!(tt.typedef("nope"), None);
    }

    #[test]
    fn find_field_errors() {
        let mut tt = TypeTable::new();
        let int = tt.prim(Prim::Int);
        let (rid, sty) = tt.declare_struct("s");
        tt.define_record(rid, vec![Field::new("a", int)]);
        assert!(tt.find_field(sty, "a").is_ok());
        assert!(matches!(
            tt.find_field(sty, "b"),
            Err(TypeError::NoField { .. })
        ));
        assert!(tt.find_field(int, "a").is_err());
    }

    #[test]
    fn classification() {
        let mut tt = TypeTable::new();
        let int = tt.prim(Prim::Int);
        let d = tt.prim(Prim::Double);
        let p = tt.pointer(int);
        let a = tt.array(int, Some(4));
        assert!(tt.is_integer(int));
        assert!(!tt.is_integer(d));
        assert!(tt.is_arithmetic(d));
        assert!(tt.is_pointer(p));
        assert!(tt.is_array(a));
        assert!(tt.is_scalar(p));
        assert!(!tt.is_scalar(a));
    }
}
