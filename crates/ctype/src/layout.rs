//! Size, alignment, and field-offset computation.
//!
//! Implements a simplified System V layout: fields are placed at the next
//! offset aligned to their alignment; bitfields pack into storage units of
//! their declared type, starting a new unit when the remaining bits do not
//! fit; a zero-width bitfield closes the current unit.

use crate::{
    abi::Abi,
    error::{TypeError, TypeResult},
    table::{RecordId, TypeId, TypeKind, TypeTable},
};

/// The layout of one record field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldLayout {
    /// Byte offset of the field (of its storage unit, for bitfields).
    pub offset: u64,
    /// Size in bytes of the field's storage.
    pub size: u64,
    /// For bitfields: bit offset within the storage unit (little-endian
    /// bit numbering from the least-significant bit).
    pub bit_offset: Option<u8>,
    /// For bitfields: width in bits.
    pub bit_width: Option<u8>,
}

/// The layout of a whole record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordLayout {
    /// Total size in bytes, including tail padding.
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
    /// Per-field layout, parallel to the record's field list.
    pub fields: Vec<FieldLayout>,
}

fn align_up(v: u64, a: u64) -> u64 {
    debug_assert!(a.is_power_of_two());
    (v + a - 1) & !(a - 1)
}

impl TypeTable {
    /// Returns `sizeof(ty)` in bytes under `abi`.
    pub fn size_of(&self, ty: TypeId, abi: &Abi) -> TypeResult<u64> {
        Ok(self.size_align(ty, abi)?.0)
    }

    /// Returns `alignof(ty)` in bytes under `abi`.
    pub fn align_of(&self, ty: TypeId, abi: &Abi) -> TypeResult<u64> {
        Ok(self.size_align(ty, abi)?.1)
    }

    /// Returns `(size, align)` for `ty`.
    pub fn size_align(&self, ty: TypeId, abi: &Abi) -> TypeResult<(u64, u64)> {
        match self.kind(ty) {
            TypeKind::Void => Err(TypeError::NoSize("void".into())),
            TypeKind::Prim(p) => Ok((p.size(abi), p.align(abi))),
            TypeKind::Pointer(_) => Ok((abi.pointer_bytes, abi.pointer_align())),
            TypeKind::Array { elem, len } => {
                let (es, ea) = self.size_align(*elem, abi)?;
                match len {
                    Some(n) => Ok((es * n, ea)),
                    None => Err(TypeError::Incomplete(self.display(ty))),
                }
            }
            TypeKind::Function { .. } => Err(TypeError::NoSize(self.display(ty))),
            TypeKind::Struct(rid) | TypeKind::Union(rid) => {
                let l = self.record_layout(*rid, abi)?;
                Ok((l.size, l.align))
            }
            TypeKind::Enum(_) => Ok((4, 4u64.min(abi.max_align))),
        }
    }

    /// Computes the full layout of a record.
    pub fn record_layout(&self, rid: RecordId, abi: &Abi) -> TypeResult<RecordLayout> {
        let rec = self.record(rid);
        if !rec.complete {
            let name = rec.name.clone().unwrap_or_else(|| "<anon>".into());
            return Err(TypeError::Incomplete(format!(
                "{} {}",
                if rec.is_union { "union" } else { "struct" },
                name
            )));
        }
        let mut fields = Vec::with_capacity(rec.fields.len());
        let mut size: u64 = 0;
        let mut align: u64 = 1;
        // Bitfield packing state: the current storage unit.
        let mut unit_offset: u64 = 0;
        let mut unit_size: u64 = 0;
        let mut bits_used: u8 = 0;

        for f in &rec.fields {
            let (fs, fa) = self.size_align(f.ty, abi)?;
            align = align.max(fa);
            if rec.is_union {
                let (bo, bw) = match f.bits {
                    Some(w) => {
                        self.check_bitfield(f, fs)?;
                        (Some(0), Some(w))
                    }
                    None => (None, None),
                };
                fields.push(FieldLayout {
                    offset: 0,
                    size: fs,
                    bit_offset: bo,
                    bit_width: bw,
                });
                size = size.max(fs);
                continue;
            }
            match f.bits {
                None => {
                    // Any open bitfield unit is closed.
                    if bits_used > 0 {
                        size = unit_offset + unit_size;
                        bits_used = 0;
                    }
                    let off = align_up(size, fa);
                    fields.push(FieldLayout {
                        offset: off,
                        size: fs,
                        bit_offset: None,
                        bit_width: None,
                    });
                    size = off + fs;
                }
                Some(0) => {
                    // Zero-width bitfield: close the unit.
                    if bits_used > 0 {
                        size = unit_offset + unit_size;
                        bits_used = 0;
                    }
                    fields.push(FieldLayout {
                        offset: size,
                        size: 0,
                        bit_offset: Some(0),
                        bit_width: Some(0),
                    });
                }
                Some(w) => {
                    self.check_bitfield(f, fs)?;
                    let unit_bits = (fs * 8) as u8;
                    let fits = bits_used > 0 && unit_size == fs && bits_used + w <= unit_bits;
                    if !fits {
                        // Start a new storage unit.
                        if bits_used > 0 {
                            size = unit_offset + unit_size;
                        }
                        unit_offset = align_up(size, fa);
                        unit_size = fs;
                        bits_used = 0;
                    }
                    fields.push(FieldLayout {
                        offset: unit_offset,
                        size: fs,
                        bit_offset: Some(bits_used),
                        bit_width: Some(w),
                    });
                    bits_used += w;
                }
            }
        }
        if bits_used > 0 {
            size = unit_offset + unit_size;
        }
        let size = align_up(size, align);
        Ok(RecordLayout {
            size,
            align,
            fields,
        })
    }

    fn check_bitfield(&self, f: &crate::table::Field, storage: u64) -> TypeResult<()> {
        if !self.is_integer(f.ty) {
            return Err(TypeError::BitfieldNonInteger(f.name.clone()));
        }
        let max = (storage * 8) as u8;
        match f.bits {
            Some(w) if w > max => Err(TypeError::BitfieldTooWide {
                field: f.name.clone(),
                width: w,
                max,
            }),
            _ => Ok(()),
        }
    }

    /// Returns the byte offset (and bitfield placement) of field `index`
    /// of record `rid`.
    pub fn field_layout(&self, rid: RecordId, index: usize, abi: &Abi) -> TypeResult<FieldLayout> {
        let l = self.record_layout(rid, abi)?;
        Ok(l.fields[index])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Prim};

    fn table() -> (TypeTable, Abi) {
        (TypeTable::new(), Abi::lp64())
    }

    #[test]
    fn scalar_sizes() {
        let (mut tt, abi) = table();
        let int = tt.prim(Prim::Int);
        let p = tt.pointer(int);
        assert_eq!(tt.size_of(int, &abi).unwrap(), 4);
        assert_eq!(tt.size_of(p, &abi).unwrap(), 8);
        let v = tt.void();
        assert!(tt.size_of(v, &abi).is_err());
    }

    #[test]
    fn array_sizes() {
        let (mut tt, abi) = table();
        let int = tt.prim(Prim::Int);
        let a = tt.array(int, Some(10));
        assert_eq!(tt.size_of(a, &abi).unwrap(), 40);
        let inc = tt.array(int, None);
        assert!(matches!(
            tt.size_of(inc, &abi),
            Err(TypeError::Incomplete(_))
        ));
    }

    #[test]
    fn struct_padding() {
        let (mut tt, abi) = table();
        let c = tt.prim(Prim::Char);
        let i = tt.prim(Prim::Int);
        let (rid, sty) = tt.declare_struct("s");
        tt.define_record(rid, vec![Field::new("c", c), Field::new("i", i)]);
        let l = tt.record_layout(rid, &abi).unwrap();
        assert_eq!(l.fields[0].offset, 0);
        assert_eq!(l.fields[1].offset, 4);
        assert_eq!(l.size, 8);
        assert_eq!(l.align, 4);
        assert_eq!(tt.size_of(sty, &abi).unwrap(), 8);
    }

    #[test]
    fn paper_symbol_struct_ilp32_vs_lp64() {
        // struct symbol { char *name; int scope; struct symbol *next; }
        // — the symbol-table node from the paper's Syntax section.
        let mut tt = TypeTable::new();
        let c = tt.prim(Prim::Char);
        let i = tt.prim(Prim::Int);
        let pc = tt.pointer(c);
        let (rid, sty) = tt.declare_struct("symbol");
        let ps = tt.pointer(sty);
        tt.define_record(
            rid,
            vec![
                Field::new("name", pc),
                Field::new("scope", i),
                Field::new("next", ps),
            ],
        );
        let l32 = tt.record_layout(rid, &Abi::ilp32()).unwrap();
        assert_eq!(l32.size, 12);
        assert_eq!(
            l32.fields.iter().map(|f| f.offset).collect::<Vec<_>>(),
            vec![0, 4, 8]
        );
        let l64 = tt.record_layout(rid, &Abi::lp64()).unwrap();
        assert_eq!(l64.size, 24);
        assert_eq!(
            l64.fields.iter().map(|f| f.offset).collect::<Vec<_>>(),
            vec![0, 8, 16]
        );
    }

    #[test]
    fn union_layout() {
        let (mut tt, abi) = table();
        let c = tt.prim(Prim::Char);
        let d = tt.prim(Prim::Double);
        let (rid, _) = tt.declare_union("u");
        tt.define_record(rid, vec![Field::new("c", c), Field::new("d", d)]);
        let l = tt.record_layout(rid, &abi).unwrap();
        assert_eq!(l.size, 8);
        assert_eq!(l.align, 8);
        assert_eq!(l.fields[0].offset, 0);
        assert_eq!(l.fields[1].offset, 0);
    }

    #[test]
    fn bitfields_pack_into_units() {
        let (mut tt, abi) = table();
        let u = tt.prim(Prim::UInt);
        let (rid, _) = tt.declare_struct("bf");
        tt.define_record(
            rid,
            vec![
                Field::bitfield("a", u, 3),
                Field::bitfield("b", u, 5),
                Field::bitfield("c", u, 28), // does not fit; new unit
            ],
        );
        let l = tt.record_layout(rid, &abi).unwrap();
        assert_eq!(
            l.fields[0],
            FieldLayout {
                offset: 0,
                size: 4,
                bit_offset: Some(0),
                bit_width: Some(3)
            }
        );
        assert_eq!(l.fields[1].bit_offset, Some(3));
        assert_eq!(l.fields[1].offset, 0);
        assert_eq!(l.fields[2].offset, 4);
        assert_eq!(l.fields[2].bit_offset, Some(0));
        assert_eq!(l.size, 8);
    }

    #[test]
    fn zero_width_bitfield_closes_unit() {
        let (mut tt, abi) = table();
        let u = tt.prim(Prim::UInt);
        let (rid, _) = tt.declare_struct("bf0");
        tt.define_record(
            rid,
            vec![
                Field::bitfield("a", u, 3),
                Field::bitfield("", u, 0),
                Field::bitfield("b", u, 3),
            ],
        );
        let l = tt.record_layout(rid, &abi).unwrap();
        assert_eq!(l.fields[0].offset, 0);
        assert_eq!(l.fields[2].offset, 4);
        assert_eq!(l.fields[2].bit_offset, Some(0));
    }

    #[test]
    fn bitfield_mixed_with_plain_fields() {
        let (mut tt, abi) = table();
        let u = tt.prim(Prim::UInt);
        let c = tt.prim(Prim::Char);
        let (rid, _) = tt.declare_struct("m");
        tt.define_record(
            rid,
            vec![
                Field::bitfield("a", u, 7),
                Field::new("x", c),
                Field::bitfield("b", u, 9),
            ],
        );
        let l = tt.record_layout(rid, &abi).unwrap();
        assert_eq!(l.fields[0].offset, 0);
        assert_eq!(l.fields[1].offset, 4); // unit closed at 4
        assert_eq!(l.fields[2].offset, 8);
    }

    #[test]
    fn bitfield_errors() {
        let (mut tt, abi) = table();
        let u = tt.prim(Prim::UInt);
        let d = tt.prim(Prim::Double);
        let (rid, _) = tt.declare_struct("bad1");
        tt.define_record(rid, vec![Field::bitfield("w", u, 40)]);
        assert!(matches!(
            tt.record_layout(rid, &abi),
            Err(TypeError::BitfieldTooWide { .. })
        ));
        let (rid2, _) = tt.declare_struct("bad2");
        tt.define_record(rid2, vec![Field::bitfield("f", d, 3)]);
        assert!(matches!(
            tt.record_layout(rid2, &abi),
            Err(TypeError::BitfieldNonInteger(_))
        ));
    }

    #[test]
    fn incomplete_record_has_no_layout() {
        let (mut tt, abi) = table();
        let (rid, _) = tt.declare_struct("fwd");
        assert!(matches!(
            tt.record_layout(rid, &abi),
            Err(TypeError::Incomplete(_))
        ));
    }

    #[test]
    fn empty_struct_is_size_zero() {
        let (mut tt, abi) = table();
        let (rid, _) = tt.declare_struct("e");
        tt.define_record(rid, vec![]);
        let l = tt.record_layout(rid, &abi).unwrap();
        assert_eq!(l.size, 0);
        assert_eq!(l.align, 1);
    }

    #[test]
    fn tail_padding() {
        let (mut tt, abi) = table();
        let i = tt.prim(Prim::Int);
        let c = tt.prim(Prim::Char);
        let (rid, _) = tt.declare_struct("t");
        tt.define_record(rid, vec![Field::new("i", i), Field::new("c", c)]);
        let l = tt.record_layout(rid, &abi).unwrap();
        assert_eq!(l.size, 8); // 5 rounded up to align 4... = 8
    }
}
