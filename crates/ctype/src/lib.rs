#![warn(missing_docs)]

//! C type system and ABI layout engine.
//!
//! This crate is the bottom-most substrate of the DUEL reproduction. The
//! paper's implementation contains "its own type and value representations
//! and its own implementation of the C operators" so that DUEL does not
//! depend on gdb internals; this crate is that type representation.
//!
//! It provides:
//!
//! * [`Prim`] — the C primitive (arithmetic) types;
//! * [`TypeTable`] — an interning arena for derived types (pointers,
//!   arrays, functions, structs, unions, enums, typedefs);
//! * [`Abi`] — target ABI descriptions (pointer width, `long` width,
//!   endianness, alignment rules) with ILP32 and LP64 presets;
//! * layout computation — `sizeof`, `alignof`, field offsets, and
//!   bitfield allocation (see [`TypeTable::size_of`] and
//!   [`TypeTable::record_layout`]);
//! * the *usual arithmetic conversions* and integer promotions of C
//!   (see [`convert`]);
//! * C-syntax rendering of types (see [`TypeTable::display`]).
//!
//! # Examples
//!
//! ```
//! use duel_ctype::{Abi, Prim, TypeTable};
//!
//! let mut tt = TypeTable::new();
//! let abi = Abi::lp64();
//! let int = tt.prim(Prim::Int);
//! let p = tt.pointer(int);
//! let a = tt.array(p, Some(1024));
//! assert_eq!(tt.size_of(a, &abi).unwrap(), 8 * 1024);
//! assert_eq!(tt.display(a), "int *[1024]");
//! ```

mod abi;
pub mod convert;
mod error;
mod fmt;
mod layout;
mod prim;
mod table;

pub use abi::{Abi, Endian};
pub use convert::{integer_promote, usual_arithmetic, IntRank};
pub use error::{TypeError, TypeResult};
pub use layout::{FieldLayout, RecordLayout};
pub use prim::Prim;
pub use table::{
    EnumDef, EnumId, Field, Record, RecordId, TableSnapshot, TypeId, TypeKind, TypeTable,
};
