//! C's implicit conversion rules: integer promotions and the *usual
//! arithmetic conversions* (C90 §6.2.1.5), which DUEL applies to every
//! arithmetic operator exactly as C does.

use crate::{abi::Abi, prim::Prim};

/// The conversion rank of an integer type (C's integer conversion rank,
/// collapsed to what the promotion rules need).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum IntRank {
    /// `char` and `signed/unsigned char`.
    Char,
    /// `short`.
    Short,
    /// `int`.
    Int,
    /// `long`.
    Long,
    /// `long long`.
    LongLong,
}

/// Returns the conversion rank of an integer primitive.
///
/// # Panics
///
/// Panics if called with a floating type; callers filter first.
pub fn rank(p: Prim) -> IntRank {
    match p {
        Prim::Char | Prim::SChar | Prim::UChar => IntRank::Char,
        Prim::Short | Prim::UShort => IntRank::Short,
        Prim::Int | Prim::UInt => IntRank::Int,
        Prim::Long | Prim::ULong => IntRank::Long,
        Prim::LongLong | Prim::ULongLong => IntRank::LongLong,
        Prim::Float | Prim::Double => {
            panic!("rank() called with floating type")
        }
    }
}

/// Applies the C integer promotions: types narrower than `int` promote to
/// `int` (all their values fit in `int` on every supported ABI).
pub fn integer_promote(p: Prim) -> Prim {
    match p {
        Prim::Char | Prim::SChar | Prim::UChar | Prim::Short | Prim::UShort => Prim::Int,
        other => other,
    }
}

/// Applies the usual arithmetic conversions to a pair of arithmetic types,
/// returning the common type in which the operation is performed.
pub fn usual_arithmetic(a: Prim, b: Prim, abi: &Abi) -> Prim {
    if a == Prim::Double || b == Prim::Double {
        return Prim::Double;
    }
    if a == Prim::Float || b == Prim::Float {
        // C90 promoted float operands to double in many implementations;
        // we follow C89 value-preserving style and compute in float only
        // when both are float.
        if a == Prim::Float && b == Prim::Float {
            return Prim::Float;
        }
        return Prim::Double;
    }
    let a = integer_promote(a);
    let b = integer_promote(b);
    if a == b {
        return a;
    }
    let (ra, rb) = (rank(a), rank(b));
    let (sa, sb) = (a.is_signed(abi), b.is_signed(abi));
    if sa == sb {
        return if ra >= rb { a } else { b };
    }
    let (uns, uns_r, sig, sig_r) = if sa { (b, rb, a, ra) } else { (a, ra, b, rb) };
    if uns_r >= sig_r {
        return uns;
    }
    // The signed type has greater rank. If it can represent all values of
    // the unsigned type, use it; otherwise use its unsigned counterpart.
    let uns_bits = prim_bits(uns, abi);
    let sig_bits = prim_bits(sig, abi);
    if sig_bits > uns_bits {
        sig
    } else {
        sig.to_unsigned()
    }
}

fn prim_bits(p: Prim, abi: &Abi) -> u64 {
    p.size(abi) * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotions() {
        assert_eq!(integer_promote(Prim::Char), Prim::Int);
        assert_eq!(integer_promote(Prim::UShort), Prim::Int);
        assert_eq!(integer_promote(Prim::UInt), Prim::UInt);
        assert_eq!(integer_promote(Prim::Long), Prim::Long);
    }

    #[test]
    fn float_dominates() {
        let abi = Abi::lp64();
        assert_eq!(
            usual_arithmetic(Prim::Int, Prim::Double, &abi),
            Prim::Double
        );
        assert_eq!(
            usual_arithmetic(Prim::Float, Prim::Float, &abi),
            Prim::Float
        );
        assert_eq!(
            usual_arithmetic(Prim::Float, Prim::Long, &abi),
            Prim::Double
        );
    }

    #[test]
    fn same_signedness_takes_higher_rank() {
        let abi = Abi::lp64();
        assert_eq!(usual_arithmetic(Prim::Int, Prim::Long, &abi), Prim::Long);
        assert_eq!(
            usual_arithmetic(Prim::UInt, Prim::ULongLong, &abi),
            Prim::ULongLong
        );
    }

    #[test]
    fn mixed_signedness() {
        let lp64 = Abi::lp64();
        // unsigned of rank >= signed rank wins.
        assert_eq!(usual_arithmetic(Prim::UInt, Prim::Int, &lp64), Prim::UInt);
        // long (64-bit) can hold all of unsigned int (32-bit): signed wins.
        assert_eq!(usual_arithmetic(Prim::UInt, Prim::Long, &lp64), Prim::Long);
        // Under ILP32 long is 32-bit, cannot hold all unsigned int values:
        // result is unsigned long.
        let ilp32 = Abi::ilp32();
        assert_eq!(
            usual_arithmetic(Prim::UInt, Prim::Long, &ilp32),
            Prim::ULong
        );
    }

    #[test]
    fn narrow_types_meet_at_int() {
        let abi = Abi::lp64();
        assert_eq!(usual_arithmetic(Prim::Char, Prim::UShort, &abi), Prim::Int);
        assert_eq!(usual_arithmetic(Prim::UChar, Prim::SChar, &abi), Prim::Int);
    }
}
