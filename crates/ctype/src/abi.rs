//! Target ABI descriptions.

/// Byte order of the target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endian {
    /// Least-significant byte first.
    Little,
    /// Most-significant byte first.
    Big,
}

/// A target ABI: the machine-dependent parameters that drive layout.
///
/// The DUEL paper ran on DECstation 5000 (MIPS, ILP32, little-endian) and
/// SPARC (ILP32, big-endian) workstations; both presets are provided, plus
/// a modern LP64 preset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Abi {
    /// Size of a data pointer in bytes (4 or 8).
    pub pointer_bytes: u64,
    /// Size of `long` / `unsigned long` in bytes.
    pub long_bytes: u64,
    /// Byte order.
    pub endian: Endian,
    /// Whether plain `char` is signed.
    pub char_signed: bool,
    /// Maximum alignment imposed on any type (8 or 16 typically).
    pub max_align: u64,
}

impl Abi {
    /// ILP32, little-endian — the DECstation 5000 of the paper.
    pub fn ilp32() -> Abi {
        Abi {
            pointer_bytes: 4,
            long_bytes: 4,
            endian: Endian::Little,
            char_signed: true,
            max_align: 8,
        }
    }

    /// ILP32, big-endian — the SPARC workstation of the paper.
    pub fn ilp32_be() -> Abi {
        Abi {
            endian: Endian::Big,
            ..Abi::ilp32()
        }
    }

    /// LP64, little-endian — a modern x86-64 / AArch64 Linux target.
    pub fn lp64() -> Abi {
        Abi {
            pointer_bytes: 8,
            long_bytes: 8,
            endian: Endian::Little,
            char_signed: true,
            max_align: 16,
        }
    }

    /// Alignment of a pointer under this ABI.
    pub fn pointer_align(&self) -> u64 {
        self.pointer_bytes.min(self.max_align)
    }
}

impl Default for Abi {
    fn default() -> Abi {
        Abi::lp64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(Abi::ilp32().pointer_bytes, 4);
        assert_eq!(Abi::ilp32().endian, Endian::Little);
        assert_eq!(Abi::ilp32_be().endian, Endian::Big);
        assert_eq!(Abi::lp64().long_bytes, 8);
        assert_eq!(Abi::default(), Abi::lp64());
    }

    #[test]
    fn pointer_align_capped() {
        let mut abi = Abi::lp64();
        abi.max_align = 4;
        assert_eq!(abi.pointer_align(), 4);
    }
}
