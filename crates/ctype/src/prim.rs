//! The C primitive (arithmetic) types.

use crate::abi::Abi;

/// A C primitive arithmetic type.
///
/// `Char` is the "plain" `char` type whose signedness is ABI-dependent;
/// `SChar`/`UChar` are explicitly `signed char` / `unsigned char`. The
/// widths of `Long`/`ULong` depend on the [`Abi`] (4 bytes under ILP32,
/// 8 under LP64).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Prim {
    /// Plain `char` (ABI-dependent signedness).
    Char,
    /// `signed char`.
    SChar,
    /// `unsigned char`.
    UChar,
    /// `short`.
    Short,
    /// `unsigned short`.
    UShort,
    /// `int`.
    Int,
    /// `unsigned int`.
    UInt,
    /// `long`.
    Long,
    /// `unsigned long`.
    ULong,
    /// `long long` (always 8 bytes).
    LongLong,
    /// `unsigned long long` (always 8 bytes).
    ULongLong,
    /// `float`.
    Float,
    /// `double`.
    Double,
}

impl Prim {
    /// Returns the size of the type in bytes under `abi`.
    pub fn size(self, abi: &Abi) -> u64 {
        match self {
            Prim::Char | Prim::SChar | Prim::UChar => 1,
            Prim::Short | Prim::UShort => 2,
            Prim::Int | Prim::UInt => 4,
            Prim::Long | Prim::ULong => abi.long_bytes,
            Prim::LongLong | Prim::ULongLong => 8,
            Prim::Float => 4,
            Prim::Double => 8,
        }
    }

    /// Returns the alignment of the type in bytes under `abi`.
    pub fn align(self, abi: &Abi) -> u64 {
        self.size(abi).min(abi.max_align)
    }

    /// Returns `true` for the integer types (including `char`).
    pub fn is_integer(self) -> bool {
        !self.is_float()
    }

    /// Returns `true` for `float` and `double`.
    pub fn is_float(self) -> bool {
        matches!(self, Prim::Float | Prim::Double)
    }

    /// Returns `true` if values of this type are signed under `abi`.
    pub fn is_signed(self, abi: &Abi) -> bool {
        match self {
            Prim::Char => abi.char_signed,
            Prim::SChar | Prim::Short | Prim::Int | Prim::Long | Prim::LongLong => true,
            Prim::UChar | Prim::UShort | Prim::UInt | Prim::ULong | Prim::ULongLong => false,
            Prim::Float | Prim::Double => true,
        }
    }

    /// Returns the unsigned counterpart of an integer type.
    ///
    /// Float types are returned unchanged.
    pub fn to_unsigned(self) -> Prim {
        match self {
            Prim::Char | Prim::SChar => Prim::UChar,
            Prim::Short => Prim::UShort,
            Prim::Int => Prim::UInt,
            Prim::Long => Prim::ULong,
            Prim::LongLong => Prim::ULongLong,
            other => other,
        }
    }

    /// Renders the canonical C spelling, e.g. `"unsigned long"`.
    pub fn c_name(self) -> &'static str {
        match self {
            Prim::Char => "char",
            Prim::SChar => "signed char",
            Prim::UChar => "unsigned char",
            Prim::Short => "short",
            Prim::UShort => "unsigned short",
            Prim::Int => "int",
            Prim::UInt => "unsigned int",
            Prim::Long => "long",
            Prim::ULong => "unsigned long",
            Prim::LongLong => "long long",
            Prim::ULongLong => "unsigned long long",
            Prim::Float => "float",
            Prim::Double => "double",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_ilp32() {
        let abi = Abi::ilp32();
        assert_eq!(Prim::Char.size(&abi), 1);
        assert_eq!(Prim::Short.size(&abi), 2);
        assert_eq!(Prim::Int.size(&abi), 4);
        assert_eq!(Prim::Long.size(&abi), 4);
        assert_eq!(Prim::LongLong.size(&abi), 8);
        assert_eq!(Prim::Double.size(&abi), 8);
    }

    #[test]
    fn sizes_lp64() {
        let abi = Abi::lp64();
        assert_eq!(Prim::Long.size(&abi), 8);
        assert_eq!(Prim::ULong.size(&abi), 8);
        assert_eq!(Prim::Int.size(&abi), 4);
    }

    #[test]
    fn signedness() {
        let abi = Abi::lp64();
        assert!(Prim::Char.is_signed(&abi));
        assert!(!Prim::UChar.is_signed(&abi));
        assert!(Prim::Int.is_signed(&abi));
        assert!(!Prim::ULongLong.is_signed(&abi));
        let mut u = Abi::lp64();
        u.char_signed = false;
        assert!(!Prim::Char.is_signed(&u));
    }

    #[test]
    fn unsigned_counterparts() {
        assert_eq!(Prim::Int.to_unsigned(), Prim::UInt);
        assert_eq!(Prim::Char.to_unsigned(), Prim::UChar);
        assert_eq!(Prim::Double.to_unsigned(), Prim::Double);
    }

    #[test]
    fn c_names() {
        assert_eq!(Prim::ULong.c_name(), "unsigned long");
        assert_eq!(Prim::SChar.c_name(), "signed char");
    }
}
