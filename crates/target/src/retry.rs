//! Bounded retry with exponential backoff over a flaky [`Target`].
//!
//! [`RetryTarget`] re-issues an operation when it fails with a
//! *transient* error ([`TargetError::is_transient`]); *faults* (bad
//! address, unknown symbol) are the debuggee's honest answer and are
//! returned immediately. Each call carries an optional wall-clock
//! deadline, after which the operation fails with
//! [`TargetError::Timeout`] instead of retrying forever.
//!
//! Backoff is *jittered*: each delay is scaled by a deterministic
//! factor in `1 ± jitter` derived from ([`RetryPolicy::seed`], retry
//! number), so stacked retry layers (session retry over an MI client's
//! own reconnect loop) don't sleep in lockstep and hammer a recovering
//! backend in synchronized waves — while a given policy still backs
//! off identically across runs, keeping tests reproducible.
//!
//! Besides the per-policy deadline, an *operation deadline* can be set
//! per evaluation ([`RetryTarget::set_op_deadline`]): the evaluator
//! passes its own `timeout_ms` budget down so a retrying op can't
//! overshoot the eval budget by a full backoff ceiling — sleeps are
//! clamped against whichever deadline is nearer.

use crate::error::{TargetError, TargetResult};
use crate::iface::{CallValue, FrameInfo, ReadRange, Target, VarInfo};
use crate::span::{SpanContext, SpanKind};
use duel_ctype::{Abi, EnumId, RecordId, TypeId, TypeTable};
use std::time::{Duration, Instant};

/// How a [`RetryTarget`] behaves.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Maximum retries per operation (total attempts = retries + 1).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles on each subsequent one.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Per-operation wall-clock budget, checked before every retry.
    pub deadline: Option<Duration>,
    /// Whether to actually sleep between attempts (tests disable this
    /// to stay fast while still observing the retry count).
    pub sleep: bool,
    /// Jitter amplitude: each backoff is scaled by a deterministic
    /// factor in `[1 - jitter, 1 + jitter]` (0.0 = pure doubling).
    pub jitter: f64,
    /// Seed for the jitter factors; a fixed seed makes every backoff
    /// sequence reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            deadline: Some(Duration::from_secs(5)),
            sleep: true,
            jitter: 0.25,
            seed: 0xd0e1_5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy for tests: same retry shape, no real sleeping.
    pub fn fast(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            sleep: false,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry number `n` (1-based): doubled each
    /// time, capped at [`RetryPolicy::max_delay`], then scaled by a
    /// deterministic jitter factor in `1 ± jitter` drawn from
    /// ([`RetryPolicy::seed`], `n`). The cap still bounds the result.
    pub fn backoff(&self, n: u32) -> Duration {
        let factor = 1u32 << n.saturating_sub(1).min(16);
        let capped = (self.base_delay * factor).min(self.max_delay);
        if self.jitter <= 0.0 {
            return capped;
        }
        // splitmix64 of (seed, n): a stateless draw, so backoff(n) is a
        // pure function of the policy.
        let mut z = self.seed ^ (u64::from(n)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let scale = (1.0 + self.jitter * (2.0 * unit - 1.0)).max(0.0);
        capped.mul_f64(scale).min(self.max_delay)
    }
}

/// Counters describing what a [`RetryTarget`] has absorbed. Cumulative
/// since construction or the last [`RetryTarget::reset_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retryable operations attempted (memory, alloc, call; lookups
    /// pass through unretried).
    pub operations: u64,
    /// Re-attempts after a transient failure.
    pub retries: u64,
    /// Operations abandoned after exhausting retries or the deadline.
    pub give_ups: u64,
    /// Total backoff scheduled, nanoseconds (accrued even under a
    /// non-sleeping test policy, so tests can assert the shape).
    pub backoff_ns: u64,
}

/// A [`Target`] decorator that absorbs transient backend failures.
#[derive(Debug)]
pub struct RetryTarget<T: Target> {
    inner: T,
    policy: RetryPolicy,
    stats: RetryStats,
    /// Wall-clock instant past which no operation may retry or sleep —
    /// the evaluator's `timeout_ms` budget, pushed down per evaluation.
    op_deadline: Option<Instant>,
    /// Shared span timeline, installed by the trace layer above. One
    /// retrying operation opens ONE logical `retry` span (back-dated
    /// to the op start) with an instant child per re-attempt.
    spans: Option<SpanContext>,
}

impl<T: Target> RetryTarget<T> {
    /// Wraps `inner` with the default policy.
    pub fn new(inner: T) -> RetryTarget<T> {
        RetryTarget::with_policy(inner, RetryPolicy::default())
    }

    /// Wraps `inner` with an explicit policy.
    pub fn with_policy(inner: T, policy: RetryPolicy) -> RetryTarget<T> {
        RetryTarget {
            inner,
            policy,
            stats: RetryStats::default(),
            op_deadline: None,
            spans: None,
        }
    }

    /// The wrapped target.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped target.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Total retries performed across all operations so far.
    pub fn retries(&self) -> u64 {
        self.stats.retries
    }

    /// The full counter set (attempts, retries, give-ups, backoff).
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Resets all counters to zero.
    pub fn reset_stats(&mut self) {
        self.stats = RetryStats::default();
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Sets (or clears) the operation deadline: the wall-clock instant
    /// past which retrying ops fail with [`TargetError::Timeout`]
    /// instead of sleeping on. The evaluator pushes its `timeout_ms`
    /// budget down here, so a retrying op can't overshoot the eval
    /// budget by a full backoff ceiling.
    pub fn set_op_deadline(&mut self, deadline: Option<Instant>) {
        self.op_deadline = deadline;
    }

    /// The currently installed operation deadline, if any.
    pub fn op_deadline(&self) -> Option<Instant> {
        self.op_deadline
    }

    /// Opens (at most once per operation) the logical `retry` span for
    /// this retry episode, back-dated to the operation start.
    fn open_retry_span(&self, name: &'static str, start: Instant) -> u64 {
        match &self.spans {
            Some(s) if s.is_enabled() => {
                let start_ns = s.now_ns().saturating_sub(start.elapsed().as_nanos() as u64);
                s.push_at(SpanKind::Retry, "retry", || name.to_string(), start_ns)
            }
            _ => 0,
        }
    }

    fn note_attempt(&self, attempt: u32, backoff: Duration, retry_span: u64) {
        if retry_span == 0 {
            return;
        }
        if let Some(s) = &self.spans {
            s.instant(SpanKind::Retry, "attempt", || {
                format!("#{attempt} backoff {}ns", backoff.as_nanos())
            });
        }
    }

    fn close_retry_span(&self, retry_span: u64) {
        if retry_span != 0 {
            if let Some(s) = &self.spans {
                s.pop(retry_span);
            }
        }
    }

    fn run<R>(
        &mut self,
        name: &'static str,
        mut op: impl FnMut(&mut T) -> TargetResult<R>,
    ) -> TargetResult<R> {
        let start = Instant::now();
        // The effective budget for this operation: the policy's
        // per-operation allowance clamped by however much of the eval
        // budget is left.
        let budget = match (self.policy.deadline, self.op_deadline) {
            (Some(p), Some(od)) => Some(p.min(od.saturating_duration_since(start))),
            (Some(p), None) => Some(p),
            (None, Some(od)) => Some(od.saturating_duration_since(start)),
            (None, None) => None,
        };
        let mut attempt = 0u32;
        // One *logical* span covers the whole retry episode, opened
        // lazily at the first transient failure (a clean first attempt
        // never touches the span stack) and back-dated to the op start.
        let mut retry_span = 0u64;
        self.stats.operations += 1;
        let result = loop {
            match op(&mut self.inner) {
                Ok(r) => break Ok(r),
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    self.stats.retries += 1;
                    if retry_span == 0 {
                        retry_span = self.open_retry_span(name, start);
                    }
                    let mut backoff = self.policy.backoff(attempt);
                    if let Some(budget) = budget {
                        let elapsed = start.elapsed();
                        if elapsed >= budget {
                            self.stats.give_ups += 1;
                            break Err(TargetError::Timeout {
                                ms: budget.as_millis() as u64,
                            });
                        }
                        // Never sleep past the deadline.
                        backoff = backoff.min(budget - elapsed);
                    }
                    self.note_attempt(attempt, backoff, retry_span);
                    self.stats.backoff_ns += backoff.as_nanos() as u64;
                    if self.policy.sleep {
                        std::thread::sleep(backoff);
                    }
                }
                Err(e) => {
                    if e.is_transient() {
                        self.stats.give_ups += 1;
                    }
                    break Err(e);
                }
            }
        };
        self.close_retry_span(retry_span);
        result
    }
}

impl<T: Target> Target for RetryTarget<T> {
    fn abi(&self) -> &Abi {
        self.inner.abi()
    }

    fn types(&self) -> &TypeTable {
        self.inner.types()
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        self.inner.types_mut()
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        self.run("get_bytes", |t| t.get_bytes(addr, buf))
    }

    fn get_bytes_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        // Batched re-drive: each attempt is ONE inner vectored call
        // covering only the ranges that are still transient, with the
        // usual backoff/deadline between attempts. Retrying ranges one
        // by one would dissolve the batch back into scalar wire turns.
        let start = Instant::now();
        let budget = match (self.policy.deadline, self.op_deadline) {
            (Some(p), Some(od)) => Some(p.min(od.saturating_duration_since(start))),
            (Some(p), None) => Some(p),
            (None, Some(od)) => Some(od.saturating_duration_since(start)),
            (None, None) => None,
        };
        self.stats.operations += 1;
        let n = ranges.len();
        let mut results: Vec<Option<TargetResult<()>>> = (0..n).map(|_| None).collect();
        let mut pending = vec![true; n];
        let mut attempt = 0u32;
        let mut retry_span = 0u64;
        loop {
            let mut fwd = Vec::new();
            let mut idx = Vec::new();
            for (i, r) in ranges.iter_mut().enumerate() {
                if pending[i] {
                    idx.push(i);
                    fwd.push(ReadRange::new(r.addr, &mut *r.buf));
                }
            }
            let mut transient = Vec::new();
            for (i, res) in idx.into_iter().zip(self.inner.get_bytes_multi(&mut fwd)) {
                let is_transient = res.as_ref().err().is_some_and(|e| e.is_transient());
                results[i] = Some(res);
                if is_transient {
                    transient.push(i);
                } else {
                    pending[i] = false;
                }
            }
            if transient.is_empty() {
                break;
            }
            if attempt >= self.policy.max_retries {
                self.stats.give_ups += 1;
                break;
            }
            attempt += 1;
            self.stats.retries += 1;
            if retry_span == 0 {
                retry_span = self.open_retry_span("get_bytes_multi", start);
            }
            let mut backoff = self.policy.backoff(attempt);
            if let Some(budget) = budget {
                let elapsed = start.elapsed();
                if elapsed >= budget {
                    self.stats.give_ups += 1;
                    for i in transient {
                        results[i] = Some(Err(TargetError::Timeout {
                            ms: budget.as_millis() as u64,
                        }));
                    }
                    break;
                }
                backoff = backoff.min(budget - elapsed);
            }
            self.note_attempt(attempt, backoff, retry_span);
            self.stats.backoff_ns += backoff.as_nanos() as u64;
            if self.policy.sleep {
                std::thread::sleep(backoff);
            }
        }
        self.close_retry_span(retry_span);
        results.into_iter().map(Option::unwrap).collect()
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        self.run("put_bytes", |t| t.put_bytes(addr, bytes))
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        self.run("alloc_space", |t| t.alloc_space(size, align))
    }

    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        // Calls are NOT retried blindly: a call may have side effects,
        // so only an error that provably happened before execution
        // (a transport-level failure) would be safe. We retry anyway
        // only when the backend says the failure was transient, which
        // for the MI adapter means the command never ran.
        self.run("call_func", |t| t.call_func(name, args))
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        self.inner.get_variable(name)
    }

    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
        self.inner.get_variable_in_frame(name, frame)
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        self.inner.lookup_typedef(name)
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        self.inner.lookup_struct(tag)
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        self.inner.lookup_union(tag)
    }

    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
        self.inner.lookup_enum(tag)
    }

    fn has_function(&mut self, name: &str) -> bool {
        self.inner.has_function(name)
    }

    fn frame_count(&mut self) -> usize {
        self.inner.frame_count()
    }

    fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
        self.inner.frame_info(n)
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        self.inner.is_mapped(addr, len)
    }

    fn take_output(&mut self) -> String {
        self.inner.take_output()
    }

    fn trace_handle(&self) -> Option<crate::trace::TraceHandle> {
        self.inner.trace_handle()
    }

    fn set_span_context(&mut self, spans: &SpanContext) {
        self.spans = Some(spans.clone());
        self.inner.set_span_context(spans);
    }

    fn span_context(&self) -> Option<SpanContext> {
        self.inner.span_context()
    }

    fn staleness_handle(&self) -> Option<crate::supervise::StalenessHandle> {
        self.inner.staleness_handle()
    }

    // Prefetch warms are deliberately NOT retried: a failed page stays
    // cold and the demand read that eventually needs it re-drives it
    // through the normal (retried) scalar path. Retrying warms would
    // desynchronize the wire sequence between pipeline on and off.
    fn prefetch_submit(&mut self, ranges: &[(u64, u64)]) -> bool {
        self.inner.prefetch_submit(ranges)
    }

    fn prefetch_poll(&mut self) -> Option<crate::iface::PrefetchCompletion> {
        self.inner.prefetch_poll()
    }

    fn cache_page_size(&self) -> Option<u64> {
        self.inner.cache_page_size()
    }

    fn pipeline_handle(&self) -> Option<crate::pipeline::PipelineHandle> {
        self.inner.pipeline_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultTarget};
    use crate::scenario;

    #[test]
    fn absorbs_transient_burst() {
        let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(2));
        let mut t = RetryTarget::with_policy(flaky, RetryPolicy::fast(3));
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 7);
        assert_eq!(t.retries(), 2);
    }

    #[test]
    fn does_not_retry_faults() {
        let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::default());
        let mut t = RetryTarget::with_policy(flaky, RetryPolicy::fast(3));
        let mut buf = [0u8; 4];
        assert_eq!(
            t.get_bytes(0x99, &mut buf),
            Err(TargetError::IllegalMemory { addr: 0x99, len: 4 })
        );
        assert_eq!(t.retries(), 0, "faults must not be retried");
    }

    #[test]
    fn gives_up_after_max_retries() {
        let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(10));
        let mut t = RetryTarget::with_policy(flaky, RetryPolicy::fast(3));
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        let err = t.get_bytes(x.addr, &mut buf).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(t.retries(), 3);
    }

    #[test]
    fn deadline_converts_to_timeout() {
        let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(100));
        let policy = RetryPolicy {
            max_retries: 100,
            deadline: Some(Duration::ZERO),
            sleep: false,
            ..RetryPolicy::default()
        };
        let mut t = RetryTarget::with_policy(flaky, policy);
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(
            t.get_bytes(x.addr, &mut buf),
            Err(TargetError::Timeout { ms: 0 })
        );
    }

    #[test]
    fn stats_count_attempts_backoff_and_give_ups() {
        let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(6));
        let mut t = RetryTarget::with_policy(flaky, RetryPolicy::fast(3));
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        // Burst of 6 transients, 3 retries allowed: first op gives up
        // after 3 retries (4 attempts consume 4 of the burst)...
        assert!(t.get_bytes(x.addr, &mut buf).is_err());
        // ...second op eats the remaining 2 and succeeds.
        t.get_bytes(x.addr, &mut buf).unwrap();
        let s = t.stats();
        assert_eq!(s.operations, 2);
        assert_eq!(s.retries, 5);
        assert_eq!(s.give_ups, 1);
        // Scheduled backoff: jittered 10+20+40 (gave-up op) + 10+20 ms
        // — exact because the jitter is a pure function of the policy.
        let p = t.policy();
        let want: u64 = [1, 2, 3, 1, 2]
            .iter()
            .map(|n| p.backoff(*n).as_nanos() as u64)
            .sum();
        assert_eq!(s.backoff_ns, want);
        t.reset_stats();
        assert_eq!(t.stats(), RetryStats::default());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
            jitter: 0.0, // pure doubling
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(35));
        assert_eq!(p.backoff(10), Duration::from_millis(35));
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_seed_dependent() {
        let p = RetryPolicy::default(); // jitter 0.25
        let q = RetryPolicy {
            seed: p.seed + 1,
            ..RetryPolicy::default()
        };
        let mut some_differ = false;
        for n in 1..=10u32 {
            let d = p.backoff(n);
            assert_eq!(d, p.backoff(n), "backoff must be a pure function");
            // Bounds: within ±25% of the doubled-capped base, and the
            // ceiling still holds.
            let base = (p.base_delay * (1 << (n - 1).min(16))).min(p.max_delay);
            assert!(
                d >= base.mul_f64(0.75),
                "retry {n}: {d:?} < 75% of {base:?}"
            );
            assert!(
                d <= base.mul_f64(1.25),
                "retry {n}: {d:?} > 125% of {base:?}"
            );
            assert!(d <= p.max_delay);
            some_differ |= q.backoff(n) != d;
        }
        assert!(some_differ, "different seeds must de-synchronize backoff");
    }

    #[test]
    fn op_deadline_converts_retry_storm_to_timeout() {
        let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(100));
        let mut t = RetryTarget::with_policy(
            flaky,
            RetryPolicy {
                max_retries: 100,
                deadline: None, // only the eval budget applies
                sleep: false,
                ..RetryPolicy::default()
            },
        );
        t.set_op_deadline(Some(Instant::now()));
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        let err = t.get_bytes(x.addr, &mut buf).unwrap_err();
        assert!(matches!(err, TargetError::Timeout { .. }), "{err}");
        assert_eq!(t.stats().give_ups, 1);
        // Clearing the deadline restores normal retrying.
        t.set_op_deadline(None);
        t.get_bytes(x.addr, &mut buf).unwrap();
    }

    #[test]
    fn op_deadline_clamps_scheduled_sleep() {
        // 50ms of eval budget left, 500ms backoff ceiling: the single
        // scheduled backoff must be clamped to at most the budget.
        let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(1));
        let mut t = RetryTarget::with_policy(
            flaky,
            RetryPolicy {
                base_delay: Duration::from_millis(400),
                max_delay: Duration::from_millis(500),
                sleep: false,
                ..RetryPolicy::default()
            },
        );
        t.set_op_deadline(Some(Instant::now() + Duration::from_millis(50)));
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap();
        assert_eq!(t.retries(), 1);
        assert!(
            t.stats().backoff_ns <= 50_000_000,
            "sleep must be clamped to the remaining eval budget, got {} ns",
            t.stats().backoff_ns
        );
    }

    #[test]
    fn retry_episode_is_one_logical_span_with_attempt_children() {
        let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(2));
        let mut t = RetryTarget::with_policy(flaky, RetryPolicy::fast(3));
        let spans = SpanContext::new(64);
        spans.set_enabled(true);
        t.set_span_context(&spans);
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        let snap = spans.snapshot();
        let episodes: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Retry && s.name == "retry")
            .collect();
        assert_eq!(episodes.len(), 1, "2 retries must share ONE logical span");
        assert_eq!(episodes[0].detail, "get_bytes");
        let attempts: Vec<_> = snap.spans.iter().filter(|s| s.name == "attempt").collect();
        assert_eq!(attempts.len(), 2);
        assert!(
            attempts.iter().all(|a| a.parent == episodes[0].id),
            "attempts must be children of the episode span"
        );
        // A clean op never opens a span.
        t.get_bytes(x.addr, &mut buf).unwrap();
        assert_eq!(spans.snapshot().spans.len(), snap.spans.len());
    }

    #[test]
    fn vectored_retry_redrives_only_the_flaky_ranges() {
        // Burst budget of 1: exactly one range of the first vectored
        // attempt flakes; the retry re-drives only that range.
        let flaky = FaultTarget::new(scenario::scan_array(), FaultConfig::transient(1));
        let mut t = RetryTarget::with_policy(flaky, RetryPolicy::fast(3));
        let x = t.get_variable("x").unwrap();
        let mut a = [0u8; 4];
        let mut b = [0u8; 4];
        let mut ranges = [
            ReadRange::new(x.addr, &mut a),
            ReadRange::new(x.addr + 72, &mut b),
        ];
        let rs = t.get_bytes_multi(&mut ranges);
        assert_eq!(rs, vec![Ok(()), Ok(())]);
        assert_eq!(i32::from_le_bytes(a), 100);
        assert_eq!(i32::from_le_bytes(b), 9);
        assert_eq!(t.retries(), 1);
        // First attempt: 2 faultable ops; re-drive: only the flaked one.
        assert_eq!(t.inner_mut().operations(), 3);
    }
}
