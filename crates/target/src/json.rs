//! A minimal JSON reader/writer for capture files.
//!
//! The container has no serde, so the capture layer hand-rolls its
//! serialization. This module keeps the generic pieces: a
//! recursive-descent parser producing a small [`Json`] tree, plus
//! string-escaping helpers for the writer side. Numbers are kept as
//! their raw source text so 64-bit addresses round-trip without
//! passing through `f64`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as raw text to preserve full `u64`/`i64` range.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if it parses as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `i64`, if it parses as one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn fields(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses one complete JSON value from `text`, rejecting trailing
    /// garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(format!("bad number at byte {start}"));
        }
        Ok(Json::Num(
            String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
        ))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 sequence through unchanged.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8 in string")?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Escapes `s` as the body of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a quoted JSON string.
pub fn quote(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        let j = Json::parse(r#"{"a":1,"b":[true,null,"x\n"],"c":{"d":-7}}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_u64(), Some(1));
        let b = j.get("b").unwrap().items().unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2].as_str(), Some("x\n"));
        assert_eq!(j.get("c").unwrap().get("d").unwrap().as_i64(), Some(-7));
    }

    #[test]
    fn u64_precision_survives() {
        // 2^64 - 1 would be mangled by an f64 intermediate.
        let j = Json::parse(r#"{"addr":18446744073709551615}"#).unwrap();
        assert_eq!(j.get("addr").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π";
        let j = Json::parse(&format!("{{\"k\":{}}}", quote(nasty))).unwrap();
        assert_eq!(j.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
    }
}
