//! [`SupervisedTarget`] — backend liveness ownership for the tower.
//!
//! Retry (PR 1) absorbs *hiccups*; this layer handles a backend that
//! *stays* sick. It wraps the retrying stack with a three-state circuit
//! breaker and a pluggable [`Reconnect`] strategy:
//!
//! * **Closed** — every operation's outcome feeds a sliding failure
//!   window (plus an optional periodic health probe piggybacked every
//!   [`SupervisorConfig::probe_every`] operations). Faults — the
//!   debuggee's honest "no" — count as *successes* here: a backend that
//!   answers "illegal memory reference" is alive and well. Too many
//!   transient failures (rate over the window, or a consecutive run)
//!   trip the breaker.
//! * **Open** — mutating and control operations (`put_bytes`,
//!   `alloc_space`, `call_func`) fail fast with
//!   [`TargetError::CircuitOpen`] instead of waiting out another doomed
//!   round-trip. Reads are still forwarded when
//!   [`SupervisorConfig::degrade`] is on: a [`crate::CachedTarget`]
//!   below can serve them from its pages, and every read answered while
//!   the circuit is open is *marked stale* through the shared
//!   [`StalenessHandle`] (the evaluator renders such values with a
//!   `<stale>` tag). A read that would need the wire converts its
//!   transient failure into `CircuitOpen`.
//! * **Half-open** — once [`SupervisorConfig::cooldown`] has elapsed,
//!   the next operation first runs the [`Reconnect`] strategy
//!   (re-establish the backend, resync session state: cache epoch,
//!   symbols, type table — see [`ResyncReport`]) and then a health
//!   probe. Success closes the circuit; failure re-opens it and
//!   restarts the cooldown.
//!
//! The stacking order is `Trace<Supervised<Retry<Cached<Record<_>>>>>`:
//! supervision sits *outside* retry so a transient that reaches it has
//! already exhausted its retry budget — one window entry per operation,
//! not per attempt.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{TargetError, TargetResult};
use crate::iface::{CallValue, FrameInfo, ReadRange, Target, VarInfo};
use duel_ctype::{Abi, EnumId, RecordId, TypeId, TypeTable};

/// The circuit breaker's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CircuitState {
    /// Backend believed healthy; operations flow normally.
    Closed,
    /// Backend believed dead; fail fast / serve stale until cooldown.
    Open,
    /// Cooldown elapsed; the next operation attempts a reconnect.
    HalfOpen,
}

impl CircuitState {
    /// Lower-case label for `.stats` / `.health` output.
    pub fn name(self) -> &'static str {
        match self {
            CircuitState::Closed => "closed",
            CircuitState::Open => "open",
            CircuitState::HalfOpen => "half-open",
        }
    }
}

/// Tuning knobs for a [`SupervisedTarget`].
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Sliding window of recent operation outcomes used for the
    /// failure-rate trip condition.
    pub window: usize,
    /// Trip when at least this fraction of the window failed (once
    /// [`SupervisorConfig::min_samples`] outcomes are in it).
    pub trip_failure_rate: f64,
    /// Minimum outcomes in the window before the rate condition can
    /// trip (protects a fresh session from one early blip).
    pub min_samples: usize,
    /// Trip immediately after this many *consecutive* transient
    /// failures, regardless of the window (0 disables).
    pub trip_consecutive: u32,
    /// How long an open circuit waits before allowing a half-open
    /// reconnect attempt. `Duration::ZERO` makes the very next
    /// operation attempt recovery (what deterministic tests use).
    pub cooldown: Duration,
    /// While open, forward reads so the page cache below can answer
    /// them (marked stale). Off = every operation fails fast.
    pub degrade: bool,
    /// Piggyback a health probe after every Nth operation while closed
    /// (0 = only per-operation outcomes feed the breaker).
    pub probe_every: u64,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            window: 16,
            trip_failure_rate: 0.5,
            min_samples: 4,
            trip_consecutive: 3,
            cooldown: Duration::from_millis(250),
            degrade: true,
            probe_every: 0,
        }
    }
}

impl SupervisorConfig {
    /// A config for tests: trips after `n` consecutive failures and
    /// retries recovery on the very next operation (no real cooldown).
    pub fn fast(n: u32) -> SupervisorConfig {
        SupervisorConfig {
            trip_consecutive: n,
            cooldown: Duration::ZERO,
            ..SupervisorConfig::default()
        }
    }
}

/// Counters describing what a [`SupervisedTarget`] has seen and done.
/// Cumulative since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Supervised operations attempted (reads, writes, allocs, calls).
    pub operations: u64,
    /// Operations that came back with a transient failure.
    pub failures: u64,
    /// Health probes run (periodic, piggybacked, or explicit).
    pub probes: u64,
    /// Probes that found the backend sick.
    pub probe_failures: u64,
    /// Closed → open transitions.
    pub trips: u64,
    /// Successful reconnect + resync cycles (half-open → closed).
    pub reconnects: u64,
    /// Reconnect attempts that failed (half-open → open again).
    pub reconnect_failures: u64,
    /// Operations rejected immediately with
    /// [`TargetError::CircuitOpen`] while the breaker was open.
    pub fast_fails: u64,
    /// Reads answered while the circuit was open (served stale).
    pub stale_reads: u64,
}

/// What a [`Reconnect::reconnect`] resync re-established, for `.health`
/// output and post-mortem logs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResyncReport {
    /// Symbols re-resolved and verified against the new backend.
    pub symbols: usize,
    /// Stack frames visible after the resync.
    pub frames: usize,
    /// Whether the type-table snapshot matched the reconnected
    /// backend's view (a mismatch means the debuggee was rebuilt).
    pub type_table_ok: bool,
    /// Human-readable summary ("respawned MI process", …).
    pub detail: String,
}

impl ResyncReport {
    /// Renders the report as one `.health` line.
    pub fn render(&self) -> String {
        format!(
            "resync: {} symbols, {} frames, type table {}{}{}",
            self.symbols,
            self.frames,
            if self.type_table_ok {
                "verified"
            } else {
                "MISMATCH"
            },
            if self.detail.is_empty() { "" } else { " — " },
            self.detail
        )
    }
}

/// How a [`SupervisedTarget`] checks and restores backend liveness.
///
/// `probe` must be cheap and side-effect free; `reconnect` may be
/// expensive (respawn a process, re-handshake, resync session state).
/// Both receive the *wrapped* tower, so a concrete strategy written
/// against the concrete tower type can drill down to the cache layer
/// (epoch invalidation) or the raw backend (respawn).
pub trait Reconnect<T: Target>: Send {
    /// Checks liveness. A *fault* reply proves the backend is alive
    /// (it answered); only transport-level failures mean sickness.
    fn probe(&mut self, inner: &mut T) -> TargetResult<()>;

    /// Re-establishes the backend and resyncs session state. `Ok`
    /// means the tower is usable again.
    fn reconnect(&mut self, inner: &mut T) -> TargetResult<ResyncReport>;
}

/// The canonical probe address: intentionally *unmapped* (below
/// [`crate::sim::ARENA_BASE`] and any realistic text segment). The
/// fault reply is the liveness signal, and because a failed page fetch
/// is never cached, a [`crate::CachedTarget`] below can never mask a
/// dead wire by answering the probe from a cached page.
pub const DEFAULT_PROBE_ADDR: u64 = 0x10;

/// The default [`Reconnect`]: probes by reading one byte at a known
/// address (a fault reply counts as alive) and "reconnects" by probing
/// — the right strategy for in-process backends that heal themselves
/// (a revived chaos target, a recovered pipe).
#[derive(Clone, Debug)]
pub struct ProbeReconnect {
    /// Address probed with a 1-byte read; defaults to
    /// [`DEFAULT_PROBE_ADDR`].
    pub probe_addr: u64,
}

impl Default for ProbeReconnect {
    fn default() -> ProbeReconnect {
        ProbeReconnect {
            probe_addr: DEFAULT_PROBE_ADDR,
        }
    }
}

/// Runs the canonical 1-byte liveness probe against any target:
/// `Ok`/fault = alive, transient = sick. Concrete [`Reconnect`]
/// strategies reuse this.
pub fn probe_read<T: Target>(inner: &mut T, addr: u64) -> TargetResult<()> {
    let mut b = [0u8; 1];
    match inner.get_bytes(addr, &mut b) {
        Ok(()) => Ok(()),
        Err(e) if e.is_fault() => Ok(()),
        Err(e) => Err(e),
    }
}

impl<T: Target> Reconnect<T> for ProbeReconnect {
    fn probe(&mut self, inner: &mut T) -> TargetResult<()> {
        probe_read(inner, self.probe_addr)
    }

    fn reconnect(&mut self, inner: &mut T) -> TargetResult<ResyncReport> {
        self.probe(inner)?;
        Ok(ResyncReport {
            symbols: 0,
            frames: inner.frame_count(),
            type_table_ok: true,
            detail: "probe-only reconnect (in-process backend)".to_string(),
        })
    }
}

struct StaleShared {
    /// Reads served while the circuit was open (monotonic).
    stale_reads: AtomicU64,
    /// 1 while the owning breaker is open/half-open, 0 when closed.
    degraded: AtomicU64,
}

/// A cloneable view onto a [`SupervisedTarget`]'s staleness state.
///
/// Like [`crate::trace::TraceHandle`], the handle outlives borrows of
/// the tower, which lets the evaluator diff the stale-read counter
/// around each produced value while holding only `&mut dyn Target` —
/// the mechanism behind the `<stale>` value tag.
#[derive(Clone)]
pub struct StalenessHandle(Arc<StaleShared>);

impl Default for StalenessHandle {
    fn default() -> StalenessHandle {
        StalenessHandle::new()
    }
}

impl std::fmt::Debug for StalenessHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StalenessHandle")
            .field("stale_reads", &self.stale_reads())
            .field("degraded", &self.is_degraded())
            .finish()
    }
}

impl StalenessHandle {
    /// A fresh handle: no stale reads, not degraded.
    pub fn new() -> StalenessHandle {
        StalenessHandle(Arc::new(StaleShared {
            stale_reads: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }))
    }

    /// Total reads served while the circuit was open (monotonic — diff
    /// it across a span to learn whether that span saw stale data).
    pub fn stale_reads(&self) -> u64 {
        self.0.stale_reads.load(Ordering::Relaxed)
    }

    /// Whether the owning breaker is currently non-closed.
    pub fn is_degraded(&self) -> bool {
        self.0.degraded.load(Ordering::Relaxed) != 0
    }

    fn mark_stale(&self) {
        self.0.stale_reads.fetch_add(1, Ordering::Relaxed);
    }

    fn set_degraded(&self, on: bool) {
        self.0.degraded.store(u64::from(on), Ordering::Relaxed);
    }
}

/// Whether an operation may be served stale while the circuit is open.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OpClass {
    /// `get_bytes` — degradable: the cache below may answer it.
    Read,
    /// Writes, allocs, calls — must fail fast while open.
    Mutate,
}

/// A [`Target`] decorator that owns backend liveness: health probes, a
/// circuit breaker, reconnection with session resync, and degraded
/// stale reads. See the module docs for the state machine.
pub struct SupervisedTarget<T: Target> {
    inner: T,
    cfg: SupervisorConfig,
    strategy: Box<dyn Reconnect<T>>,
    state: CircuitState,
    /// Recent outcomes, `true` = transient failure.
    window: VecDeque<bool>,
    /// Failures currently inside `window`, so the hot path never scans.
    window_failures: usize,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    stats: SupervisorStats,
    staleness: StalenessHandle,
    last_resync: Option<ResyncReport>,
    last_failure: Option<String>,
    /// Shared span timeline (installed by the trace layer above);
    /// breaker trips, fast-fails, stale serves and recoveries become
    /// instant `supervise` markers under the causing node's span.
    spans: Option<crate::span::SpanContext>,
}

impl<T: Target> std::fmt::Debug for SupervisedTarget<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedTarget")
            .field("state", &self.state)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<T: Target> SupervisedTarget<T> {
    /// Wraps `inner` with the default config and the probe-only
    /// reconnect strategy.
    pub fn new(inner: T) -> SupervisedTarget<T> {
        SupervisedTarget::with_config(inner, SupervisorConfig::default())
    }

    /// Wraps `inner` with an explicit config (probe-only reconnect).
    pub fn with_config(inner: T, cfg: SupervisorConfig) -> SupervisedTarget<T> {
        SupervisedTarget::with_strategy(inner, cfg, Box::new(ProbeReconnect::default()))
    }

    /// Wraps `inner` with an explicit config and reconnect strategy.
    pub fn with_strategy(
        inner: T,
        cfg: SupervisorConfig,
        strategy: Box<dyn Reconnect<T>>,
    ) -> SupervisedTarget<T> {
        SupervisedTarget {
            inner,
            cfg,
            strategy,
            state: CircuitState::Closed,
            window: VecDeque::new(),
            window_failures: 0,
            consecutive_failures: 0,
            opened_at: None,
            stats: SupervisorStats::default(),
            staleness: StalenessHandle::new(),
            last_resync: None,
            last_failure: None,
            spans: None,
        }
    }

    /// Drops an instant `supervise` marker on the span timeline.
    fn span_mark(&self, name: &'static str, detail: impl FnOnce() -> String) {
        if let Some(s) = &self.spans {
            s.instant(crate::span::SpanKind::Supervise, name, detail);
        }
    }

    /// The wrapped target.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the wrapped target.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// The breaker's current state.
    pub fn state(&self) -> CircuitState {
        self.state
    }

    /// The counter set accumulated so far (stale reads included).
    pub fn stats(&self) -> SupervisorStats {
        SupervisorStats {
            stale_reads: self.staleness.stale_reads(),
            ..self.stats
        }
    }

    /// The staleness view shared with the evaluator.
    pub fn staleness(&self) -> StalenessHandle {
        self.staleness.clone()
    }

    /// The most recent successful resync, if any.
    pub fn last_resync(&self) -> Option<&ResyncReport> {
        self.last_resync.as_ref()
    }

    /// The most recent transient failure message, if any.
    pub fn last_failure(&self) -> Option<&str> {
        self.last_failure.as_deref()
    }

    /// The active config.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// Turns degraded stale-read mode on or off (the `.set degrade`
    /// command).
    pub fn set_degrade(&mut self, on: bool) {
        self.cfg.degrade = on;
    }

    /// Runs an explicit health probe, feeding the breaker exactly like
    /// an operation outcome (the `.health` command). While open, this
    /// fails fast until the cooldown has elapsed, then attempts
    /// recovery.
    pub fn health_check(&mut self) -> TargetResult<()> {
        match self.state {
            CircuitState::Closed => {
                self.stats.probes += 1;
                match self.strategy.probe(&mut self.inner) {
                    Ok(()) => {
                        self.record_success();
                        Ok(())
                    }
                    Err(e) => {
                        self.stats.probe_failures += 1;
                        self.last_failure = Some(e.to_string());
                        self.record_failure();
                        Err(e)
                    }
                }
            }
            CircuitState::Open | CircuitState::HalfOpen => {
                if !self.cooldown_elapsed() {
                    self.stats.fast_fails += 1;
                    return Err(self.circuit_open_error());
                }
                self.try_recover().map(|_| ())
            }
        }
    }

    /// Forces a reconnect + resync attempt right now, regardless of
    /// breaker state or cooldown. Success closes the circuit.
    pub fn force_reconnect(&mut self) -> TargetResult<ResyncReport> {
        self.try_recover()
    }

    fn cooldown_elapsed(&self) -> bool {
        match self.opened_at {
            Some(t) => t.elapsed() >= self.cfg.cooldown,
            None => true,
        }
    }

    fn circuit_open_error(&self) -> TargetError {
        let retry_in_ms = match self.opened_at {
            Some(t) => {
                let waited = t.elapsed();
                self.cfg
                    .cooldown
                    .saturating_sub(waited)
                    .as_millis()
                    .min(u64::MAX as u128) as u64
            }
            None => 0,
        };
        TargetError::CircuitOpen { retry_in_ms }
    }

    fn push_outcome(&mut self, failed: bool) {
        self.window.push_back(failed);
        self.window_failures += usize::from(failed);
        while self.window.len() > self.cfg.window.max(1) {
            if self.window.pop_front() == Some(true) {
                self.window_failures -= 1;
            }
        }
    }

    fn record_success(&mut self) {
        self.consecutive_failures = 0;
        // Hot path: a saturated all-green window stays a saturated
        // all-green window, so there is nothing to rotate.
        if self.window_failures == 0 && self.window.len() >= self.cfg.window.max(1) {
            return;
        }
        self.push_outcome(false);
    }

    /// Records a transient outcome and trips the breaker when either
    /// condition (consecutive run, window rate) is met.
    fn record_failure(&mut self) {
        self.stats.failures += 1;
        self.consecutive_failures += 1;
        self.push_outcome(true);
        let consecutive_trip =
            self.cfg.trip_consecutive > 0 && self.consecutive_failures >= self.cfg.trip_consecutive;
        let failed = self.window_failures;
        let rate_trip = self.window.len() >= self.cfg.min_samples.max(1)
            && (failed as f64) >= self.cfg.trip_failure_rate * self.window.len() as f64;
        if consecutive_trip || rate_trip {
            self.trip();
        }
    }

    fn trip(&mut self) {
        self.state = CircuitState::Open;
        self.stats.trips += 1;
        self.opened_at = Some(Instant::now());
        self.staleness.set_degraded(true);
        let (fails, window) = (self.window_failures, self.window.len());
        let consecutive = self.consecutive_failures;
        self.span_mark("breaker-trip", || {
            format!("{fails}/{window} in window, {consecutive} consecutive")
        });
    }

    /// Half-open: reconnect + resync + probe. Success closes the
    /// circuit; failure re-opens it and restarts the cooldown.
    fn try_recover(&mut self) -> TargetResult<ResyncReport> {
        self.state = CircuitState::HalfOpen;
        match self.strategy.reconnect(&mut self.inner) {
            Ok(report) => {
                self.stats.probes += 1;
                match self.strategy.probe(&mut self.inner) {
                    Ok(()) => {
                        self.state = CircuitState::Closed;
                        self.stats.reconnects += 1;
                        self.opened_at = None;
                        self.window.clear();
                        self.window_failures = 0;
                        self.consecutive_failures = 0;
                        self.staleness.set_degraded(false);
                        self.last_resync = Some(report.clone());
                        self.span_mark("recovered", || {
                            format!("resync: {} symbols", report.symbols)
                        });
                        Ok(report)
                    }
                    Err(e) => {
                        self.stats.probe_failures += 1;
                        self.reopen(&e);
                        Err(e)
                    }
                }
            }
            Err(e) => {
                self.reopen(&e);
                Err(TargetError::BackendDown(format!("reconnect failed: {e}")))
            }
        }
    }

    fn reopen(&mut self, e: &TargetError) {
        self.stats.reconnect_failures += 1;
        self.last_failure = Some(e.to_string());
        self.state = CircuitState::Open;
        self.opened_at = Some(Instant::now());
        self.staleness.set_degraded(true);
    }

    fn run<R>(
        &mut self,
        class: OpClass,
        mut op: impl FnMut(&mut T) -> TargetResult<R>,
    ) -> TargetResult<R> {
        self.stats.operations += 1;
        match self.state {
            CircuitState::Closed => {}
            CircuitState::Open | CircuitState::HalfOpen => {
                if self.cooldown_elapsed() {
                    if self.try_recover().is_err() {
                        return self.degraded(class, op);
                    }
                    // Recovered: fall through to the closed path.
                } else {
                    return self.degraded(class, op);
                }
            }
        }
        let r = op(&mut self.inner);
        match &r {
            Ok(_) => self.record_success(),
            Err(e) if e.is_transient() => {
                self.last_failure = Some(e.to_string());
                self.record_failure();
            }
            // A fault is the debuggee's honest answer: the backend is
            // alive, so it counts as a healthy outcome.
            Err(_) => self.record_success(),
        }
        if self.state == CircuitState::Closed
            && self.cfg.probe_every > 0
            && self.stats.operations.is_multiple_of(self.cfg.probe_every)
        {
            self.stats.probes += 1;
            if let Err(e) = self.strategy.probe(&mut self.inner) {
                self.stats.probe_failures += 1;
                self.last_failure = Some(e.to_string());
                self.record_failure();
            } else {
                self.record_success();
            }
        }
        r
    }

    /// The open-circuit path: reads may still be served (stale) by the
    /// cache below; everything else fails fast.
    fn degraded<R>(
        &mut self,
        class: OpClass,
        mut op: impl FnMut(&mut T) -> TargetResult<R>,
    ) -> TargetResult<R> {
        if class == OpClass::Mutate || !self.cfg.degrade {
            self.stats.fast_fails += 1;
            self.span_mark("fast-fail", || "circuit open".to_string());
            return Err(self.circuit_open_error());
        }
        match op(&mut self.inner) {
            Ok(r) => {
                self.staleness.mark_stale();
                self.span_mark("stale-read", || "served from cache, degraded".to_string());
                Ok(r)
            }
            Err(e) if e.is_transient() => {
                // The read missed the cache and needed the dead wire.
                self.stats.fast_fails += 1;
                self.last_failure = Some(e.to_string());
                self.span_mark("fast-fail", || "cache miss on dead wire".to_string());
                Err(self.circuit_open_error())
            }
            Err(e) => Err(e),
        }
    }

    /// The open-circuit path for a vectored read: each range is judged
    /// on its own — cache-served ranges come back stale, ranges that
    /// needed the dead wire become [`TargetError::CircuitOpen`].
    fn degraded_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        if !self.cfg.degrade {
            self.stats.fast_fails += 1;
            self.span_mark("fast-fail", || {
                format!("circuit open, {} ranges", ranges.len())
            });
            let e = self.circuit_open_error();
            return ranges.iter().map(|_| Err(e.clone())).collect();
        }
        let results = self.inner.get_bytes_multi(ranges);
        results
            .into_iter()
            .map(|r| match r {
                Ok(()) => {
                    self.staleness.mark_stale();
                    Ok(())
                }
                Err(e) if e.is_transient() => {
                    self.stats.fast_fails += 1;
                    self.last_failure = Some(e.to_string());
                    Err(self.circuit_open_error())
                }
                Err(e) => Err(e),
            })
            .collect()
    }
}

impl<T: Target> Target for SupervisedTarget<T> {
    fn abi(&self) -> &Abi {
        self.inner.abi()
    }

    fn types(&self) -> &TypeTable {
        self.inner.types()
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        self.inner.types_mut()
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        self.run(OpClass::Read, |t| t.get_bytes(addr, buf))
    }

    fn get_bytes_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        // One batch = one supervised operation: the breaker sees a
        // failure if any range came back transient, a success otherwise
        // (faults are the debuggee's honest answer, as in `run`).
        self.stats.operations += 1;
        match self.state {
            CircuitState::Closed => {}
            CircuitState::Open | CircuitState::HalfOpen => {
                if self.cooldown_elapsed() {
                    if self.try_recover().is_err() {
                        return self.degraded_multi(ranges);
                    }
                    // Recovered: fall through to the closed path.
                } else {
                    return self.degraded_multi(ranges);
                }
            }
        }
        let results = self.inner.get_bytes_multi(ranges);
        let first_transient = results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .find(|e| e.is_transient());
        match first_transient {
            Some(e) => {
                self.last_failure = Some(e.to_string());
                self.record_failure();
            }
            None => self.record_success(),
        }
        if self.state == CircuitState::Closed
            && self.cfg.probe_every > 0
            && self.stats.operations.is_multiple_of(self.cfg.probe_every)
        {
            self.stats.probes += 1;
            if let Err(e) = self.strategy.probe(&mut self.inner) {
                self.stats.probe_failures += 1;
                self.last_failure = Some(e.to_string());
                self.record_failure();
            } else {
                self.record_success();
            }
        }
        results
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        self.run(OpClass::Mutate, |t| t.put_bytes(addr, bytes))
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        self.run(OpClass::Mutate, |t| t.alloc_space(size, align))
    }

    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        self.run(OpClass::Mutate, |t| t.call_func(name, args))
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        self.inner.get_variable(name)
    }

    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
        self.inner.get_variable_in_frame(name, frame)
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        self.inner.lookup_typedef(name)
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        self.inner.lookup_struct(tag)
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        self.inner.lookup_union(tag)
    }

    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
        self.inner.lookup_enum(tag)
    }

    fn has_function(&mut self, name: &str) -> bool {
        self.inner.has_function(name)
    }

    fn frame_count(&mut self) -> usize {
        self.inner.frame_count()
    }

    fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
        self.inner.frame_info(n)
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        self.inner.is_mapped(addr, len)
    }

    fn take_output(&mut self) -> String {
        self.inner.take_output()
    }

    fn trace_handle(&self) -> Option<crate::trace::TraceHandle> {
        self.inner.trace_handle()
    }

    fn set_span_context(&mut self, spans: &crate::span::SpanContext) {
        self.spans = Some(spans.clone());
        self.inner.set_span_context(spans);
    }

    fn span_context(&self) -> Option<crate::span::SpanContext> {
        self.inner.span_context()
    }

    fn staleness_handle(&self) -> Option<StalenessHandle> {
        Some(self.staleness.clone())
    }

    fn prefetch_submit(&mut self, ranges: &[(u64, u64)]) -> bool {
        self.inner.prefetch_submit(ranges)
    }

    fn prefetch_poll(&mut self) -> Option<crate::iface::PrefetchCompletion> {
        let c = self.inner.prefetch_poll()?;
        // A completed window is backend health evidence like any other
        // wire op: feed the breaker window so a backend that only fails
        // asynchronous reads still trips the circuit.
        if c.failed > 0 {
            self.record_failure();
        } else if c.ranges > 0 {
            self.record_success();
        }
        Some(c)
    }

    fn cache_page_size(&self) -> Option<u64> {
        self.inner.cache_page_size()
    }

    fn pipeline_handle(&self) -> Option<crate::pipeline::PipelineHandle> {
        self.inner.pipeline_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedTarget;
    use crate::chaos::{ChaosHandle, ChaosTarget};
    use crate::scenario;
    use crate::SimTarget;

    type ChaosTower = CachedTarget<ChaosTarget<SimTarget>>;

    /// Reconnect strategy whose "respawn" revives the chaos gate — the
    /// in-process analogue of respawning a dead MI process.
    struct ChaosRevive {
        handle: ChaosHandle,
    }

    impl<T: Target> Reconnect<T> for ChaosRevive {
        fn probe(&mut self, inner: &mut T) -> TargetResult<()> {
            probe_read(inner, DEFAULT_PROBE_ADDR)
        }

        fn reconnect(&mut self, inner: &mut T) -> TargetResult<ResyncReport> {
            self.handle.revive();
            probe_read(inner, DEFAULT_PROBE_ADDR)?;
            Ok(ResyncReport {
                symbols: 1,
                frames: inner.frame_count(),
                type_table_ok: true,
                detail: "chaos gate revived".into(),
            })
        }
    }

    /// A tower whose reconnect strategy actually heals the backend.
    fn revive_tower() -> (SupervisedTarget<ChaosTower>, ChaosHandle) {
        let chaos = ChaosTarget::new(scenario::scan_array());
        let handle = chaos.handle();
        let cached = CachedTarget::new(chaos);
        let sup = SupervisedTarget::with_strategy(
            cached,
            SupervisorConfig::fast(2),
            Box::new(ChaosRevive {
                handle: handle.clone(),
            }),
        );
        (sup, handle)
    }

    /// A tower whose reconnect strategy is probe-only: while the chaos
    /// gate is dead, every recovery attempt fails and the breaker stays
    /// open — the setup for degraded-mode tests.
    fn dead_tower() -> (SupervisedTarget<ChaosTower>, ChaosHandle) {
        let chaos = ChaosTarget::new(scenario::scan_array());
        let handle = chaos.handle();
        let cached = CachedTarget::new(chaos);
        let sup = SupervisedTarget::with_config(cached, SupervisorConfig::fast(2));
        (sup, handle)
    }

    #[test]
    fn closed_circuit_is_transparent() {
        let (mut t, _) = dead_tower();
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 7);
        assert_eq!(t.state(), CircuitState::Closed);
        assert_eq!(t.stats().trips, 0);
    }

    #[test]
    fn faults_do_not_trip_the_breaker() {
        let (mut t, _) = dead_tower();
        let mut buf = [0u8; 4];
        for _ in 0..10 {
            assert!(matches!(
                t.get_bytes(0x10, &mut buf),
                Err(TargetError::IllegalMemory { .. })
            ));
        }
        assert_eq!(t.state(), CircuitState::Closed, "faults prove liveness");
    }

    #[test]
    fn consecutive_transients_trip_then_writes_fail_fast() {
        let (mut t, chaos) = dead_tower();
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap(); // warm the page
        chaos.kill();
        // Uncached reads fail transiently until the breaker trips.
        for _ in 0..2 {
            assert!(t.get_bytes(0x20_000, &mut [0u8; 1]).is_err());
        }
        assert_eq!(t.state(), CircuitState::Open);
        // Cooldown ZERO: the write first attempts recovery (probe-only,
        // still dead, fails) and then must fail fast.
        let err = t.put_bytes(x.addr, &buf).unwrap_err();
        assert!(matches!(err, TargetError::CircuitOpen { .. }), "{err}");
        assert!(err.is_fault(), "fail-fast errors are faults: {err}");
        assert!(t.stats().reconnect_failures >= 1);
    }

    #[test]
    fn degraded_reads_serve_cached_pages_marked_stale() {
        let (mut t, chaos) = dead_tower();
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap(); // cache the page
        assert_eq!(i32::from_le_bytes(buf), 7);
        chaos.kill();
        for _ in 0..2 {
            let _ = t.get_bytes(0x20_000, &mut [0u8; 1]);
        }
        assert_eq!(t.state(), CircuitState::Open);
        let stale_before = t.staleness().stale_reads();
        // Each op first attempts recovery (fails: the gate is still
        // dead), then degrades — and the cached page still answers.
        let mut buf2 = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf2).unwrap();
        assert_eq!(buf2, buf, "stale read must serve the cached bytes");
        assert!(t.staleness().stale_reads() > stale_before);
        assert!(t.staleness().is_degraded());
        // A read that misses the cache converts to CircuitOpen.
        let err = t.get_bytes(0x30_000, &mut [0u8; 1]).unwrap_err();
        assert!(matches!(err, TargetError::CircuitOpen { .. }), "{err}");
    }

    #[test]
    fn degrade_off_fails_all_reads_fast() {
        let (mut t, chaos) = dead_tower();
        t.set_degrade(false);
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr, &mut buf).unwrap();
        chaos.kill();
        for _ in 0..2 {
            let _ = t.get_bytes(0x20_000, &mut [0u8; 1]);
        }
        assert_eq!(t.state(), CircuitState::Open);
        let err = t.get_bytes(x.addr, &mut buf).unwrap_err();
        assert!(matches!(err, TargetError::CircuitOpen { .. }), "{err}");
        assert_eq!(t.staleness().stale_reads(), 0);
    }

    #[test]
    fn breaker_recovers_through_half_open_to_closed() {
        let (mut t, chaos) = revive_tower();
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        chaos.kill();
        for _ in 0..2 {
            let _ = t.get_bytes(0x20_000, &mut [0u8; 1]);
        }
        assert_eq!(t.state(), CircuitState::Open);
        assert_eq!(t.stats().trips, 1);
        // The next operation goes half-open, the strategy revives the
        // chaos gate, probe succeeds, circuit closes, op runs live.
        let mut buf2 = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf2).unwrap();
        assert_eq!(buf2, buf);
        assert_eq!(t.state(), CircuitState::Closed);
        let s = t.stats();
        assert_eq!(s.reconnects, 1);
        assert!(t.last_resync().unwrap().type_table_ok);
        assert!(!t.staleness().is_degraded());
    }

    #[test]
    fn failure_rate_window_trips_without_consecutive_run() {
        let chaos = ChaosTarget::new(scenario::scan_array());
        let handle = chaos.handle();
        let mut t = SupervisedTarget::with_config(
            chaos,
            SupervisorConfig {
                window: 8,
                min_samples: 4,
                trip_failure_rate: 0.5,
                trip_consecutive: 0, // rate condition only
                cooldown: Duration::from_secs(3600),
                ..SupervisorConfig::default()
            },
        );
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        // Alternate success / transient: the rate hits 50% without any
        // run of consecutive failures.
        for _ in 0..4 {
            handle.revive();
            let _ = t.get_bytes(x.addr, &mut buf);
            handle.kill();
            let _ = t.get_bytes(x.addr, &mut [0u8; 1]);
        }
        assert_eq!(t.state(), CircuitState::Open);
        assert_eq!(t.stats().trips, 1);
    }

    #[test]
    fn health_check_reports_and_recovers() {
        let (mut t, chaos) = revive_tower();
        assert!(t.health_check().is_ok());
        assert_eq!(t.stats().probes, 1);
        chaos.kill();
        assert!(t.health_check().is_err());
        assert!(t.health_check().is_err());
        assert_eq!(t.state(), CircuitState::Open, "probe failures trip too");
        // Cooldown ZERO: the next health check attempts recovery, and
        // the strategy revives the gate.
        assert!(t.health_check().is_ok());
        assert_eq!(t.state(), CircuitState::Closed);
        assert_eq!(t.stats().reconnects, 1);
    }

    #[test]
    fn force_reconnect_closes_an_open_circuit() {
        let (mut t, chaos) = revive_tower();
        chaos.kill();
        let _ = t.health_check();
        let _ = t.health_check();
        assert_eq!(t.state(), CircuitState::Open);
        let report = t.force_reconnect().unwrap();
        assert!(report.type_table_ok);
        assert_eq!(t.state(), CircuitState::Closed);
    }

    #[test]
    fn staleness_handle_is_discoverable_through_dyn_target() {
        let (t, _) = dead_tower();
        let dyn_t: &dyn Target = &t;
        assert!(dyn_t.staleness_handle().is_some());
        let plain = scenario::scan_array();
        let dyn_plain: &dyn Target = &plain;
        assert!(dyn_plain.staleness_handle().is_none());
    }

    #[test]
    fn periodic_probe_detects_a_silently_dead_backend() {
        let chaos = ChaosTarget::new(scenario::scan_array());
        let handle = chaos.handle();
        let cached = CachedTarget::new(chaos);
        let mut t = SupervisedTarget::with_config(
            cached,
            SupervisorConfig {
                probe_every: 1,
                // Cache hits land a success between every pair of
                // probes, so a consecutive-run threshold above 1 can
                // never accumulate; one failed probe is direct
                // evidence the wire is dead.
                trip_consecutive: 1,
                cooldown: Duration::from_secs(3600),
                ..SupervisorConfig::default()
            },
        );
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap(); // page now cached
        handle.kill();
        // Cache hits would hide the death forever; the piggybacked
        // probe reads an unmapped (never cached) address, so it reaches
        // the dead gate and trips the breaker.
        let _ = t.get_bytes(x.addr + 12, &mut buf);
        assert_eq!(t.state(), CircuitState::Open);
        assert!(t.stats().probe_failures >= 1);
    }
}
