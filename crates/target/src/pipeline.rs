//! [`AsyncTarget`] — the I/O actor behind the asynchronous wire
//! pipeline.
//!
//! Every layer above this one is synchronous: a read blocks the
//! evaluator until the wire answers. On a real debugger link the wire
//! turn is the dominant cost (the paper's "one value per eval call"
//! protocol), so the tower idles in alternation — the evaluator waits
//! on the wire, then the wire waits on the evaluator. `AsyncTarget`
//! breaks the alternation: it moves the innermost backend (the
//! `SimTarget`/MI transport plus its fault/chaos wrappers) onto a
//! dedicated worker thread behind a request/reply channel, and exposes
//!
//! * the blocking [`Target`] API unchanged (each call becomes one
//!   closure shipped to the worker, replied on a per-call channel), and
//! * a non-blocking [`Target::read_submit`] / [`Target::read_poll`]
//!   pair: an owned-buffer vectored read goes on the wire *now* while
//!   the caller keeps evaluating, and is reclaimed later.
//!
//! Because the worker drains one FIFO, wire order equals submission
//! order: a synchronous call issued after a submit is ordered behind
//! the in-flight read, and tickets complete oldest-first. That ordering
//! is what keeps record→strict-replay byte-identical when the layers
//! above record completions at poll time.
//!
//! ## Ownership of the type table
//!
//! [`Target::abi`]/[`Target::types`]/[`Target::types_mut`] return
//! references, which cannot cross a thread boundary per call. The
//! front side therefore keeps a *mirror*: a clone of the ABI and a
//! [`TypeTable`] reconstructed from the backend's snapshot. Memory
//! operations never touch the table; only symbol-shaped operations
//! (variable/type lookups, calls, frames) can intern types on the
//! worker side, and the evaluator interns derived types on the front
//! side between them. The mirror protocol exploits that only one side
//! grows between syncs: a symbol RPC ships the front table down when
//! the front has grown (the worker's table is always a prefix of the
//! front's, so raw ids survive the replacement) and ships the worker
//! table back up when the op made it grow. Mode transitions
//! (`.set pipeline on|off`) drain the queue, join the worker, and write
//! the front table into the recovered backend.
//!
//! ## Spans
//!
//! The span context installed from above stays on the front side; it is
//! *not* forwarded into the worker, so the shared span stack never
//! interleaves two threads. Submits, completions and queue depth are
//! recorded as front-side `pipeline` instants instead.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Instant;

use crate::error::TargetResult;
use crate::iface::{CallValue, FrameInfo, OwnedRange, PipelineTicket, ReadRange, Target, VarInfo};
use crate::span::{SpanContext, SpanKind};
use crate::supervise::StalenessHandle;
use crate::trace::TraceHandle;
use duel_ctype::{Abi, EnumId, RecordId, TypeId, TypeTable};

/// Counter snapshot of a [`PipelineHandle`]. Cumulative since
/// construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Whether the actor is currently running (pipeline on).
    pub async_on: bool,
    /// Vectored reads submitted asynchronously.
    pub submits: u64,
    /// Submissions completed (polled).
    pub completions: u64,
    /// Ranges that read cleanly across all completions.
    pub ranges_clean: u64,
    /// Ranges that came back with an error.
    pub ranges_failed: u64,
    /// Bytes carried by clean ranges.
    pub bytes: u64,
    /// Nanoseconds pollers spent blocked waiting for in-flight reads.
    pub wait_ns: u64,
    /// Nanoseconds reads were in flight while the caller kept working —
    /// the overlap the pipeline bought.
    pub overlap_ns: u64,
    /// Reads currently in flight.
    pub queue_depth: u64,
    /// Highest queue depth observed.
    pub max_queue_depth: u64,
}

struct PipelineShared {
    async_on: AtomicBool,
    submits: AtomicU64,
    completions: AtomicU64,
    ranges_clean: AtomicU64,
    ranges_failed: AtomicU64,
    bytes: AtomicU64,
    wait_ns: AtomicU64,
    overlap_ns: AtomicU64,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
}

/// A cloneable view onto one [`AsyncTarget`]'s counters.
///
/// Like [`TraceHandle`], the handle outlives borrows of the tower: the
/// evaluator diffs `overlap_ns`/`submits` around an evaluation while
/// holding only `&mut dyn Target` (via [`Target::pipeline_handle`]).
#[derive(Clone)]
pub struct PipelineHandle(Arc<PipelineShared>);

impl Default for PipelineHandle {
    fn default() -> PipelineHandle {
        PipelineHandle::new()
    }
}

impl std::fmt::Debug for PipelineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineHandle")
            .field("async_on", &self.is_async())
            .field("submits", &self.0.submits.load(Ordering::Relaxed))
            .finish()
    }
}

impl PipelineHandle {
    /// A fresh handle: no submissions, actor off.
    pub fn new() -> PipelineHandle {
        PipelineHandle(Arc::new(PipelineShared {
            async_on: AtomicBool::new(false),
            submits: AtomicU64::new(0),
            completions: AtomicU64::new(0),
            ranges_clean: AtomicU64::new(0),
            ranges_failed: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            overlap_ns: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
        }))
    }

    /// Whether the owning target currently runs its backend on the
    /// worker thread.
    pub fn is_async(&self) -> bool {
        self.0.async_on.load(Ordering::Relaxed)
    }

    /// Asynchronous submissions so far (monotonic — diff it across an
    /// evaluation to count that evaluation's in-flight windows).
    pub fn submits(&self) -> u64 {
        self.0.submits.load(Ordering::Relaxed)
    }

    /// Cumulative overlap bought by the pipeline, in nanoseconds.
    pub fn overlap_ns(&self) -> u64 {
        self.0.overlap_ns.load(Ordering::Relaxed)
    }

    /// Snapshots every counter.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            async_on: self.is_async(),
            submits: self.0.submits.load(Ordering::Relaxed),
            completions: self.0.completions.load(Ordering::Relaxed),
            ranges_clean: self.0.ranges_clean.load(Ordering::Relaxed),
            ranges_failed: self.0.ranges_failed.load(Ordering::Relaxed),
            bytes: self.0.bytes.load(Ordering::Relaxed),
            wait_ns: self.0.wait_ns.load(Ordering::Relaxed),
            overlap_ns: self.0.overlap_ns.load(Ordering::Relaxed),
            queue_depth: self.0.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.0.max_queue_depth.load(Ordering::Relaxed),
        }
    }

    fn on_submit(&self) {
        self.0.submits.fetch_add(1, Ordering::Relaxed);
        let depth = self.0.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.0.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    fn on_complete(&self, clean: u64, failed: u64, bytes: u64, wait_ns: u64, overlap_ns: u64) {
        self.0.completions.fetch_add(1, Ordering::Relaxed);
        self.0.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.0.ranges_clean.fetch_add(clean, Ordering::Relaxed);
        self.0.ranges_failed.fetch_add(failed, Ordering::Relaxed);
        self.0.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.0.wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        self.0.overlap_ns.fetch_add(overlap_ns, Ordering::Relaxed);
    }
}

/// One unit of work shipped to the worker thread.
type Job<T> = Box<dyn FnOnce(&mut T) + Send>;

/// Runs an owned-buffer vectored read against `t` and hands the filled
/// buffers back (the body of both the blocking multi RPC and an
/// asynchronous submission; also the cache's synchronous fallback when
/// no actor is below it).
pub(crate) fn run_multi<T: Target + ?Sized>(
    t: &mut T,
    mut owned: Vec<OwnedRange>,
) -> Vec<(OwnedRange, TargetResult<()>)> {
    let mut views: Vec<ReadRange<'_>> = owned
        .iter_mut()
        .map(|o| ReadRange::new(o.addr, &mut o.buf))
        .collect();
    let results = t.get_bytes_multi(&mut views);
    drop(views);
    owned.into_iter().zip(results).collect()
}

struct Inflight {
    ticket: PipelineTicket,
    rx: mpsc::Receiver<Vec<(OwnedRange, TargetResult<()>)>>,
    submitted: Instant,
}

/// Appends any pending program output of `t` to the shared front-side
/// buffer. The worker runs this at the end of *every* job, before the
/// job's reply is sent, so output ordering relative to RPC returns is
/// exactly the inline ordering.
fn drain_output<T: Target + ?Sized>(t: &mut T, out: &Mutex<String>) {
    let s = t.take_output();
    if !s.is_empty() {
        out.lock().expect("output buffer lock").push_str(&s);
    }
}

struct Actor<T: Target + Send + 'static> {
    tx: mpsc::Sender<Job<T>>,
    join: thread::JoinHandle<T>,
    /// Clone of the front's shared output buffer, captured into every
    /// job so the worker can publish program output without a
    /// round-trip.
    output: Arc<Mutex<String>>,
    /// Front-side ABI mirror (the ABI never changes mid-session).
    abi: Abi,
    /// Front-side type-table mirror; always a superset of the worker's
    /// table between symbol RPCs.
    types: TypeTable,
    /// Mirror length at the last front↔worker sync: the worker table
    /// grew past this only inside a symbol RPC, which synced it back.
    synced: usize,
}

enum Mode<T: Target + Send + 'static> {
    /// Pass-through: the backend lives on the caller's thread and
    /// submissions are refused (callers fall back to synchronous
    /// reads). Zero overhead.
    Inline(T),
    /// The backend lives on the worker thread. Boxed: the actor state
    /// (channel, join handle, ABI, type-table mirror) dwarfs the other
    /// variants and `AsyncTarget` is embedded in every tower.
    Actor(Box<Actor<T>>),
    /// Transient state while switching modes; never observable.
    Switching,
}

/// A [`Target`] decorator that can move its backend onto a dedicated
/// I/O worker thread. See the module docs for the actor protocol and
/// the type-table mirror.
pub struct AsyncTarget<T: Target + Send + 'static> {
    mode: Mode<T>,
    inflight: VecDeque<Inflight>,
    next_ticket: PipelineTicket,
    handle: PipelineHandle,
    /// Discovery handles captured from the backend before it moved to
    /// the worker (all are `Arc`-backed views, so the clones stay
    /// live).
    inner_trace: Option<TraceHandle>,
    inner_staleness: Option<StalenessHandle>,
    /// Front-side span context installed from above; never forwarded
    /// into the worker.
    spans: Option<SpanContext>,
    /// Program output published by the worker (which drains the
    /// backend after every job). Lets [`Target::take_output`] stay a
    /// buffer swap instead of a per-value round-trip through the
    /// actor — the single hottest call on a scan.
    output: Arc<Mutex<String>>,
}

impl<T: Target + Send + 'static> std::fmt::Debug for AsyncTarget<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncTarget")
            .field("async_on", &self.is_async())
            .field("inflight", &self.inflight.len())
            .finish()
    }
}

impl<T: Target + Send + 'static> AsyncTarget<T> {
    /// Wraps `inner` in pass-through (inline) mode. Call
    /// [`AsyncTarget::set_async`] to start the actor.
    pub fn new(inner: T) -> AsyncTarget<T> {
        let inner_trace = inner.trace_handle();
        let inner_staleness = inner.staleness_handle();
        AsyncTarget {
            mode: Mode::Inline(inner),
            inflight: VecDeque::new(),
            next_ticket: 0,
            handle: PipelineHandle::new(),
            inner_trace,
            inner_staleness,
            spans: None,
            output: Arc::new(Mutex::new(String::new())),
        }
    }

    /// Wraps `inner` and immediately starts the actor.
    pub fn spawned(inner: T) -> AsyncTarget<T> {
        let mut t = AsyncTarget::new(inner);
        t.set_async(true);
        t
    }

    /// Whether the backend currently runs on the worker thread.
    pub fn is_async(&self) -> bool {
        matches!(self.mode, Mode::Actor(_))
    }

    /// A clone of this layer's counter handle.
    pub fn handle(&self) -> PipelineHandle {
        self.handle.clone()
    }

    /// The wrapped backend, while it lives on this thread (inline
    /// mode); `None` once the actor owns it. Callers that must reach
    /// the backend directly (e.g. an MI resync) stop the actor with
    /// [`AsyncTarget::set_async`]`(false)` first.
    pub fn inner(&self) -> Option<&T> {
        match &self.mode {
            Mode::Inline(t) => Some(t),
            _ => None,
        }
    }

    /// Mutable access to the wrapped backend in inline mode.
    pub fn inner_mut(&mut self) -> Option<&mut T> {
        match &mut self.mode {
            Mode::Inline(t) => Some(t),
            _ => None,
        }
    }

    /// Starts or stops the I/O actor. Stopping drains every in-flight
    /// read (discarding the data — the cache above has either polled or
    /// abandoned it), joins the worker, and moves the backend back to
    /// the caller's thread with the front-side type table written into
    /// it. Both directions are idempotent.
    pub fn set_async(&mut self, on: bool) {
        match (&self.mode, on) {
            (Mode::Inline(_), true) => {
                let Mode::Inline(mut inner) = std::mem::replace(&mut self.mode, Mode::Switching)
                else {
                    unreachable!()
                };
                // Output produced before the switch must not be
                // stranded inside the backend until its first job.
                drain_output(&mut inner, &self.output);
                let abi = inner.abi().clone();
                let types = TypeTable::from_snapshot(&inner.types().snapshot());
                let synced = types.len();
                let (tx, rx) = mpsc::channel::<Job<T>>();
                let join = thread::Builder::new()
                    .name("duel-io-actor".to_string())
                    .spawn(move || {
                        let mut t = inner;
                        while let Ok(job) = rx.recv() {
                            job(&mut t);
                        }
                        t
                    })
                    .expect("spawn duel-io-actor");
                self.mode = Mode::Actor(Box::new(Actor {
                    tx,
                    join,
                    output: self.output.clone(),
                    abi,
                    types,
                    synced,
                }));
                self.handle.0.async_on.store(true, Ordering::Relaxed);
            }
            (Mode::Actor(_), false) => {
                self.drain();
                let Mode::Actor(a) = std::mem::replace(&mut self.mode, Mode::Switching) else {
                    unreachable!()
                };
                drop(a.tx);
                let mut inner = a.join.join().expect("join duel-io-actor");
                // Only the front mirror can have grown since the last
                // sync, so it is the authoritative table.
                if a.types.len() > inner.types().len() {
                    *inner.types_mut() = TypeTable::from_snapshot(&a.types.snapshot());
                }
                self.mode = Mode::Inline(inner);
                self.handle.0.async_on.store(false, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Completes every outstanding submission, discarding the data.
    pub fn drain(&mut self) {
        while let Some(ticket) = self.inflight.front().map(|f| f.ticket) {
            let _ = self.read_poll(ticket);
        }
    }

    /// Drops a `pipeline` instant on the span timeline (front side).
    fn span_mark(&self, name: &'static str, detail: impl FnOnce() -> String) {
        if let Some(s) = &self.spans {
            s.instant(SpanKind::Pipeline, name, detail);
        }
    }

    /// Ships a closure to the worker and blocks for its reply. Memory
    /// operations use this directly; they never touch the type table.
    fn rpc<R: Send + 'static>(a: &Actor<T>, f: impl FnOnce(&mut T) -> R + Send + 'static) -> R {
        let (rtx, rrx) = mpsc::channel();
        let out = a.output.clone();
        a.tx.send(Box::new(move |t: &mut T| {
            let r = f(t);
            // Publish output *before* the reply: once the caller sees
            // the reply, a following `take_output` must already see
            // everything this op printed (inline-mode ordering).
            drain_output(t, &out);
            let _ = rtx.send(r);
        }))
        .expect("duel-io-actor is alive");
        rrx.recv().expect("duel-io-actor replied")
    }

    /// A symbol-shaped RPC: syncs the type-table mirror down before the
    /// op (when the front grew) and back up after it (when the op made
    /// the worker's table grow).
    fn rpc_sym<R: Send + 'static>(
        a: &mut Actor<T>,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> R {
        let ship = if a.types.len() > a.synced {
            Some(a.types.snapshot())
        } else {
            None
        };
        let (r, back) = Self::rpc(a, move |t| {
            if let Some(s) = &ship {
                // The worker table is a prefix of the front table, so
                // every raw id the worker handed out stays valid.
                *t.types_mut() = TypeTable::from_snapshot(s);
            }
            let before = t.types().len();
            let r = f(t);
            let back = if t.types().len() > before {
                Some(t.types().snapshot())
            } else {
                None
            };
            (r, back)
        });
        if let Some(s) = back {
            a.types = TypeTable::from_snapshot(&s);
        }
        a.synced = a.types.len();
        r
    }
}

impl<T: Target + Send + 'static> Target for AsyncTarget<T> {
    fn abi(&self) -> &Abi {
        match &self.mode {
            Mode::Inline(t) => t.abi(),
            Mode::Actor(a) => &a.abi,
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn types(&self) -> &TypeTable {
        match &self.mode {
            Mode::Inline(t) => t.types(),
            Mode::Actor(a) => &a.types,
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn types_mut(&mut self) -> &mut TypeTable {
        match &mut self.mode {
            Mode::Inline(t) => t.types_mut(),
            Mode::Actor(a) => &mut a.types,
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn get_bytes(&mut self, addr: u64, buf: &mut [u8]) -> TargetResult<()> {
        match &mut self.mode {
            Mode::Inline(t) => t.get_bytes(addr, buf),
            Mode::Actor(a) => {
                let len = buf.len();
                let (r, data) = Self::rpc(a, move |t| {
                    let mut v = vec![0u8; len];
                    let r = t.get_bytes(addr, &mut v);
                    (r, v)
                });
                buf.copy_from_slice(&data);
                r
            }
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn get_bytes_multi(&mut self, ranges: &mut [ReadRange<'_>]) -> Vec<TargetResult<()>> {
        match &mut self.mode {
            Mode::Inline(t) => t.get_bytes_multi(ranges),
            Mode::Actor(a) => {
                let owned: Vec<OwnedRange> = ranges
                    .iter()
                    .map(|r| OwnedRange::new(r.addr, r.buf.len()))
                    .collect();
                let done = Self::rpc(a, move |t| run_multi(t, owned));
                let mut results = Vec::with_capacity(done.len());
                for (dst, (src, r)) in ranges.iter_mut().zip(done) {
                    dst.buf.copy_from_slice(&src.buf);
                    results.push(r);
                }
                results
            }
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn put_bytes(&mut self, addr: u64, bytes: &[u8]) -> TargetResult<()> {
        match &mut self.mode {
            Mode::Inline(t) => t.put_bytes(addr, bytes),
            Mode::Actor(a) => {
                let data = bytes.to_vec();
                Self::rpc(a, move |t| t.put_bytes(addr, &data))
            }
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn alloc_space(&mut self, size: u64, align: u64) -> TargetResult<u64> {
        match &mut self.mode {
            Mode::Inline(t) => t.alloc_space(size, align),
            Mode::Actor(a) => Self::rpc(a, move |t| t.alloc_space(size, align)),
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn call_func(&mut self, name: &str, args: &[CallValue]) -> TargetResult<CallValue> {
        match &mut self.mode {
            Mode::Inline(t) => t.call_func(name, args),
            Mode::Actor(a) => {
                let (name, args) = (name.to_string(), args.to_vec());
                // Calls both consume front-minted type ids and can
                // intern new ones (native call results), so they take
                // the symbol path.
                Self::rpc_sym(a, move |t| t.call_func(&name, &args))
            }
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn get_variable(&mut self, name: &str) -> Option<VarInfo> {
        match &mut self.mode {
            Mode::Inline(t) => t.get_variable(name),
            Mode::Actor(a) => {
                let name = name.to_string();
                Self::rpc_sym(a, move |t| t.get_variable(&name))
            }
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn get_variable_in_frame(&mut self, name: &str, frame: usize) -> Option<VarInfo> {
        match &mut self.mode {
            Mode::Inline(t) => t.get_variable_in_frame(name, frame),
            Mode::Actor(a) => {
                let name = name.to_string();
                Self::rpc_sym(a, move |t| t.get_variable_in_frame(&name, frame))
            }
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn lookup_typedef(&mut self, name: &str) -> Option<TypeId> {
        match &mut self.mode {
            Mode::Inline(t) => t.lookup_typedef(name),
            Mode::Actor(a) => {
                let name = name.to_string();
                Self::rpc_sym(a, move |t| t.lookup_typedef(&name))
            }
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn lookup_struct(&mut self, tag: &str) -> Option<RecordId> {
        match &mut self.mode {
            Mode::Inline(t) => t.lookup_struct(tag),
            Mode::Actor(a) => {
                let tag = tag.to_string();
                Self::rpc_sym(a, move |t| t.lookup_struct(&tag))
            }
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn lookup_union(&mut self, tag: &str) -> Option<RecordId> {
        match &mut self.mode {
            Mode::Inline(t) => t.lookup_union(tag),
            Mode::Actor(a) => {
                let tag = tag.to_string();
                Self::rpc_sym(a, move |t| t.lookup_union(&tag))
            }
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn lookup_enum(&mut self, tag: &str) -> Option<EnumId> {
        match &mut self.mode {
            Mode::Inline(t) => t.lookup_enum(tag),
            Mode::Actor(a) => {
                let tag = tag.to_string();
                Self::rpc_sym(a, move |t| t.lookup_enum(&tag))
            }
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn has_function(&mut self, name: &str) -> bool {
        match &mut self.mode {
            Mode::Inline(t) => t.has_function(name),
            Mode::Actor(a) => {
                let name = name.to_string();
                Self::rpc_sym(a, move |t| t.has_function(&name))
            }
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn frame_count(&mut self) -> usize {
        match &mut self.mode {
            Mode::Inline(t) => t.frame_count(),
            Mode::Actor(a) => Self::rpc(a, move |t| t.frame_count()),
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn frame_info(&mut self, n: usize) -> Option<FrameInfo> {
        match &mut self.mode {
            Mode::Inline(t) => t.frame_info(n),
            Mode::Actor(a) => Self::rpc_sym(a, move |t| t.frame_info(n)),
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn is_mapped(&mut self, addr: u64, len: u64) -> bool {
        match &mut self.mode {
            Mode::Inline(t) => t.is_mapped(addr, len),
            Mode::Actor(a) => Self::rpc(a, move |t| t.is_mapped(addr, len)),
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn take_output(&mut self) -> String {
        // Sessions drain output once per produced value, so this must
        // never be a round-trip: the worker publishes output into the
        // shared buffer at the end of every job (before the job's
        // reply), and the front side just swaps the buffer.
        let buffered = std::mem::take(&mut *self.output.lock().expect("output buffer lock"));
        match &mut self.mode {
            Mode::Inline(t) => {
                let fresh = t.take_output();
                if buffered.is_empty() {
                    fresh
                } else {
                    buffered + &fresh
                }
            }
            Mode::Actor(_) => buffered,
            Mode::Switching => unreachable!("transient mode"),
        }
    }

    fn trace_handle(&self) -> Option<TraceHandle> {
        match &self.mode {
            Mode::Inline(t) => t.trace_handle(),
            _ => self.inner_trace.clone(),
        }
    }

    fn set_span_context(&mut self, spans: &SpanContext) {
        // Front side only: the worker must never push onto the shared
        // span stack, or two threads would interleave one timeline.
        self.spans = Some(spans.clone());
        if let Mode::Inline(t) = &mut self.mode {
            t.set_span_context(spans);
        }
    }

    fn span_context(&self) -> Option<SpanContext> {
        match &self.mode {
            Mode::Inline(t) => t.span_context(),
            _ => self.spans.clone(),
        }
    }

    fn staleness_handle(&self) -> Option<StalenessHandle> {
        match &self.mode {
            Mode::Inline(t) => t.staleness_handle(),
            _ => self.inner_staleness.clone(),
        }
    }

    fn read_submit(&mut self, ranges: Vec<OwnedRange>) -> Option<PipelineTicket> {
        let Mode::Actor(a) = &mut self.mode else {
            return None;
        };
        let n = ranges.len();
        let (rtx, rrx) = mpsc::channel();
        let out = a.output.clone();
        a.tx.send(Box::new(move |t: &mut T| {
            let r = run_multi(t, ranges);
            drain_output(t, &out);
            let _ = rtx.send(r);
        }))
        .expect("duel-io-actor is alive");
        self.next_ticket += 1;
        let ticket = self.next_ticket;
        self.inflight.push_back(Inflight {
            ticket,
            rx: rrx,
            submitted: Instant::now(),
        });
        self.handle.on_submit();
        let depth = self.inflight.len();
        self.span_mark("submit", || format!("{n} ranges, depth {depth}"));
        Some(ticket)
    }

    fn read_poll(&mut self, ticket: PipelineTicket) -> Option<Vec<(OwnedRange, TargetResult<()>)>> {
        // Tickets complete strictly FIFO; polling anything but the
        // oldest outstanding ticket is a caller bug.
        let front = self.inflight.front()?;
        if front.ticket != ticket {
            return None;
        }
        let inflight = self.inflight.pop_front()?;
        let wait_start = Instant::now();
        let done = inflight.rx.recv().expect("duel-io-actor completed read");
        let wait_ns = wait_start.elapsed().as_nanos() as u64;
        let overlap_ns = wait_start.duration_since(inflight.submitted).as_nanos() as u64;
        let (mut clean, mut failed, mut bytes) = (0u64, 0u64, 0u64);
        for (o, r) in &done {
            if r.is_ok() {
                clean += 1;
                bytes += o.buf.len() as u64;
            } else {
                failed += 1;
            }
        }
        self.handle
            .on_complete(clean, failed, bytes, wait_ns, overlap_ns);
        let depth = self.inflight.len();
        self.span_mark("complete", || {
            format!(
                "{clean} clean, {failed} failed, waited {}, depth {depth}",
                crate::trace::fmt_ns(wait_ns)
            )
        });
        Some(done)
    }

    fn pipeline_handle(&self) -> Option<PipelineHandle> {
        Some(self.handle.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn inline_mode_is_a_pure_pass_through() {
        let mut t = AsyncTarget::new(scenario::scan_array());
        assert!(!t.is_async());
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 7);
        assert!(t.read_submit(vec![OwnedRange::new(x.addr, 4)]).is_none());
    }

    #[test]
    fn actor_mode_answers_the_blocking_api() {
        let mut t = AsyncTarget::spawned(scenario::scan_array());
        assert!(t.is_async());
        let x = t.get_variable("x").unwrap();
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 7);
        let mut a = [0u8; 4];
        let mut b = [0u8; 4];
        let mut ranges = [
            ReadRange::new(x.addr + 12, &mut a),
            ReadRange::new(0x10, &mut b),
        ];
        let rs = t.get_bytes_multi(&mut ranges);
        assert_eq!(rs[0], Ok(()));
        assert!(rs[1].is_err());
        assert_eq!(i32::from_le_bytes(a), 7);
        assert!(t.get_variable("nonesuch").is_none());
        assert!(t.frame_count() == 0 || t.frame_info(0).is_some());
    }

    #[test]
    fn submit_poll_fills_buffers_in_fifo_order() {
        let mut t = AsyncTarget::spawned(scenario::scan_array());
        let x = t.get_variable("x").unwrap();
        let t1 = t
            .read_submit(vec![OwnedRange::new(x.addr + 12, 4)])
            .unwrap();
        let t2 = t
            .read_submit(vec![OwnedRange::new(x.addr + 16, 4)])
            .unwrap();
        // Out-of-order poll is refused.
        assert!(t.read_poll(t2).is_none());
        let d1 = t.read_poll(t1).unwrap();
        assert_eq!(d1[0].1, Ok(()));
        assert_eq!(i32::from_le_bytes(d1[0].0.buf[..4].try_into().unwrap()), 7);
        let d2 = t.read_poll(t2).unwrap();
        assert_eq!(d2[0].1, Ok(()));
        let s = t.handle().stats();
        assert_eq!(s.submits, 2);
        assert_eq!(s.completions, 2);
        assert_eq!(s.ranges_clean, 2);
        assert_eq!(s.max_queue_depth, 2);
    }

    #[test]
    fn synchronous_ops_are_ordered_behind_in_flight_reads() {
        let mut t = AsyncTarget::spawned(scenario::scan_array());
        let x = t.get_variable("x").unwrap();
        // Submit a read of x[3], then overwrite x[3]. FIFO means the
        // read was on the wire first and must see the OLD value.
        let ticket = t
            .read_submit(vec![OwnedRange::new(x.addr + 12, 4)])
            .unwrap();
        t.put_bytes(x.addr + 12, &99i32.to_le_bytes()).unwrap();
        let done = t.read_poll(ticket).unwrap();
        assert_eq!(
            i32::from_le_bytes(done[0].0.buf[..4].try_into().unwrap()),
            7,
            "in-flight read must have hit the wire before the write"
        );
        let mut buf = [0u8; 4];
        t.get_bytes(x.addr + 12, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 99);
    }

    #[test]
    fn mode_transitions_preserve_the_type_table() {
        let mut t = AsyncTarget::spawned(scenario::combined());
        // Worker-side growth: resolve symbols/types through the actor.
        let before = t.types().len();
        assert!(t.get_variable("h").is_some() || t.get_variable("x").is_some());
        // Front-side growth: intern a derived type on the mirror.
        let int = t.types().size_of(duel_ctype::TypeId::from_raw(0), t.abi());
        let _ = int; // front mirror is readable
        let some_ty = t.get_variable("x").map(|v| v.ty).unwrap();
        let ptr = t.types_mut().pointer(some_ty);
        assert!(t.types().len() >= before);
        // A symbol op after front growth ships the mirror down.
        assert!(t.get_variable("x").is_some());
        // Stop the actor: the recovered backend must know the
        // front-minted pointer type.
        t.set_async(false);
        assert!(!t.is_async());
        assert_eq!(t.types().kind(ptr), &duel_ctype::TypeKind::Pointer(some_ty));
        // And back on again.
        t.set_async(true);
        assert!(t.is_async());
        let mut buf = [0u8; 4];
        let x = t.get_variable("x").unwrap();
        t.get_bytes(x.addr, &mut buf).unwrap();
    }

    #[test]
    fn stopping_drains_in_flight_reads() {
        let mut t = AsyncTarget::spawned(scenario::scan_array());
        let x = t.get_variable("x").unwrap();
        for i in 0..4 {
            t.read_submit(vec![OwnedRange::new(x.addr + i * 4, 4)])
                .unwrap();
        }
        t.set_async(false);
        let s = t.handle().stats();
        assert_eq!(s.submits, 4);
        assert_eq!(s.completions, 4);
        assert_eq!(s.queue_depth, 0);
    }

    #[test]
    fn pipeline_handle_is_discoverable_through_dyn_target() {
        let t = AsyncTarget::new(scenario::scan_array());
        let dt: &dyn Target = &t;
        assert!(dt.pipeline_handle().is_some());
        let plain = scenario::scan_array();
        let dp: &dyn Target = &plain;
        assert!(dp.pipeline_handle().is_none());
    }
}
