//! Byte-level encode/decode over a [`Target`].
//!
//! These free functions are the *only* place the rest of the system
//! converts between debuggee object representations and host scalars;
//! they work against any `Target` implementation (trait object or
//! concrete) and honour the target's byte order.

use crate::error::{TargetError, TargetResult};
use crate::iface::Target;
use duel_ctype::Endian;

/// Sign-extends the low `size` bytes of `raw` into an `i64`.
/// `size >= 8` is interpreted as a full-width value; `size == 0` has no
/// value bits at all and yields 0 (a 64-bit shift would overflow).
pub fn sign_extend(raw: u64, size: usize) -> i64 {
    if size == 0 {
        return 0;
    }
    if size >= 8 {
        return raw as i64;
    }
    let shift = 64 - size * 8;
    ((raw << shift) as i64) >> shift
}

/// Reads a `size`-byte unsigned integer at `addr`.
///
/// Scalars wider than 8 bytes cannot fit a `u64` and fail with
/// [`TargetError::UnsupportedWidth`] instead of being silently
/// truncated (on big-endian targets the old truncation even kept the
/// *high*-order bytes — the same bug [`crate::CallValue::to_u64`] had).
pub fn read_uint(t: &mut (impl Target + ?Sized), addr: u64, size: usize) -> TargetResult<u64> {
    if size > 8 {
        return Err(TargetError::UnsupportedWidth { bytes: size as u64 });
    }
    let endian = t.abi().endian;
    let mut buf = vec![0u8; size];
    t.get_bytes(addr, &mut buf)?;
    let mut raw = 0u64;
    match endian {
        Endian::Little => {
            for (i, b) in buf.iter().enumerate() {
                raw |= (*b as u64) << (8 * i);
            }
        }
        Endian::Big => {
            for b in buf.iter() {
                raw = (raw << 8) | *b as u64;
            }
        }
    }
    Ok(raw)
}

/// Reads a `size`-byte signed integer at `addr`.
pub fn read_int(t: &mut (impl Target + ?Sized), addr: u64, size: usize) -> TargetResult<i64> {
    Ok(sign_extend(read_uint(t, addr, size)?, size))
}

/// Reads a 4- or 8-byte IEEE float at `addr`, widening to `f64`.
pub fn read_float(t: &mut (impl Target + ?Sized), addr: u64, size: usize) -> TargetResult<f64> {
    let raw = read_uint(t, addr, size)?;
    match size {
        4 => Ok(f32::from_bits(raw as u32) as f64),
        8 => Ok(f64::from_bits(raw)),
        n => Err(TargetError::Backend(format!(
            "unsupported float size {n} byte(s)"
        ))),
    }
}

/// Reads a pointer (the ABI's pointer width) at `addr`.
pub fn read_ptr(t: &mut (impl Target + ?Sized), addr: u64) -> TargetResult<u64> {
    let size = t.abi().pointer_bytes as usize;
    read_uint(t, addr, size)
}

/// Writes the low `size` bytes of `v` at `addr` in target byte order.
///
/// Like [`read_uint`], sizes wider than 8 bytes are rejected with
/// [`TargetError::UnsupportedWidth`] rather than silently clamped —
/// a clamp would leave the high bytes of the destination unwritten.
pub fn write_uint(
    t: &mut (impl Target + ?Sized),
    addr: u64,
    v: u64,
    size: usize,
) -> TargetResult<()> {
    if size > 8 {
        return Err(TargetError::UnsupportedWidth { bytes: size as u64 });
    }
    let endian = t.abi().endian;
    let bytes = match endian {
        Endian::Little => v.to_le_bytes()[..size].to_vec(),
        Endian::Big => v.to_be_bytes()[8 - size..].to_vec(),
    };
    t.put_bytes(addr, &bytes)
}

/// Writes `v` as a 4- or 8-byte IEEE float at `addr`.
pub fn write_float(
    t: &mut (impl Target + ?Sized),
    addr: u64,
    v: f64,
    size: usize,
) -> TargetResult<()> {
    let raw = match size {
        4 => (v as f32).to_bits() as u64,
        8 => v.to_bits(),
        n => {
            return Err(TargetError::Backend(format!(
                "unsupported float size {n} byte(s)"
            )))
        }
    };
    write_uint(t, addr, raw, size)
}

/// Writes a pointer value (the ABI's pointer width) at `addr`.
pub fn write_ptr(t: &mut (impl Target + ?Sized), addr: u64, v: u64) -> TargetResult<()> {
    let size = t.abi().pointer_bytes as usize;
    write_uint(t, addr, v, size)
}

fn width_mask(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Reads a bit-field: `width` bits starting `off` bits above the LSB of
/// the `unit`-byte storage unit at `addr`.
pub fn read_bitfield(
    t: &mut (impl Target + ?Sized),
    addr: u64,
    unit: usize,
    off: u8,
    width: u8,
    signed: bool,
) -> TargetResult<i64> {
    let raw = read_uint(t, addr, unit)?;
    let v = (raw >> off) & width_mask(width);
    if signed && width < 64 {
        let shift = 64 - width as u32;
        Ok(((v << shift) as i64) >> shift)
    } else {
        Ok(v as i64)
    }
}

/// Writes a bit-field with read-modify-write, preserving the
/// neighbouring bits of the storage unit.
pub fn write_bitfield(
    t: &mut (impl Target + ?Sized),
    addr: u64,
    unit: usize,
    off: u8,
    width: u8,
    v: i64,
) -> TargetResult<()> {
    let raw = read_uint(t, addr, unit)?;
    let mask = width_mask(width) << off;
    let new = (raw & !mask) | (((v as u64) << off) & mask);
    write_uint(t, addr, new, unit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_extend_widths() {
        assert_eq!(sign_extend(0xff, 1), -1);
        assert_eq!(sign_extend(0x7f, 1), 127);
        assert_eq!(sign_extend(0xffff_fff9, 4), -7);
        assert_eq!(sign_extend(u64::MAX, 8), -1);
        assert_eq!(sign_extend(5, 8), 5);
    }

    #[test]
    fn sign_extend_zero_width_is_zero() {
        // Regression: size 0 used to compute `raw << 64`, overflowing.
        assert_eq!(sign_extend(0, 0), 0);
        assert_eq!(sign_extend(u64::MAX, 0), 0);
    }

    #[test]
    fn wide_scalars_are_rejected_not_truncated() {
        use crate::scenario;
        let mut t = scenario::scan_array();
        let x = t.get_variable("x").unwrap();
        assert_eq!(
            read_uint(&mut t, x.addr, 16),
            Err(TargetError::UnsupportedWidth { bytes: 16 })
        );
        assert_eq!(
            write_uint(&mut t, x.addr, 1, 16),
            Err(TargetError::UnsupportedWidth { bytes: 16 })
        );
        // 8 bytes is the widest supported scalar and still works.
        assert!(read_uint(&mut t, x.addr, 8).is_ok());
        assert!(write_uint(&mut t, x.addr, 0x0102_0304_0506_0708, 8).is_ok());
        assert_eq!(read_uint(&mut t, x.addr, 8).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn bitfield_mask_widths() {
        assert_eq!(width_mask(1), 1);
        assert_eq!(width_mask(4), 0xf);
        assert_eq!(width_mask(64), u64::MAX);
    }
}
