//! An always-on, lock-free metrics registry.
//!
//! The registry holds *named* monotonic counters and log₂ histograms.
//! Registration (`counter`/`histogram` on a name seen for the first
//! time) takes a short lock; the handles it returns are `Arc`-shared
//! atomics, so the **hot path — bumping a counter or observing a
//! histogram sample — is a single `fetch_add`**, lock-free and safe to
//! leave enabled permanently. The REPL keeps one registry per session
//! (it survives backend swaps, unlike the per-tower [`crate::TraceHandle`])
//! and renders it with `.top`.
//!
//! [`MetricsRegistry::snapshot`] returns a point-in-time, name-sorted
//! copy for rendering or JSON export; it never blocks writers for more
//! than the duration of a map clone.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Buckets in a [`Histogram`]: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` (bucket 0 also holds zero).
pub const METRIC_HIST_BUCKETS: usize = 64;

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂ histogram handle. Cloning shares the underlying buckets.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<[AtomicU64; METRIC_HIST_BUCKETS]>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(std::array::from_fn(|_| AtomicU64::new(0))))
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        let bucket = (64 - v.max(1).leading_zeros() as usize - 1).min(METRIC_HIST_BUCKETS - 1);
        self.0[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A copy of the bucket counts.
    pub fn buckets(&self) -> Vec<u64> {
        self.0.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`; 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let buckets = self.buckets();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, n) in buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: HashMap<String, Counter>,
    histograms: HashMap<String, Histogram>,
}

/// The registry: a named set of counters and histograms.
///
/// Cloning shares the same metric set (it is `Arc`-backed), so one
/// registry can be handed to every layer that wants to publish.
#[derive(Clone, Default)]
pub struct MetricsRegistry(Arc<Mutex<RegistryInner>>);

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.0.lock().unwrap();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, registering it (at zero) on
    /// first use. The returned handle bumps lock-free.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.0.lock().unwrap();
        if let Some(c) = inner.counters.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        inner.counters.insert(name.to_string(), c.clone());
        c
    }

    /// Returns the histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.0.lock().unwrap();
        if let Some(h) = inner.histograms.get(name) {
            return h.clone();
        }
        let h = Histogram::default();
        inner.histograms.insert(name.to_string(), h.clone());
        h
    }

    /// Drops every metric (names and values).
    pub fn clear(&self) {
        let mut inner = self.0.lock().unwrap();
        inner.counters.clear();
        inner.histograms.clear();
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.0.lock().unwrap();
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort();
        let mut histograms: Vec<(String, Vec<u64>)> = inner
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.buckets()))
            .collect();
        histograms.sort();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// A frozen, name-sorted copy of a registry.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, log₂ buckets)` pairs, sorted by name.
    pub histograms: Vec<(String, Vec<u64>)>,
}

impl MetricsSnapshot {
    /// Looks up one counter's value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Renders the snapshot's metrics as JSON object members (no
    /// enclosing braces), for embedding in the shared
    /// `schema_version/name/config/metrics` envelope.
    pub fn to_json_members(&self) -> String {
        let mut parts: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", k.replace('"', "'"), v))
            .collect();
        for (k, buckets) in &self.histograms {
            let last = buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
            let vals: Vec<String> = buckets[..last].iter().map(|n| n.to_string()).collect();
            parts.push(format!(
                "\"{}_hist_log2\":[{}]",
                k.replace('"', "'"),
                vals.join(",")
            ));
        }
        parts.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_share() {
        let m = MetricsRegistry::new();
        let a = m.counter("eval.values");
        let b = m.counter("eval.values");
        a.add(3);
        b.inc();
        assert_eq!(m.counter("eval.values").get(), 4);
        assert_eq!(m.snapshot().counter("eval.values"), Some(4));
        assert_eq!(m.snapshot().counter("nonesuch"), None);
    }

    #[test]
    fn histograms_bucket_by_log2_and_quantile() {
        let m = MetricsRegistry::new();
        let h = m.histogram("wire.ns");
        for v in [1, 1, 1, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.5), 2);
        assert!(h.quantile(0.99) >= 1024);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 3);
        assert_eq!(buckets[9], 1); // 1000 ∈ [512, 1024)
    }

    #[test]
    fn snapshot_is_sorted_and_clear_empties() {
        let m = MetricsRegistry::new();
        m.counter("b").inc();
        m.counter("a").inc();
        m.histogram("h").observe(5);
        let s = m.snapshot();
        assert_eq!(
            s.counters
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(s.histograms.len(), 1);
        let members = s.to_json_members();
        assert!(members.contains("\"a\":1"), "{members}");
        assert!(members.contains("\"h_hist_log2\":[0,0,1]"), "{members}");
        m.clear();
        assert!(m.snapshot().counters.is_empty());
    }

    #[test]
    fn clones_share_the_same_metric_set() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m.counter("x").inc();
        assert_eq!(m2.counter("x").get(), 1);
    }
}
