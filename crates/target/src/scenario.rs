//! Canned debuggees for tests, benches and the CLI demo.
//!
//! Each builder returns a fully-populated [`SimTarget`] matching one of
//! the paper's worked examples (the 60-entry scan array, the
//! `struct symbol *hash[1024]` table, linked lists, a binary tree,
//! `argv`-style string vectors) or a parametric bench workload.

use crate::sim::SimTarget;
use duel_ctype::{Abi, Field, Prim, TypeId};

/// The paper's scan example: `int x[60]`, `x[i] = 100+i` except for the
/// planted values `x[3] = 7`, `x[18] = 9`, `x[47] = 6`.
pub fn scan_array() -> SimTarget {
    let mut t = SimTarget::new(Abi::lp64());
    build_scan_array(&mut t);
    t
}

fn build_scan_array(t: &mut SimTarget) {
    let int = t.core.types.prim(Prim::Int);
    let arr = t.core.types.array(int, Some(60));
    let base = t.core.define_global("x", arr).unwrap();
    for i in 0..60u64 {
        let v = match i {
            3 => 7,
            18 => 9,
            47 => 6,
            _ => 100 + i as i32,
        };
        t.core.write_int(base + i * 4, v).unwrap();
    }
}

/// `int x[10]` with two out-of-range plants: `x[3] = -9`, `x[8] = 120`;
/// all other entries stay in `[0, 100]`.
pub fn range_array() -> SimTarget {
    let mut t = SimTarget::new(Abi::lp64());
    let int = t.core.types.prim(Prim::Int);
    let arr = t.core.types.array(int, Some(10));
    let base = t.core.define_global("x", arr).unwrap();
    for i in 0..10u64 {
        let v = match i {
            3 => -9,
            8 => 120,
            _ => i as i32 * 10,
        };
        t.core.write_int(base + i * 4, v).unwrap();
    }
    t
}

/// Layout of `struct symbol { char *name; int scope; struct symbol *next; }`.
struct SymbolLayout {
    /// Pointer-to-`struct symbol`.
    psty: TypeId,
    size: u64,
    name_off: u64,
    scope_off: u64,
    next_off: u64,
}

fn define_symbol_struct(t: &mut SimTarget) -> SymbolLayout {
    let ch = t.core.types.prim(Prim::Char);
    let pch = t.core.types.pointer(ch);
    let int = t.core.types.prim(Prim::Int);
    let (rid, sty) = t.core.types.declare_struct("symbol");
    let psty = t.core.types.pointer(sty);
    if !t.core.types.record(rid).complete {
        t.core.types.define_record(
            rid,
            vec![
                Field::new("name", pch),
                Field::new("scope", int),
                Field::new("next", psty),
            ],
        );
    }
    let l = t.core.types.record_layout(rid, &t.core.abi).unwrap();
    SymbolLayout {
        psty,
        size: l.size,
        name_off: l.fields[0].offset,
        scope_off: l.fields[1].offset,
        next_off: l.fields[2].offset,
    }
}

fn new_symbol(
    t: &mut SimTarget,
    l: &SymbolLayout,
    name: Option<&str>,
    scope: i32,
    next: u64,
) -> u64 {
    let name_addr = match name {
        Some(n) => t.core.intern_cstring(n).unwrap(),
        None => 0,
    };
    let addr = t.core.malloc(l.size).unwrap();
    t.core.write_ptr(addr + l.name_off, name_addr).unwrap();
    t.core.write_int(addr + l.scope_off, scope).unwrap();
    t.core.write_ptr(addr + l.next_off, next).unwrap();
    addr
}

fn symbol_chain(t: &mut SimTarget, l: &SymbolLayout, nodes: &[(Option<&str>, i32)]) -> u64 {
    let mut next = 0u64;
    for (name, scope) in nodes.iter().rev() {
        next = new_symbol(t, l, *name, *scope, next);
    }
    next
}

fn define_hash_global(t: &mut SimTarget, l: &SymbolLayout, buckets: u64) -> u64 {
    let arr = t.core.types.array(l.psty, Some(buckets));
    t.core.define_global("hash", arr).unwrap()
}

fn build_hash_table_basic(t: &mut SimTarget) {
    let l = define_symbol_struct(t);
    let base = define_hash_global(t, &l, 1024);
    let psize = t.core.abi.pointer_bytes;
    type Chain<'a> = (u64, &'a [(Option<&'a str>, i32)]);
    let chains: &[Chain] = &[
        (
            0,
            &[
                (Some("alpha"), 4),
                (Some("beta"), 3),
                (Some("gamma"), 2),
                (Some("delta"), 1),
            ],
        ),
        (1, &[(Some("x"), 3)]),
        (9, &[(Some("abc"), 2)]),
        (42, &[(Some("deep"), 7), (Some("under"), 4)]),
        (529, &[(Some("top"), 8)]),
    ];
    for (bucket, nodes) in chains {
        let head = symbol_chain(t, &l, nodes);
        t.core.write_ptr(base + bucket * psize, head).unwrap();
    }
}

/// The paper's `struct symbol *hash[1024]` with a handful of populated
/// buckets (0, 1, 9, 42, 529) and every other head NULL.
pub fn hash_table_basic() -> SimTarget {
    let mut t = SimTarget::new(Abi::lp64());
    build_hash_table_basic(&mut t);
    t
}

/// Every one of the 1024 buckets holds a single node with a non-zero
/// scope (for "clear the whole table"-style transcripts).
pub fn hash_table_full() -> SimTarget {
    let mut t = SimTarget::new(Abi::lp64());
    let l = define_symbol_struct(&mut t);
    let base = define_hash_global(&mut t, &l, 1024);
    let psize = t.core.abi.pointer_bytes;
    for bucket in 0..1024u64 {
        let head = new_symbol(&mut t, &l, None, (bucket % 9) as i32 + 1, 0);
        t.core.write_ptr(base + bucket * psize, head).unwrap();
    }
    t
}

/// A table sorted by descending scope except for one planted violation:
/// bucket 287 holds a ten-node chain whose scopes run
/// `14,13,12,11,10,9,8,7,5,6` — the node at walk index 8 (scope 5) is
/// smaller than its successor.
pub fn hash_table_sorted_violation() -> SimTarget {
    let mut t = SimTarget::new(Abi::lp64());
    let l = define_symbol_struct(&mut t);
    let base = define_hash_global(&mut t, &l, 1024);
    let psize = t.core.abi.pointer_bytes;
    let scopes = [14, 13, 12, 11, 10, 9, 8, 7, 5, 6];
    let nodes: Vec<(Option<&str>, i32)> = scopes.iter().map(|s| (None, *s)).collect();
    let head = symbol_chain(&mut t, &l, &nodes);
    t.core.write_ptr(base + 287 * psize, head).unwrap();
    t
}

/// Defines (idempotently) `struct list { int value; struct list *next; }`,
/// returning `(struct type, pointer type)`.
pub fn define_list_struct(t: &mut SimTarget) -> (TypeId, TypeId) {
    let int = t.core.types.prim(Prim::Int);
    let (rid, lty) = t.core.types.declare_struct("list");
    let plty = t.core.types.pointer(lty);
    if !t.core.types.record(rid).complete {
        t.core.types.define_record(
            rid,
            vec![Field::new("value", int), Field::new("next", plty)],
        );
    }
    (lty, plty)
}

/// Heap-allocates a `struct list` chain holding `vals`, returning the
/// head address (0 for an empty slice).
pub fn build_int_list(t: &mut SimTarget, vals: &[i32]) -> u64 {
    define_list_struct(t);
    let (rid, _) = t.core.types.declare_struct("list");
    let l = t.core.types.record_layout(rid, &t.core.abi).unwrap();
    let (size, value_off, next_off) = (l.size, l.fields[0].offset, l.fields[1].offset);
    let mut next = 0u64;
    for v in vals.iter().rev() {
        let addr = t.core.malloc(size).unwrap();
        t.core.write_int(addr + value_off, *v).unwrap();
        t.core.write_ptr(addr + next_off, next).unwrap();
        next = addr;
    }
    next
}

fn build_linked_lists(t: &mut SimTarget) {
    let (_, plty) = define_list_struct(t);
    let l_head = build_int_list(t, &[10, 11, 12, 13, 27, 15, 16, 17, 18, 27, 20, 21]);
    let l_var = t.core.define_global("L", plty).unwrap();
    t.core.write_ptr(l_var, l_head).unwrap();
    let h_head = build_int_list(t, &[30, 31, 32, 33, 34, 29, 36, 37]);
    let h_var = t.core.define_global("head", plty).unwrap();
    t.core.write_ptr(h_var, h_head).unwrap();
}

/// Two `struct list` chains: `L` (12 nodes, with the duplicate value 27
/// at indices 4 and 9) and `head` (8 nodes, values 30..37 with the
/// planted 29 at index 5).
pub fn linked_lists() -> SimTarget {
    let mut t = SimTarget::new(Abi::lp64());
    build_linked_lists(&mut t);
    t
}

fn build_binary_tree(t: &mut SimTarget) {
    let int = t.core.types.prim(Prim::Int);
    let (rid, nty) = t.core.types.declare_struct("node");
    let pnty = t.core.types.pointer(nty);
    if !t.core.types.record(rid).complete {
        t.core.types.define_record(
            rid,
            vec![
                Field::new("key", int),
                Field::new("left", pnty),
                Field::new("right", pnty),
            ],
        );
    }
    let l = t.core.types.record_layout(rid, &t.core.abi).unwrap();
    let (size, key_off, left_off, right_off) = (
        l.size,
        l.fields[0].offset,
        l.fields[1].offset,
        l.fields[2].offset,
    );
    let node = |t: &mut SimTarget, key: i32, left: u64, right: u64| -> u64 {
        let addr = t.core.malloc(size).unwrap();
        t.core.write_int(addr + key_off, key).unwrap();
        t.core.write_ptr(addr + left_off, left).unwrap();
        t.core.write_ptr(addr + right_off, right).unwrap();
        addr
    };
    let ll = node(t, 4, 0, 0);
    let lr = node(t, 5, 0, 0);
    let left = node(t, 3, ll, lr);
    let right = node(t, 12, 0, 0);
    let root = node(t, 9, left, right);
    let root_var = t.core.define_global("root", pnty).unwrap();
    t.core.write_ptr(root_var, root).unwrap();
}

/// A five-node binary tree rooted at global `root`:
/// keys 9 (root), 3 (left, with children 4 and 5) and 12 (right).
pub fn binary_tree() -> SimTarget {
    let mut t = SimTarget::new(Abi::lp64());
    build_binary_tree(&mut t);
    t
}

fn build_argv_strings(t: &mut SimTarget) {
    let ch = t.core.types.prim(Prim::Char);
    let pch = t.core.types.pointer(ch);
    let s_arr = t.core.types.array(ch, Some(6));
    let s = t.core.define_global("s", s_arr).unwrap();
    t.core.mem.write(s, b"hello\0").unwrap();
    let argv_arr = t.core.types.array(pch, Some(4));
    let argv = t.core.define_global("argv", argv_arr).unwrap();
    let psize = t.core.abi.pointer_bytes;
    for (i, arg) in ["prog", "-v", "input.c"].iter().enumerate() {
        let a = t.core.intern_cstring(arg).unwrap();
        t.core.write_ptr(argv + i as u64 * psize, a).unwrap();
    }
    t.core.write_ptr(argv + 3 * psize, 0).unwrap();
}

/// `char s[6] = "hello"` plus a NULL-terminated
/// `char *argv[4] = {"prog", "-v", "input.c", 0}`.
pub fn argv_strings() -> SimTarget {
    let mut t = SimTarget::new(Abi::lp64());
    build_argv_strings(&mut t);
    t
}

/// Every canned debuggee in one target: the scan array, the hash
/// table, both lists, the binary tree and the string vectors.
pub fn combined() -> SimTarget {
    let mut t = SimTarget::new(Abi::lp64());
    build_scan_array(&mut t);
    build_hash_table_basic(&mut t);
    build_linked_lists(&mut t);
    build_binary_tree(&mut t);
    build_argv_strings(&mut t);
    t
}

/// Deterministic splitmix-style step for bench data.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Bench workload: `int x[n]` with seeded values in `[-100, 100]` plus
/// a global `int i` for the lookup bench.
pub fn bench_array(n: u64, seed: u64) -> SimTarget {
    let mut t = SimTarget::new(Abi::lp64());
    let int = t.core.types.prim(Prim::Int);
    let arr = t.core.types.array(int, Some(n));
    let base = t.core.define_global("x", arr).unwrap();
    let mut state = seed;
    for idx in 0..n {
        let v = (next_rand(&mut state) % 201) as i32 - 100;
        t.core.write_int(base + idx * 4, v).unwrap();
    }
    let i_var = t.core.define_global("i", int).unwrap();
    t.core.write_int(i_var, 5).unwrap();
    t
}

/// Bench workload: a `struct symbol *hash[buckets]` table where every
/// bucket holds a `chain`-node list with seeded scopes in `[1, 9]`.
pub fn bench_hash(buckets: u64, chain: u64, seed: u64) -> SimTarget {
    let mut t = SimTarget::new(Abi::lp64());
    let l = define_symbol_struct(&mut t);
    let base = define_hash_global(&mut t, &l, buckets);
    let psize = t.core.abi.pointer_bytes;
    let mut state = seed;
    for bucket in 0..buckets {
        let mut next = 0u64;
        for _ in 0..chain {
            let scope = (next_rand(&mut state) % 9) as i32 + 1;
            next = new_symbol(&mut t, &l, None, scope, next);
        }
        t.core.write_ptr(base + bucket * psize, next).unwrap();
    }
    t
}

/// Bench workload: a single `struct list` chain of `n` nodes bound to
/// the global `head`, with seeded values in `[-100, 100]`.
pub fn bench_list(n: u64, seed: u64) -> SimTarget {
    let mut t = SimTarget::new(Abi::lp64());
    let (_, plty) = define_list_struct(&mut t);
    let mut state = seed;
    let vals: Vec<i32> = (0..n)
        .map(|_| (next_rand(&mut state) % 201) as i32 - 100)
        .collect();
    let head = build_int_list(&mut t, &vals);
    let var = t.core.define_global("head", plty).unwrap();
    t.core.write_ptr(var, head).unwrap();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::Target;
    use crate::value_io;

    #[test]
    fn scan_array_plants() {
        let mut t = scan_array();
        let x = t.get_variable("x").unwrap();
        assert_eq!(t.core.read_int(x.addr + 3 * 4).unwrap(), 7);
        assert_eq!(t.core.read_int(x.addr + 18 * 4).unwrap(), 9);
        assert_eq!(t.core.read_int(x.addr + 47 * 4).unwrap(), 6);
        assert_eq!(t.core.read_int(x.addr + 4 * 4).unwrap(), 104);
        assert_eq!(t.core.types.display(x.ty), "int [60]");
    }

    #[test]
    fn hash_display_and_walk() {
        let mut t = hash_table_basic();
        let h = t.get_variable("hash").unwrap();
        assert_eq!(t.core.types.display(h.ty), "struct symbol *[1024]");
        // Walk bucket 0: scopes 4,3,2,1.
        let (rid, _) = t.core.types.declare_struct("symbol");
        let l = t.core.types.record_layout(rid, &t.core.abi).unwrap();
        let mut p = t.core.read_ptr(h.addr).unwrap();
        let mut scopes = Vec::new();
        while p != 0 {
            scopes.push(t.core.read_int(p + l.fields[1].offset).unwrap());
            p = t.core.read_ptr(p + l.fields[2].offset).unwrap();
        }
        assert_eq!(scopes, vec![4, 3, 2, 1]);
        // First node of bucket 0 is "alpha".
        let head = t.core.read_ptr(h.addr).unwrap();
        let name = t.core.read_ptr(head + l.fields[0].offset).unwrap();
        assert_eq!(t.core.mem.read_cstring(name, 16).unwrap(), "alpha");
        // Bucket 2 is empty.
        assert_eq!(t.core.read_ptr(h.addr + 2 * 8).unwrap(), 0);
    }

    #[test]
    fn lists_and_tree() {
        let mut t = combined();
        let head = t.get_variable("head").unwrap();
        let mut p = value_io::read_ptr(&mut t, head.addr).unwrap();
        let mut vals = Vec::new();
        while p != 0 {
            vals.push(value_io::read_int(&mut t, p, 4).unwrap());
            p = value_io::read_ptr(&mut t, p + 8).unwrap();
        }
        assert_eq!(vals, vec![30, 31, 32, 33, 34, 29, 36, 37]);
        let root = t.get_variable("root").unwrap();
        let r = t.core.read_ptr(root.addr).unwrap();
        assert_eq!(t.core.read_int(r).unwrap(), 9);
    }

    #[test]
    fn bench_builders() {
        let mut t = bench_array(100, 42);
        assert!(t.get_variable("i").is_some());
        let x = t.get_variable("x").unwrap();
        for idx in 0..100u64 {
            let v = t.core.read_int(x.addr + idx * 4).unwrap();
            assert!((-100..=100).contains(&v));
        }
        let mut t = bench_hash(64, 2, 7);
        let h = t.get_variable("hash").unwrap();
        assert_ne!(t.core.read_ptr(h.addr).unwrap(), 0);
    }
}
